//! Criterion timings for E7: end-to-end cost of one obfuscated query per
//! fake-selection strategy (formulation + MSMD evaluation).

use criterion::{Criterion, criterion_group, criterion_main};
use opaque::{ClientId, ClientRequest, FakeSelection, Obfuscator, PathQuery, ProtectionSettings};
use pathsearch::{SharingPolicy, msmd};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;
use std::hint::black_box;
use std::time::Duration;
use workload::{PopulationConfig, population_weights};

fn bench(c: &mut Criterion) {
    let g = NetworkClass::Geometric.generate(2_000, 0xBE).expect("valid network");
    let n = g.num_nodes() as u32;
    let weights = population_weights(&g, &PopulationConfig::default());
    let req = ClientRequest::new(
        ClientId(0),
        PathQuery::new(NodeId(11), NodeId(n - 3)),
        ProtectionSettings::new(4, 4).expect("positive"),
    );

    let mut group = c.benchmark_group("e7_strategies");
    for strategy in [
        FakeSelection::Uniform,
        FakeSelection::default_ring(),
        FakeSelection::default_network_ring(),
        FakeSelection::Weighted,
    ] {
        group.bench_function(strategy.name(), |b| {
            b.iter_batched(
                || Obfuscator::new(g.clone(), strategy, 0xBE).with_weights(weights.clone()),
                |mut ob| {
                    let unit = ob.obfuscate_independent(black_box(&req)).expect("ok");
                    let r = msmd(
                        &g,
                        unit.query.sources(),
                        unit.query.targets(),
                        SharingPolicy::PerSource,
                    );
                    black_box(r.stats.settled)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
