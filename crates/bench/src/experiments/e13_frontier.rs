//! E13 — MSMD evaluation-policy face-off on one reusable arena.
//!
//! The server answers every pair of `Q(S,T)` (Definition 1), so the MSMD
//! engine is the deployment's hot path. This experiment compares all four
//! [`SharingPolicy`] variants — naive per-pair, per-source sharing
//! (Lemma 1's strategy), auto transposition, and the arena-backed
//! shared-frontier interleaved sweep — by settled nodes (Lemma 1's cost
//! proxy) and wall time, across the three synthetic network classes.
//!
//! The reproducible claims: `shared-frontier` settles strictly fewer
//! nodes than `per-source` on grid maps with `|S| = |T| ≥ 3` (each tree
//! stops near half its unilateral radius), and every policy returns the
//! same distances.

use crate::setup::{Scale, network};
use crate::table::{ExperimentTable, f3};
use pathsearch::{SearchArena, SharingPolicy, msmd_in};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;
use std::time::Instant;

/// Deterministic, well-spread endpoint sets: `k` sources and `k` targets
/// drawn from opposite strides of the node id space.
fn endpoint_sets(num_nodes: usize, k: usize) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = num_nodes as u32;
    let stride = n / (k as u32 + 1);
    let sources = (0..k as u32).map(|i| NodeId((i * stride + 7) % n)).collect();
    let targets = (0..k as u32).map(|i| NodeId(n - 1 - (i * stride + 11) % n)).collect();
    (sources, targets)
}

/// Run E13.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E13",
        "MSMD sharing policies on a reusable search arena",
        "shared-frontier engine characterization (extends §IV / Lemma 1)",
        &["class", "|S|x|T|", "policy", "trees", "settled", "relaxed", "ms"],
    );
    let mut arena = SearchArena::new();
    let mut trees_grown = 0u64;

    for class in NetworkClass::ALL {
        let g = network(class, scale);
        for k in [3usize, 6] {
            let (sources, targets) = endpoint_sets(g.num_nodes(), k);
            let mut settled_by_policy = Vec::new();
            for policy in SharingPolicy::ALL {
                // Warm the arena so every policy is measured in steady
                // state (no first-touch growth in the timed region).
                let warm = msmd_in(&mut arena, &g, &sources, &targets, policy);
                let reps = 5u32;
                let t0 = Instant::now();
                for _ in 0..reps {
                    let r = msmd_in(&mut arena, &g, &sources, &targets, policy);
                    assert_eq!(r.num_paths(), warm.num_paths());
                }
                let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
                settled_by_policy.push(warm.stats.settled);
                trees_grown += warm.per_tree.len() as u64;
                t.row(vec![
                    class.name().to_string(),
                    format!("{k}x{k}"),
                    policy.name().to_string(),
                    warm.per_tree.len().to_string(),
                    warm.stats.settled.to_string(),
                    warm.stats.relaxed.to_string(),
                    f3(ms),
                ]);
            }
            // The ordering the experiment exists to demonstrate.
            let (naive, per_source, frontier) =
                (settled_by_policy[0], settled_by_policy[1], settled_by_policy[3]);
            assert!(per_source <= naive, "{}: sharing must not cost nodes", class.name());
            if class == NetworkClass::Grid {
                assert!(
                    frontier < per_source,
                    "{}: shared-frontier must settle strictly fewer nodes than per-source \
                     ({frontier} vs {per_source})",
                    class.name()
                );
            }
        }
    }
    t.metric("trees_grown", trees_grown as f64);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_quick_scale() {
        // The run itself asserts the settled-node ordering (including
        // shared-frontier < per-source on grids with |S| = |T| ≥ 3).
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 3 * 2 * 4);
    }

    #[test]
    fn frontier_beats_per_source_on_grids_for_3x3_and_up() {
        let g = network(NetworkClass::Grid, &Scale::quick());
        for k in [3usize, 4, 6] {
            let (s, t) = endpoint_sets(g.num_nodes(), k);
            let per_source = pathsearch::msmd(&g, &s, &t, SharingPolicy::PerSource);
            let frontier = pathsearch::msmd(&g, &s, &t, SharingPolicy::SharedFrontier);
            assert!(
                frontier.stats.settled < per_source.stats.settled,
                "k={k}: {} vs {}",
                frontier.stats.settled,
                per_source.stats.settled
            );
            // And the answers agree.
            for i in 0..k {
                for j in 0..k {
                    let a = per_source.distance(i, j).unwrap();
                    let b = frontier.distance(i, j).unwrap();
                    assert!((a - b).abs() < 1e-9, "k={k} pair ({i},{j}): {a} vs {b}");
                }
            }
        }
    }
}
