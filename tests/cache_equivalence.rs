//! The tree cache's headline guarantee, as a property: for random maps,
//! random batches, random obfuscator seeds, any sharing policy the cache
//! serves, and any LRU capacity, `CachePolicy::Lru` produces
//! **byte-identical** batch output to `CachePolicy::Off` — the same
//! delivered paths, the same per-client outcomes, and the same serialized
//! `BatchReport` — including under `ExecutionPolicy::WorkerPool`, where
//! the nondeterministic unit-to-shard assignment decides which shard-local
//! cache sees which root.
//!
//! A cache may only skip work, never change it. Adoption replays the
//! skipped sweep's counters byte-for-byte (per-settle snapshots in
//! `pathsearch::trace`), and the physical hit/miss pair is deliberately
//! excluded from the serialized report, so any divergence this test could
//! catch would be a real reuse bug: a stale tree adopted past its radius,
//! a transposed tree mis-keyed, stats replayed from the wrong prefix.
//!
//! Batches repeat across rounds on purpose — round 1 populates the
//! caches, later rounds adopt — so the property is exercised on warm
//! caches, not just cold ones.

use opaque::{
    CachePolicy, ClientId, ClientRequest, ClusteringConfig, DirectionsBackend, ExecutionPolicy,
    ObfuscationMode, PathQuery, ProtectionSettings, ServiceBuilder, ServiceResponse,
};
use pathsearch::SharingPolicy;
use proptest::prelude::*;
use roadnet::{GraphBuilder, NodeId, Point, RoadNetwork};

/// Random connected road map: a random spanning tree plus extra random
/// edges (parallel roads allowed), positive weights.
fn arb_map(max_nodes: usize) -> impl Strategy<Value = RoadNetwork> {
    (4..max_nodes)
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n);
            let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
            let extra = proptest::collection::vec((0..n as u32, 0..n as u32, 1.0f64..3.0), 0..n);
            (coords, parents, extra)
        })
        .prop_map(|(coords, parents, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite coords");
            }
            let n = coords.len();
            let euclid = |a: usize, c: usize| {
                Point::new(coords[a].0, coords[a].1).distance(Point::new(coords[c].0, coords[c].1))
            };
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = (*p as usize) % child;
                let w = euclid(parent, child).max(f64::EPSILON) * 1.1;
                b.add_edge(NodeId::from_index(parent), NodeId::from_index(child), w)
                    .expect("valid tree edge");
            }
            for (a, c, factor) in extra {
                let (a, c) = (a as usize % n, c as usize % n);
                if a != c {
                    let w = euclid(a, c).max(f64::EPSILON) * factor;
                    b.add_edge(NodeId::from_index(a), NodeId::from_index(c), w)
                        .expect("valid extra edge");
                }
            }
            b.build().expect("non-empty graph")
        })
}

/// A batch of requests with unique client ids; endpoints and protection
/// demands are arbitrary (including infeasible ones — rejections must be
/// identical across cache policies too).
fn arb_batch(max_requests: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, u32)>> {
    proptest::collection::vec(
        (proptest::num::u32::ANY, proptest::num::u32::ANY, 1u32..5, 1u32..5),
        1..max_requests,
    )
}

fn requests_on(map: &RoadNetwork, raw: &[(u32, u32, u32, u32)]) -> Vec<ClientRequest> {
    let n = map.num_nodes() as u32;
    raw.iter()
        .enumerate()
        .map(|(i, &(s, t, f_s, f_t))| {
            ClientRequest::new(
                ClientId(i as u32),
                PathQuery::new(NodeId(s % n), NodeId(t % n)),
                ProtectionSettings::new(f_s, f_t).expect("nonzero by construction"),
            )
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn build_service(
    map: RoadNetwork,
    seed: u64,
    mode: ObfuscationMode,
    sharing: SharingPolicy,
    shards: usize,
    execution: ExecutionPolicy,
    cache: CachePolicy,
) -> opaque::OpaqueService<opaque::DefaultBackend> {
    ServiceBuilder::new()
        .map(map)
        .seed(seed)
        .shards(shards)
        .obfuscation_mode(mode)
        .sharing_policy(sharing)
        .execution_policy(execution)
        .cache_policy(cache)
        .verify_results(true)
        .build()
        .expect("valid configuration")
}

/// The equivalence oracle: every observable piece of a batch's output.
fn assert_identical(a: &ServiceResponse, b: &ServiceResponse, ctx: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{ctx}: per-client outcomes diverged");
    assert_eq!(a.results.len(), b.results.len(), "{ctx}: delivery count diverged");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.client, y.client, "{ctx}: delivery order diverged");
        assert_eq!(x.path, y.path, "{ctx}: delivered path diverged for {:?}", x.client);
    }
    let a_json = serde_json::to_string(&a.report).expect("report serializes");
    let b_json = serde_json::to_string(&b.report).expect("report serializes");
    assert_eq!(a_json, b_json, "{ctx}: BatchReport not byte-identical");
}

/// Logical fleet counters: everything except the physical hit/miss pair,
/// which is the one thing allowed to differ between cache policies.
fn logical_stats(svc: &opaque::OpaqueService<opaque::DefaultBackend>) -> opaque::ServerStats {
    let mut stats = svc.backend().stats();
    stats.tree_cache_hits = 0;
    stats.tree_cache_misses = 0;
    stats
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn lru_is_byte_identical_to_off(
        map in arb_map(40),
        raw_batch in arb_batch(10),
        seed in proptest::num::u64::ANY,
        trees in 1usize..12,
        mode_pick in 0u8..3,
        sharing_pick in 0u8..3,
    ) {
        let mode = match mode_pick {
            0 => ObfuscationMode::Independent,
            1 => ObfuscationMode::SharedGlobal,
            _ => ObfuscationMode::SharedClustered(ClusteringConfig::default()),
        };
        // The three policies the cache actually serves (SharedFrontier
        // bypasses it and is pinned separately below).
        let sharing = match sharing_pick {
            0 => SharingPolicy::None,
            1 => SharingPolicy::PerSource,
            _ => SharingPolicy::Auto,
        };
        let requests = requests_on(&map, &raw_batch);
        let mut off = build_service(
            map.clone(), seed, mode, sharing, 1,
            ExecutionPolicy::Sequential, CachePolicy::Off,
        );
        let mut lru = build_service(
            map.clone(), seed, mode, sharing, 1,
            ExecutionPolicy::Sequential, CachePolicy::Lru { trees },
        );

        // Repeated rounds: round 1 is cold, later rounds adopt. The
        // obfuscator RNG advances identically (caching is downstream of
        // obfuscation), so both services see identical units each round.
        for round in 0..3 {
            let ctx = format!(
                "n={} requests={} seed={seed} trees={trees} mode={mode:?} \
                 sharing={sharing:?} round={round}",
                map.num_nodes(),
                requests.len()
            );
            match (off.process_batch(&requests), lru.process_batch(&requests)) {
                (Ok(a), Ok(b)) => assert_identical(&a, &b, &ctx),
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "{}: errors diverged", ctx),
                (a, b) => prop_assert!(
                    false,
                    "{}: one cache policy failed, the other did not: {:?} vs {:?}",
                    ctx,
                    a.map(|r| r.outcomes),
                    b.map(|r| r.outcomes)
                ),
            }
        }
        prop_assert_eq!(logical_stats(&off), logical_stats(&lru), "logical fleet stats diverged");
    }

    #[test]
    fn lru_under_a_worker_pool_is_byte_identical_to_off_sequential(
        map in arb_map(30),
        raw_batch in arb_batch(8),
        seed in proptest::num::u64::ANY,
        threads in 2usize..6,
        trees in 1usize..8,
    ) {
        // The adversarial composition: per-shard caches + nondeterministic
        // unit-to-shard assignment. Which cache sees which root varies run
        // to run; reports must not.
        let requests = requests_on(&map, &raw_batch);
        let mode = ObfuscationMode::Independent;
        let mut off = build_service(
            map.clone(), seed, mode, SharingPolicy::PerSource, threads,
            ExecutionPolicy::Sequential, CachePolicy::Off,
        );
        let mut lru = build_service(
            map.clone(), seed, mode, SharingPolicy::PerSource, threads,
            ExecutionPolicy::WorkerPool { threads }, CachePolicy::Lru { trees },
        );
        for round in 0..3 {
            let ctx = format!("seed={seed} threads={threads} trees={trees} round={round}");
            match (off.process_batch(&requests), lru.process_batch(&requests)) {
                (Ok(a), Ok(b)) => assert_identical(&a, &b, &ctx),
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "{}", ctx),
                (a, b) => prop_assert!(false, "{}: {:?} vs {:?}", ctx, a.is_ok(), b.is_ok()),
            }
        }
        prop_assert_eq!(logical_stats(&off), logical_stats(&lru));
    }
}

/// Deterministic pin: the equivalence above is not vacuous — repeated
/// batches on a hotspot-style stream really do hit the cache, and hits
/// really do skip settled work (the cached service is doing *less*, not
/// the same work twice).
#[test]
fn repeated_batches_actually_hit_the_cache() {
    use roadnet::generators::{GridConfig, grid_network};
    let map =
        grid_network(&GridConfig { width: 16, height: 16, seed: 3, ..Default::default() }).unwrap();
    let requests: Vec<ClientRequest> = (0..6)
        .map(|i| {
            ClientRequest::new(
                ClientId(i),
                // Six clients, two shared destinations — everyone heads
                // to one of two "malls".
                PathQuery::new(NodeId(i * 40 % 256), NodeId(if i % 2 == 0 { 255 } else { 17 })),
                ProtectionSettings::new(1, 1).unwrap(),
            )
        })
        .collect();
    let mut svc = ServiceBuilder::new()
        .map(map)
        .seed(11)
        .sharing_policy(SharingPolicy::PerSource)
        .cache_policy(CachePolicy::Lru { trees: 32 })
        .verify_results(true)
        .build()
        .unwrap();

    let first = svc.process_batch(&requests).unwrap();
    let stats_cold = svc.backend().stats();
    assert_eq!(stats_cold.tree_cache_hits, 0, "cold cache cannot hit");
    assert_eq!(stats_cold.tree_cache_misses, 6, "one consulted tree per request");

    let second = svc.process_batch(&requests).unwrap();
    let stats_warm = svc.backend().stats();
    assert_eq!(stats_warm.tree_cache_hits, 6, "identical stream: every tree adopts");
    // Reports stay byte-identical across the cold/warm boundary (same
    // logical work — protection 1 adds no fakes, so both batches carry
    // identical queries).
    assert_eq!(
        serde_json::to_string(&first.report).unwrap(),
        serde_json::to_string(&second.report).unwrap()
    );
    // And the per-batch delta pins: hit/miss counters in the report are
    // per-batch, like every other server_* field.
    assert_eq!((first.report.tree_cache_hits, first.report.tree_cache_misses), (0, 6));
    assert_eq!((second.report.tree_cache_hits, second.report.tree_cache_misses), (6, 0));
}

/// SharedFrontier does not decompose into per-root sweeps; the cache must
/// stay inert under it rather than corrupt anything.
#[test]
fn shared_frontier_ignores_the_cache_but_stays_identical() {
    use roadnet::generators::{GridConfig, grid_network};
    let map =
        grid_network(&GridConfig { width: 12, height: 12, seed: 5, ..Default::default() }).unwrap();
    let requests: Vec<ClientRequest> = (0..4)
        .map(|i| {
            ClientRequest::new(
                ClientId(i),
                PathQuery::new(NodeId(i * 30), NodeId(143 - i * 7)),
                ProtectionSettings::new(3, 3).unwrap(),
            )
        })
        .collect();
    let build = |cache| {
        ServiceBuilder::new()
            .map(map.clone())
            .seed(7)
            .sharing_policy(SharingPolicy::SharedFrontier)
            .obfuscation_mode(ObfuscationMode::SharedGlobal)
            .cache_policy(cache)
            .verify_results(true)
            .build()
            .unwrap()
    };
    let mut off = build(CachePolicy::Off);
    let mut lru = build(CachePolicy::Lru { trees: 16 });
    for round in 0..2 {
        let a = off.process_batch(&requests).unwrap();
        let b = lru.process_batch(&requests).unwrap();
        assert_identical(&a, &b, &format!("shared-frontier round {round}"));
    }
    let stats = lru.backend().stats();
    assert_eq!(
        (stats.tree_cache_hits, stats.tree_cache_misses),
        (0, 0),
        "frontier sweeps never consult the cache"
    );
}
