/root/repo/vendor/serde/target/debug/deps/serde-fc0c9e9bfc552862.d: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/serde-fc0c9e9bfc552862: src/lib.rs

src/lib.rs:
