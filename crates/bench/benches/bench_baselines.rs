//! Criterion timings for E2: one privacy technique end to end per
//! iteration, on the same true query.

use criterion::{Criterion, criterion_group, criterion_main};
use opaque::{PathQuery, Technique, run_technique};
use roadnet::generators::NetworkClass;
use roadnet::{NodeId, SpatialIndex};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g = NetworkClass::Grid.generate(1_600, 0xBE).expect("valid network");
    let idx = SpatialIndex::build(&g);
    let n = g.num_nodes() as u32;
    let q = PathQuery::new(NodeId(3), NodeId(n - 5));

    let techniques = [
        Technique::Direct,
        Technique::Landmark { num_landmarks: 16 },
        Technique::Cloaking { cell_size: 4.0 },
        Technique::NaiveFakes { num_fakes: 8 },
        Technique::Opaque { f_s: 3, f_t: 3 },
    ];

    let mut group = c.benchmark_group("e2_techniques");
    for tech in techniques {
        group.bench_function(tech.name(), |b| {
            b.iter(|| {
                let r = run_technique(&g, &idx, black_box(&q), tech, 0xBE);
                black_box(r.server_settled)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
