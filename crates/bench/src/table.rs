//! Plain-text experiment tables.
//!
//! Every experiment produces an [`ExperimentTable`]: a title, column
//! headers, and string rows. Tables render with aligned columns for the
//! terminal and serialize to JSON so EXPERIMENTS.md can quote exact runs.

/// One experiment's tabular output.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ExperimentTable {
    /// Experiment id, e.g. `"E4"`.
    pub id: String,
    /// Human title, e.g. `"Lemma 1 cost model validation"`.
    pub title: String,
    /// What paper artifact this regenerates.
    pub artifact: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations recorded by the harness.
    pub notes: Vec<String>,
    /// Named machine-readable summary values (`trees_grown`,
    /// `cache_hit_rate`, …) — what the CI perf-trajectory emitter
    /// (`crate::json`) reads, so trend lines never parse formatted rows.
    pub metrics: Vec<(String, f64)>,
}

impl ExperimentTable {
    /// Start a table.
    pub fn new(id: &str, title: &str, artifact: &str, headers: &[&str]) -> Self {
        ExperimentTable {
            id: id.to_string(),
            title: title.to_string(),
            artifact: artifact.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in {}", self.id);
        self.rows.push(cells);
    }

    /// Append an observation note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Record (or overwrite) a named machine-readable summary value.
    pub fn metric(&mut self, name: &str, value: f64) {
        match self.metrics.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.metrics.push((name.to_string(), value)),
        }
    }

    /// Read a named summary value recorded by [`ExperimentTable::metric`].
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("   (reproduces: {})\n", self.artifact));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Format a float with 3 significant decimals, compactly.
pub fn f3(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = ExperimentTable::new("E0", "demo", "none", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("alpha"));
        assert!(s.contains("note: hello"));
        // Columns right-aligned to the widest cell.
        assert!(s.lines().any(|l| l.trim_start().starts_with("name")));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = ExperimentTable::new("E0", "demo", "none", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn metrics_record_and_overwrite() {
        let mut t = ExperimentTable::new("E0", "demo", "none", &["a"]);
        assert_eq!(t.metric_value("trees_grown"), None);
        t.metric("trees_grown", 12.0);
        t.metric("cache_hit_rate", 0.5);
        t.metric("trees_grown", 14.0);
        assert_eq!(t.metric_value("trees_grown"), Some(14.0));
        assert_eq!(t.metric_value("cache_hit_rate"), Some(0.5));
        assert_eq!(t.metrics.len(), 2, "overwrite, not append");
        // Metrics ride along in the serialized table.
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("cache_hit_rate"), "{json}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(0.12349), "0.1235");
        assert_eq!(f3(7.38905), "7.39");
        assert_eq!(f3(1234.4), "1234");
        assert_eq!(f3(f64::INFINITY), "inf");
    }
}
