//! Dijkstra's algorithm \[1\] — the server's baseline path-query evaluator —
//! including the single-source **multi-destination** variant the paper's
//! Lemma 1 builds on: "Dijkstra's algorithm is extensible to search paths
//! from a single source to multiple destinations by forming a spanning tree
//! until all the destinations are reached" (§III-B).
//!
//! The implementation is a lazy-deletion binary-heap Dijkstra over the
//! reusable, generation-stamped [`SearchArena`], so repeated queries on the
//! same network pay no per-query `O(n)` initialization *or allocation* —
//! the cost of a query is proportional to the area it actually explores,
//! which is the quantity Lemma 1 reasons about. [`Searcher`] is the
//! single-tree facade over an owned arena; [`run_in`] runs inside a
//! caller-provided arena (e.g. the one a `DirectionsServer` shares with
//! its MSMD processor).

use crate::alt::GoalPotential;
use crate::arena::SearchArena;
use crate::path::Path;
use crate::stats::SearchStats;
use crate::trace::{SettleEvent, SweepTrace};
use roadnet::{GraphView, NodeId};

/// Search termination condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Goal {
    /// Settle every reachable node (full spanning tree).
    AllNodes,
    /// Stop as soon as this node is settled.
    Single(NodeId),
    /// Stop as soon as *all* of these nodes are settled — the
    /// multi-destination extension of §III-B.
    Set(Vec<NodeId>),
}

/// Observer of a sweep's settle events — the seam [`run_in_traced`] uses
/// to record a [`SweepTrace`] without taxing the untraced hot path
/// ([`run_in`] instantiates the no-op sink, which monomorphizes away).
trait SettleSink {
    /// Called right after `node` settles, **before** the goal check and
    /// before the node expands its arcs, with the sweep's counters at
    /// that instant — exactly what a sweep stopping here would report.
    fn on_settle(&mut self, arena: &SearchArena, node: NodeId, stats: &SearchStats);

    /// Called when the heap drains without an early stop (the sweep
    /// exhausted the root's component).
    fn on_exhausted(&mut self);
}

/// The zero-cost sink behind [`run_in`].
struct NoRecord;

impl SettleSink for NoRecord {
    #[inline]
    fn on_settle(&mut self, _: &SearchArena, _: NodeId, _: &SearchStats) {}
    #[inline]
    fn on_exhausted(&mut self) {}
}

/// Records every settle as a [`SettleEvent`] for a [`SweepTrace`].
struct Recorder {
    events: Vec<SettleEvent>,
    exhausted: bool,
}

impl SettleSink for Recorder {
    #[inline]
    fn on_settle(&mut self, arena: &SearchArena, node: NodeId, stats: &SearchStats) {
        self.events.push(SettleEvent {
            node: node.0,
            dist: arena.dist_raw(0, node),
            parent: arena.parent_raw(0, node),
            relaxed: stats.relaxed,
            heap_pushes: stats.heap_pushes,
            heap_pops: stats.heap_pops,
        });
    }

    #[inline]
    fn on_exhausted(&mut self) {
        self.exhausted = true;
    }
}

/// The one Dijkstra loop, parameterized over the settle observer and the
/// heap potential. With the zero potential (`|_| 0.0`) every key equals
/// its raw distance bit-for-bit (`x + 0.0 == x` for the non-negative
/// distances a sweep produces), so the plain entry points behave exactly
/// as before this parameter existed. With a *consistent* potential π
/// (1-Lipschitz along edges, e.g. [`GoalPotential::eval`]), keys
/// `dist + π(node)` pop in nondecreasing order, every settled label is
/// still exact, and the goal checks below stop at the same (now
/// earlier-reached) conditions — only the settle *order* and the explored
/// region change.
fn run_in_sink<G: GraphView, S: SettleSink, F: Fn(NodeId) -> f64>(
    arena: &mut SearchArena,
    g: &G,
    source: NodeId,
    goal: &Goal,
    pot: &F,
    sink: &mut S,
) -> SearchStats {
    let n = g.num_nodes();
    assert!(source.index() < n, "source out of range");
    arena.begin(n, 1);
    let mut stats = SearchStats::one_run();

    // Sorted, deduplicated goal set in the arena's reusable buffer.
    let mut remaining = arena.take_goal_scratch();
    if let Goal::Set(set) = goal {
        remaining.extend_from_slice(set);
        remaining.sort_unstable();
        remaining.dedup();
    }
    arena.label(0, source, 0.0, None);
    arena.push(0.0 + pot(source), 0.0, 0, source);
    stats.heap_pushes += 1;

    let mut stopped = false;
    while let Some(e) = arena.pop() {
        stats.heap_pops += 1;
        // Lazy deletion: skip entries for already-settled nodes or labels
        // that a shorter one has since overwritten.
        if !arena.is_fresh(&e) {
            continue;
        }
        arena.settle(0, e.node);
        stats.settled += 1;
        sink.on_settle(arena, e.node, &stats);

        match goal {
            Goal::Single(t) if *t == e.node => {
                stopped = true;
                break;
            }
            Goal::Set(_) => {
                if let Ok(pos) = remaining.binary_search(&e.node) {
                    remaining.remove(pos);
                    if remaining.is_empty() {
                        stopped = true;
                        break;
                    }
                }
            }
            _ => {}
        }

        let d_node = arena.dist_raw(0, e.node);
        g.for_each_arc(e.node, &mut |to, w| {
            stats.relaxed += 1;
            let cand = d_node + w;
            if arena.relax_keyed(0, e.node, to, cand, cand + pot(to)) {
                stats.heap_pushes += 1;
            }
        });
    }
    if !stopped {
        sink.on_exhausted();
    }
    arena.put_goal_scratch(remaining);
    stats
}

/// The zero potential behind the plain entry points — inlines to nothing.
#[inline]
fn zero_pot(_: NodeId) -> f64 {
    0.0
}

/// Run one Dijkstra sweep from `source` inside `arena` (tree 0) until
/// `goal` is met. Returns per-run counters; the labels stay readable via
/// [`SearchArena::distance`] / [`SearchArena::path_to`] until the arena's
/// next search begins.
///
/// # Panics
/// Panics if `source` is out of range for `g`.
pub fn run_in<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    source: NodeId,
    goal: &Goal,
) -> SearchStats {
    run_in_sink(arena, g, source, goal, &zero_pot, &mut NoRecord)
}

/// [`run_in`] with an optional goal-directed potential: `Some(π)` keys the
/// heap by `dist + π(node)` (A*-style goal direction with exact settled
/// labels, provided π is consistent — [`GoalPotential`] is), `None` is
/// plain Dijkstra, byte-identical to [`run_in`]. Settled labels, parents,
/// and paths are identical either way whenever shortest paths are unique;
/// only the settle order and the settled/relaxed/heap counters shrink.
///
/// # Panics
/// Panics if `source` is out of range for `g`.
pub fn run_in_guided<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    source: NodeId,
    goal: &Goal,
    pot: Option<&GoalPotential<'_>>,
) -> SearchStats {
    match pot {
        Some(p) => run_in_sink(arena, g, source, goal, &|n| p.eval(n), &mut NoRecord),
        None => run_in(arena, g, source, goal),
    }
}

/// [`run_in`], additionally recording the sweep as a reusable
/// [`SweepTrace`] (see [`crate::trace`]). The sweep itself is identical —
/// same labels, same counters — recording only appends one event per
/// settle, so tracing is safe to leave on whenever a tree cache might
/// want the result.
///
/// # Panics
/// Panics if `source` is out of range for `g`.
pub fn run_in_traced<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    source: NodeId,
    goal: &Goal,
) -> (SearchStats, SweepTrace) {
    // Reserve for the common deep-sweep case: one settle event per node
    // keeps recording out of the reallocator on the misses a cache pays.
    let mut rec = Recorder { events: Vec::with_capacity(g.num_nodes()), exhausted: false };
    let stats = run_in_sink(arena, g, source, goal, &zero_pot, &mut rec);
    let trace = SweepTrace::from_parts(source, g.num_nodes(), rec.events, stats, rec.exhausted);
    (stats, trace)
}

/// [`run_in_traced`] under an optional potential. The recorded trace is
/// stamped with the potential's parameters, so the cached runners can tell
/// guided sweeps from plain ones — their settle orders (and thus counter
/// snapshots) differ and must never be adopted across.
///
/// # Panics
/// Panics if `source` is out of range for `g`.
pub fn run_in_guided_traced<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    source: NodeId,
    goal: &Goal,
    pot: Option<&GoalPotential<'_>>,
) -> (SearchStats, SweepTrace) {
    match pot {
        Some(p) => {
            let mut rec = Recorder { events: Vec::with_capacity(g.num_nodes()), exhausted: false };
            let stats = run_in_sink(arena, g, source, goal, &|n| p.eval(n), &mut rec);
            let trace =
                SweepTrace::from_parts(source, g.num_nodes(), rec.events, stats, rec.exhausted)
                    .with_potential(Some(p.params().clone()));
            (stats, trace)
        }
        None => run_in_traced(arena, g, source, goal),
    }
}

/// The **adopt-or-grow** single-tree sweep: consult `store` for a
/// recorded sweep from `source` and adopt it when `goal` is provably
/// inside the recorded prefix (skipping Dijkstra entirely, replaying
/// byte-identical counters); otherwise grow the tree for real, record
/// it, and re-store it (the deeper sweep replaces the shallower one).
/// Hit or miss is reported through the store's counters.
///
/// This is the cached form of [`run_in`]; [`crate::multi::msmd_in_cached`]
/// drives it once per tree of an MSMD evaluation.
///
/// # Panics
/// Panics if `source` is out of range for `g`.
pub fn run_in_cached<G: GraphView, S: crate::trace::TreeStore>(
    arena: &mut SearchArena,
    g: &G,
    source: NodeId,
    goal: &Goal,
    store: &mut S,
) -> SearchStats {
    run_in_guided_cached(arena, g, source, goal, None, store)
}

/// [`run_in_cached`] under an optional potential — the guided
/// adopt-or-grow. A stored trace is only adopted when it ran under *this*
/// potential (parameters compared via [`SweepTrace::potential`]; plain
/// sweeps carry `None`): a sweep's counter snapshots replay its settle
/// order, which the potential shapes. On a mismatch the tree is grown for
/// real under the requested potential and re-stored, exactly like any
/// other miss — so the cache stays byte-identical to cache-off under
/// whichever heuristic the caller fixed.
///
/// # Panics
/// Panics if `source` is out of range for `g`.
pub fn run_in_guided_cached<G: GraphView, S: crate::trace::TreeStore>(
    arena: &mut SearchArena,
    g: &G,
    source: NodeId,
    goal: &Goal,
    pot: Option<&GoalPotential<'_>>,
    store: &mut S,
) -> SearchStats {
    use crate::trace::SweepDirection;
    assert!(source.index() < g.num_nodes(), "source out of range");
    let want = pot.map(|p| p.params());
    let adopted = store.lookup(source, SweepDirection::Forward).and_then(|trace| {
        // A different node count can only mean a stale entry for another
        // map; the store's epoch keying should already prevent this. The
        // potential check keeps guided and plain sweeps from aliasing.
        (trace.nodes() == g.num_nodes() && trace.potential() == want)
            .then(|| trace.adopt_into(arena, goal))
            .flatten()
    });
    match adopted {
        Some(stats) => {
            store.note_hit();
            stats
        }
        None => {
            store.note_miss();
            let (stats, trace) = run_in_guided_traced(arena, g, source, goal, pot);
            store.store(source, SweepDirection::Forward, trace);
            stats
        }
    }
}

/// Reusable single-tree search space: a [`SearchArena`] behind the
/// classic `run` / `distance` / `path_to` interface.
///
/// After [`Searcher::run`] the labels of the *last* search remain readable
/// through [`Searcher::distance`] / [`Searcher::path_to`] until the next
/// search starts. Like the arena it wraps, a `Searcher` is `Send`: worker
/// threads of a parallel backend each own one and move it freely.
#[derive(Debug, Default)]
pub struct Searcher {
    arena: SearchArena,
}

// Kept in lockstep with the arena's own Send guard: the parallel service
// layer pins one searcher/arena per worker thread.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Searcher>();
};

impl Searcher {
    /// Create an empty searcher; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying arena (e.g. to hand to [`crate::multi::msmd_in`] so
    /// plain and MSMD queries share one set of buffers).
    pub fn arena_mut(&mut self) -> &mut SearchArena {
        &mut self.arena
    }

    /// Run Dijkstra from `source` until `goal` is met. Returns per-run
    /// counters; query labels afterwards via [`Searcher::distance`] and
    /// [`Searcher::path_to`].
    pub fn run<G: GraphView>(&mut self, g: &G, source: NodeId, goal: &Goal) -> SearchStats {
        run_in(&mut self.arena, g, source, goal)
    }

    /// [`Searcher::run`], additionally recording the sweep as a reusable
    /// [`SweepTrace`] for a tree cache (see [`crate::trace`]).
    pub fn run_traced<G: GraphView>(
        &mut self,
        g: &G,
        source: NodeId,
        goal: &Goal,
    ) -> (SearchStats, SweepTrace) {
        run_in_traced(&mut self.arena, g, source, goal)
    }

    /// Adopt a recorded sweep as this searcher's current search (skipping
    /// Dijkstra entirely), when `goal` is provably inside the trace — see
    /// [`SweepTrace::adopt_into`]. Afterwards [`Searcher::distance`] /
    /// [`Searcher::path_to`] read the adopted tree.
    pub fn adopt(&mut self, trace: &SweepTrace, goal: &Goal) -> Option<SearchStats> {
        trace.adopt_into(&mut self.arena, goal)
    }

    /// Final distance to `n` from the last run's source, if `n` was
    /// labelled. Only exact (settled) for nodes the run settled before
    /// terminating; for an early-terminated run, nodes beyond the goal may
    /// carry tentative labels.
    pub fn distance(&self, n: NodeId) -> Option<f64> {
        self.arena.distance(0, n)
    }

    /// Reconstruct the path from the last run's source to `t`.
    pub fn path_to(&self, t: NodeId) -> Option<Path> {
        self.arena.path_to(0, t)
    }
}

/// One-shot shortest path `P(s,t)`; `None` if `t` is unreachable.
pub fn shortest_path<G: GraphView>(g: &G, s: NodeId, t: NodeId) -> Option<Path> {
    let mut searcher = Searcher::new();
    searcher.run(g, s, &Goal::Single(t));
    searcher.path_to(t)
}

/// One-shot shortest-path distance `‖s,t‖`.
pub fn shortest_distance<G: GraphView>(g: &G, s: NodeId, t: NodeId) -> Option<f64> {
    let mut searcher = Searcher::new();
    searcher.run(g, s, &Goal::Single(t));
    searcher.distance(t)
}

/// One-shot single-source multi-destination search (§III-B): paths from `s`
/// to each target, in target order, plus the run's counters.
pub fn multi_destination<G: GraphView>(
    g: &G,
    s: NodeId,
    targets: &[NodeId],
) -> (Vec<Option<Path>>, SearchStats) {
    let mut searcher = Searcher::new();
    let stats = searcher.run(g, s, &Goal::Set(targets.to_vec()));
    let paths = targets.iter().map(|&t| searcher.path_to(t)).collect();
    (paths, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::{GridConfig, grid_network};
    use roadnet::{GraphBuilder, Point};

    fn diamond() -> roadnet::RoadNetwork {
        // 0 —1→ 1 —1→ 3 ; 0 —3→ 2 —0.5→ 3 : best 0→1→3 = 2.0
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 3.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_shortest_path_in_diamond() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert!((p.distance() - 2.0).abs() < 1e-12);
        assert!(p.verify(&g, 1e-9));
    }

    #[test]
    fn source_equals_target() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(2), NodeId(2)).unwrap();
        assert!(p.is_trivial());
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0.0, 0.0)).unwrap();
        b.add_node(Point::new(1.0, 0.0)).unwrap();
        b.add_node(Point::new(2.0, 0.0)).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        assert!(shortest_path(&g, NodeId(0), NodeId(2)).is_none());
        assert!(shortest_distance(&g, NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn early_termination_settles_fewer_nodes_than_full_tree() {
        let g = grid_network(&GridConfig { width: 24, height: 24, seed: 1, ..Default::default() })
            .unwrap();
        let mut s = Searcher::new();
        let full = s.run(&g, NodeId(0), &Goal::AllNodes);
        let single = s.run(&g, NodeId(0), &Goal::Single(NodeId(25))); // a nearby node
        assert!(single.settled < full.settled / 4, "{} vs {}", single.settled, full.settled);
        assert_eq!(full.settled, 24 * 24, "full tree settles every node");
    }

    #[test]
    fn multi_destination_matches_individual_searches() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 3, ..Default::default() })
            .unwrap();
        let s = NodeId(5);
        let targets = [NodeId(100), NodeId(37), NodeId(143), NodeId(9)];
        let (paths, stats) = multi_destination(&g, s, &targets);
        for (i, &t) in targets.iter().enumerate() {
            let solo = shortest_path(&g, s, t).unwrap();
            let multi = paths[i].as_ref().unwrap();
            assert!((solo.distance() - multi.distance()).abs() < 1e-9, "target {t}");
            assert!(multi.verify(&g, 1e-9));
        }
        // Multi-destination cost ≤ sum of individual costs.
        let individual: u64 = targets
            .iter()
            .map(|&t| {
                let mut se = Searcher::new();
                se.run(&g, s, &Goal::Single(t)).settled
            })
            .sum();
        assert!(stats.settled <= individual);
    }

    #[test]
    fn multi_destination_cost_tracks_farthest_target_only() {
        // Lemma 1's observation: adding near targets to a far one is ~free.
        let g = grid_network(&GridConfig { width: 30, height: 30, seed: 7, ..Default::default() })
            .unwrap();
        let s = NodeId(0);
        let far = NodeId(30 * 30 - 1);
        let mut searcher = Searcher::new();
        let far_only = searcher.run(&g, s, &Goal::Set(vec![far]));
        let with_near =
            searcher.run(&g, s, &Goal::Set(vec![far, NodeId(31), NodeId(62), NodeId(100)]));
        let ratio = with_near.settled as f64 / far_only.settled as f64;
        assert!(ratio <= 1.05, "near targets inflated cost by {ratio}");
    }

    #[test]
    fn duplicate_targets_are_handled() {
        let g = diamond();
        let (paths, _) = multi_destination(&g, NodeId(0), &[NodeId(3), NodeId(3)]);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], paths[1]);
    }

    #[test]
    fn searcher_reuse_resets_labels() {
        let g = diamond();
        let mut s = Searcher::new();
        s.run(&g, NodeId(0), &Goal::AllNodes);
        assert!(s.distance(NodeId(3)).is_some());
        s.run(&g, NodeId(3), &Goal::Single(NodeId(2)));
        // Distance now from node 3, not node 0.
        assert!((s.distance(NodeId(2)).unwrap() - 0.5).abs() < 1e-12);
        // Node 1 may or may not be labelled; if labelled, from the new source.
        if let Some(d) = s.distance(NodeId(1)) {
            assert!(d >= 0.5);
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths: parents must be chosen deterministically.
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build().unwrap();
        let p1 = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        let p2 = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p1, p2);
        assert!((p1.distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_are_plausible() {
        let g = grid_network(&GridConfig { width: 10, height: 10, seed: 0, ..Default::default() })
            .unwrap();
        let mut s = Searcher::new();
        let st = s.run(&g, NodeId(0), &Goal::AllNodes);
        assert_eq!(st.runs, 1);
        assert_eq!(st.settled, 100);
        assert!(st.relaxed >= st.settled);
        assert!(st.heap_pops <= st.heap_pushes);
    }

    #[test]
    fn out_of_range_reads_are_none_not_stale() {
        let big =
            grid_network(&GridConfig { width: 10, height: 10, seed: 0, ..Default::default() })
                .unwrap();
        let small = diamond();
        let mut s = Searcher::new();
        s.run(&big, NodeId(0), &Goal::AllNodes);
        s.run(&small, NodeId(0), &Goal::AllNodes);
        // Node 50 exists only in the big graph; its old label must not leak.
        assert_eq!(s.distance(NodeId(50)), None);
        assert!(s.path_to(NodeId(50)).is_none());
    }
}
