/root/repo/vendor/serde_json/target/debug/deps/serde_json-e86fe8a5415fd742.d: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/serde_json-e86fe8a5415fd742: src/lib.rs

src/lib.rs:
