//! The path query obfuscator (§IV, Figures 5–6).
//!
//! The obfuscator is the trusted third party between clients and the
//! directions-search server. It keeps a simple road map (generated, in this
//! reproduction, by `roadnet::generators` standing in for TIGER/Line), and
//! turns client requests `⟨u, (s,t), (f_S, f_T)⟩` into obfuscated path
//! queries:
//!
//! * [`Obfuscator::obfuscate_independent`] — one `Q(S,T)` per request with
//!   `|S| = f_S`, `|T| = f_T` (Figure 3);
//! * [`Obfuscator::obfuscate_shared`] — one `Q(S,T)` for a group of
//!   requests with `{sᵢ} ⊆ S`, `{tᵢ} ⊆ T`, `|S| ≥ max f_Sᵢ`,
//!   `|T| ≥ max f_Tᵢ` (Figure 4);
//! * [`Obfuscator::obfuscate_batch`] — the full §IV pipeline: cluster the
//!   batch ([`clustering`]), then obfuscate each cluster.

pub mod clustering;
pub mod strategy;

pub use clustering::{Cluster, ClusteringConfig, cluster_requests};
pub use strategy::{FakeSelection, SelectionContext, select_fakes};

use crate::error::{OpaqueError, Result};
use crate::query::{ClientRequest, ObfuscatedPathQuery};
use rand::SeedableRng;
use rand::rngs::StdRng;
use roadnet::{NodeId, RoadNetwork, SpatialIndex};
use std::collections::HashSet;

/// How a batch of requests is turned into obfuscated queries.
///
/// Serializes with serde's externally-tagged enum representation — unit
/// modes as their variant name, `SharedClustered` as a tagged object
/// carrying its [`ClusteringConfig`] — so reports round-trip the *full*
/// mode, parameters included, instead of a lossy display string.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ObfuscationMode {
    /// One independently obfuscated query per request (Figure 3).
    #[default]
    Independent,
    /// A single shared obfuscated query for the whole batch (Figure 4).
    SharedGlobal,
    /// Cluster the batch spatially, one shared query per cluster (§IV).
    SharedClustered(ClusteringConfig),
}

impl std::fmt::Display for ObfuscationMode {
    /// Short name used in experiment tables and logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ObfuscationMode::Independent => "independent",
            ObfuscationMode::SharedGlobal => "shared-global",
            ObfuscationMode::SharedClustered(_) => "shared-clustered",
        })
    }
}

/// One obfuscated query together with the requests it answers. The unit the
/// server processes and the candidate-result filter later unpacks.
#[derive(Clone, Debug)]
pub struct ObfuscationUnit {
    /// The obfuscated query `Q(S, T)` sent to the server.
    pub query: ObfuscatedPathQuery,
    /// The true requests hidden inside it.
    pub requests: Vec<ClientRequest>,
}

impl ObfuscationUnit {
    /// Check the Definition 1 invariants for every carried request: the
    /// true endpoints are embedded and the requested protection met.
    pub fn is_well_formed(&self) -> bool {
        self.requests
            .iter()
            .all(|r| self.query.covers(&r.query) && self.query.satisfies(&r.protection))
    }
}

/// The trusted obfuscator. Owns its map copy, a spatial index over it, the
/// fake-selection strategy, optional plausibility weights, and a seeded RNG
/// (all obfuscation is reproducible given the seed).
pub struct Obfuscator {
    map: RoadNetwork,
    index: SpatialIndex,
    strategy: FakeSelection,
    weights: Option<Vec<f64>>,
    rng: StdRng,
    /// Memo of independently obfuscated queries, keyed by the true query
    /// and its protection sizes. See [`Obfuscator::with_consistent_fakes`].
    consistency_cache:
        Option<std::collections::HashMap<(crate::query::PathQuery, u32, u32), ObfuscatedPathQuery>>,
}

impl Obfuscator {
    /// Build an obfuscator over `map` with the given strategy and RNG seed.
    pub fn new(map: RoadNetwork, strategy: FakeSelection, seed: u64) -> Self {
        let index = SpatialIndex::build(&map);
        Obfuscator {
            map,
            index,
            strategy,
            weights: None,
            rng: StdRng::seed_from_u64(seed),
            consistency_cache: None,
        }
    }

    /// Enable **consistent fakes**: the same true query (with the same
    /// protection sizes) is always obfuscated into the same `Q(S,T)`.
    ///
    /// Without this, a client that re-issues a query — retrying after a
    /// timeout, or checking directions again the next morning — receives a
    /// fresh fake set each time. A server that links the requests (same
    /// anonymous session, timing, or simply the only overlap between two
    /// obfuscated queries) can *intersect* the represented pair sets; only
    /// the true pair survives every round, so the breach probability decays
    /// from `1/(|S|·|T|)` to 1 in a handful of repetitions (see
    /// [`crate::attack::intersection_attack`] and experiment E11).
    ///
    /// The memo applies to *independent* obfuscation only: shared queries
    /// mix batches, so their composition legitimately varies. The paper
    /// discards satisfied requests "for sake of security" (§IV);
    /// remembering only the query→fakes mapping (not who asked) preserves
    /// that property while closing the intersection channel.
    pub fn with_consistent_fakes(mut self, enabled: bool) -> Self {
        self.consistency_cache = enabled.then(std::collections::HashMap::new);
        self
    }

    /// Attach per-node plausibility weights (enables
    /// [`FakeSelection::Weighted`] and lets experiments model the
    /// background-knowledge adversary).
    ///
    /// # Panics
    /// Panics if `weights.len()` differs from the map's node count.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.map.num_nodes(), "one weight per node");
        self.weights = Some(weights);
        self
    }

    /// The obfuscator's map.
    pub fn map(&self) -> &RoadNetwork {
        &self.map
    }

    /// Apply live-traffic weight updates to the obfuscator's own map copy,
    /// keeping it in lockstep with the serving side (result verification
    /// re-walks returned paths against this map, so a drifted copy would
    /// reject honest answers). Returns the edges whose weight actually
    /// changed.
    ///
    /// Everything else the obfuscator owns is weight-independent and
    /// survives untouched: the [`SpatialIndex`] is geometry-only, and the
    /// consistency memo keys fake sets by the true query — reweighting
    /// does not change which fakes keep a query plausible, and *re-rolling*
    /// fakes on every traffic tick would reopen the intersection channel
    /// the memo exists to close.
    ///
    /// # Errors
    /// Propagates [`roadnet::RoadNetError`] from
    /// [`RoadNetwork::update_weights`]; the map is untouched on error.
    pub fn update_weights(
        &mut self,
        updates: &[(roadnet::EdgeId, f64)],
    ) -> std::result::Result<Vec<roadnet::EdgeId>, roadnet::RoadNetError> {
        self.map.update_weights(updates)
    }

    /// Replace the obfuscator's map copy outright — the topology-change
    /// counterpart of [`Obfuscator::update_weights`], mirroring the
    /// serving side's `swap_map`. The spatial index is rebuilt and the
    /// consistency memo cleared: old fake sets may reference nodes that no
    /// longer exist.
    pub fn swap_map(&mut self, map: RoadNetwork) {
        self.index = SpatialIndex::build(&map);
        self.map = map;
        if let Some(cache) = &mut self.consistency_cache {
            cache.clear();
        }
    }

    /// The active fake-selection strategy.
    pub fn strategy(&self) -> FakeSelection {
        self.strategy
    }

    /// Plausibility weights, if attached.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Count-level feasibility check: everything `check_request`
    /// validates, plus whether the map can hold the requested sets at all.
    /// Obfuscated queries are built with `S` and `T` disjoint (fakes never
    /// collide with any already-chosen endpoint), so a request needs
    /// `f_S + f_T` distinct nodes — that invariant lives here, next to the
    /// code that enforces it, and the service layer's admission path asks
    /// this method instead of restating the bound. Strategy-level
    /// constraints (e.g. a network ring confined to a small component)
    /// are only discoverable by actually obfuscating.
    pub fn can_satisfy(&self, r: &ClientRequest) -> Result<()> {
        self.check_request(r)?;
        let n = self.map.num_nodes();
        let needed = r.protection.f_s as usize + r.protection.f_t as usize;
        if needed > n {
            return Err(OpaqueError::NotEnoughFakes { requested: needed, available: n });
        }
        Ok(())
    }

    /// Validate a request against this obfuscator's map: endpoints must be
    /// known nodes and the protection sizes positive. Shared with the
    /// service layer's admission path.
    pub(crate) fn check_request(&self, r: &ClientRequest) -> Result<()> {
        let n = self.map.num_nodes();
        for node in [r.query.source, r.query.destination] {
            if node.index() >= n {
                return Err(OpaqueError::UnknownNode { node });
            }
        }
        if r.protection.f_s == 0 || r.protection.f_t == 0 {
            return Err(OpaqueError::InvalidProtection {
                f_s: r.protection.f_s,
                f_t: r.protection.f_t,
            });
        }
        Ok(())
    }

    fn pick(
        &mut self,
        anchor: NodeId,
        counterpart: NodeId,
        exclude: &HashSet<NodeId>,
        count: usize,
    ) -> Result<Vec<NodeId>> {
        let ctx = SelectionContext {
            map: &self.map,
            index: &self.index,
            weights: self.weights.as_deref(),
            anchor,
            counterpart,
        };
        select_fakes(self.strategy, &ctx, exclude, count, &mut self.rng)
    }

    /// Independently obfuscate one request (Figure 3): `|S| = f_S` and
    /// `|T| = f_T`, with the true endpoints embedded.
    pub fn obfuscate_independent(&mut self, request: &ClientRequest) -> Result<ObfuscationUnit> {
        self.check_request(request)?;
        let cache_key = (request.query, request.protection.f_s, request.protection.f_t);
        if let Some(cache) = &self.consistency_cache {
            if let Some(query) = cache.get(&cache_key) {
                return Ok(ObfuscationUnit { query: query.clone(), requests: vec![*request] });
            }
        }
        let q = request.query;
        // Fakes may not collide with either true endpoint: a fake source
        // equal to the true destination (or vice versa) would shrink the
        // sorted sets below the requested sizes.
        let mut exclude: HashSet<NodeId> = [q.source, q.destination].into_iter().collect();

        let fake_sources =
            self.pick(q.source, q.destination, &exclude, request.protection.f_s as usize - 1)?;
        exclude.extend(fake_sources.iter().copied());
        let fake_targets =
            self.pick(q.destination, q.source, &exclude, request.protection.f_t as usize - 1)?;

        let mut sources = fake_sources;
        sources.push(q.source);
        let mut targets = fake_targets;
        targets.push(q.destination);
        let unit = ObfuscationUnit {
            query: ObfuscatedPathQuery::new(sources, targets),
            requests: vec![*request],
        };
        debug_assert!(unit.is_well_formed());
        if let Some(cache) = &mut self.consistency_cache {
            cache.insert(cache_key, unit.query.clone());
        }
        Ok(unit)
    }

    /// Obfuscate a group of requests into one shared query (Figure 4):
    /// every true source/destination is embedded and the *strictest*
    /// protection setting in the group is met. Requests whose endpoints
    /// overlap shrink the true sets — fakes are added until the size
    /// constraints hold.
    pub fn obfuscate_shared(&mut self, requests: &[ClientRequest]) -> Result<ObfuscationUnit> {
        if requests.is_empty() {
            return Err(OpaqueError::EmptyBatch);
        }
        for r in requests {
            self.check_request(r)?;
        }

        let mut sources: Vec<NodeId> = requests.iter().map(|r| r.query.source).collect();
        let mut targets: Vec<NodeId> = requests.iter().map(|r| r.query.destination).collect();
        sources.sort_unstable();
        sources.dedup();
        targets.sort_unstable();
        targets.dedup();

        let need_s = requests.iter().map(|r| r.protection.f_s).max().expect("non-empty") as usize;
        let need_t = requests.iter().map(|r| r.protection.f_t).max().expect("non-empty") as usize;

        let mut exclude: HashSet<NodeId> = sources.iter().chain(targets.iter()).copied().collect();

        // Anchor each fake on a member request round-robin, so fakes are
        // plausible for every participant rather than clustering around one.
        if sources.len() < need_s {
            let missing = need_s - sources.len();
            for k in 0..missing {
                let r = &requests[k % requests.len()];
                let fake = self.pick(r.query.source, r.query.destination, &exclude, 1)?;
                exclude.extend(fake.iter().copied());
                sources.extend(fake);
            }
        }
        if targets.len() < need_t {
            let missing = need_t - targets.len();
            for k in 0..missing {
                let r = &requests[k % requests.len()];
                let fake = self.pick(r.query.destination, r.query.source, &exclude, 1)?;
                exclude.extend(fake.iter().copied());
                targets.extend(fake);
            }
        }

        let unit = ObfuscationUnit {
            query: ObfuscatedPathQuery::new(sources, targets),
            requests: requests.to_vec(),
        };
        debug_assert!(unit.is_well_formed());
        Ok(unit)
    }

    /// The full §IV obfuscation pipeline for a batch of requests.
    pub fn obfuscate_batch(
        &mut self,
        requests: &[ClientRequest],
        mode: ObfuscationMode,
    ) -> Result<Vec<ObfuscationUnit>> {
        if requests.is_empty() {
            return Err(OpaqueError::EmptyBatch);
        }
        match mode {
            ObfuscationMode::Independent => {
                requests.iter().map(|r| self.obfuscate_independent(r)).collect()
            }
            ObfuscationMode::SharedGlobal => Ok(vec![self.obfuscate_shared(requests)?]),
            ObfuscationMode::SharedClustered(cfg) => {
                let clusters = cluster_requests(&self.map, requests, &cfg);
                clusters
                    .into_iter()
                    .map(|c| {
                        let members: Vec<ClientRequest> =
                            c.members.iter().map(|&i| requests[i]).collect();
                        self.obfuscate_shared(&members)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ClientId, PathQuery, ProtectionSettings};
    use roadnet::generators::{GridConfig, grid_network};

    fn obfuscator(strategy: FakeSelection) -> Obfuscator {
        let map =
            grid_network(&GridConfig { width: 20, height: 20, seed: 1, ..Default::default() })
                .unwrap();
        Obfuscator::new(map, strategy, 42)
    }

    fn request(i: u32, s: u32, t: u32, f_s: u32, f_t: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(s), NodeId(t)),
            ProtectionSettings::new(f_s, f_t).unwrap(),
        )
    }

    #[test]
    fn independent_meets_exact_sizes() {
        for strategy in [FakeSelection::Uniform, FakeSelection::default_ring()] {
            let mut ob = obfuscator(strategy);
            let r = request(0, 5, 390, 3, 4);
            let unit = ob.obfuscate_independent(&r).unwrap();
            assert_eq!(unit.query.sources().len(), 3, "{}", strategy.name());
            assert_eq!(unit.query.targets().len(), 4, "{}", strategy.name());
            assert!(unit.query.covers(&r.query));
            assert!(unit.is_well_formed());
            assert!((unit.query.breach_probability() - 1.0 / 12.0).abs() < 1e-12);
        }
    }

    #[test]
    fn protection_of_one_means_no_fakes() {
        let mut ob = obfuscator(FakeSelection::Uniform);
        let r = request(0, 5, 390, 1, 1);
        let unit = ob.obfuscate_independent(&r).unwrap();
        assert_eq!(unit.query.sources(), &[NodeId(5)]);
        assert_eq!(unit.query.targets(), &[NodeId(390)]);
        assert_eq!(unit.query.breach_probability(), 1.0);
    }

    #[test]
    fn shared_embeds_all_true_endpoints_and_respects_max_protection() {
        let mut ob = obfuscator(FakeSelection::default_ring());
        let reqs =
            vec![request(0, 0, 399, 2, 3), request(1, 21, 378, 4, 2), request(2, 40, 360, 3, 3)];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        for r in &reqs {
            assert!(unit.query.covers(&r.query));
            assert!(unit.query.satisfies(&r.protection));
        }
        assert!(unit.query.sources().len() >= 4);
        assert!(unit.query.targets().len() >= 3);
        assert!(unit.is_well_formed());
    }

    #[test]
    fn shared_with_enough_true_endpoints_adds_no_fakes() {
        let mut ob = obfuscator(FakeSelection::Uniform);
        // 4 distinct sources and destinations; protection only asks for 3.
        let reqs = vec![
            request(0, 0, 399, 3, 3),
            request(1, 21, 378, 3, 3),
            request(2, 40, 360, 3, 3),
            request(3, 60, 340, 3, 3),
        ];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        assert_eq!(unit.query.sources().len(), 4, "true sources suffice");
        assert_eq!(unit.query.targets().len(), 4, "true targets suffice");
    }

    #[test]
    fn shared_handles_overlapping_endpoints() {
        let mut ob = obfuscator(FakeSelection::Uniform);
        // Both clients start at node 0 — the true source set has size 1, so
        // a fake must be added to reach f_S = 2.
        let reqs = vec![request(0, 0, 399, 2, 2), request(1, 0, 380, 2, 2)];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        assert!(unit.query.sources().len() >= 2);
        assert!(unit.query.targets().len() >= 2);
        assert!(unit.is_well_formed());
    }

    #[test]
    fn batch_modes_cover_all_requests() {
        let reqs: Vec<ClientRequest> =
            (0..8).map(|i| request(i, i * 37 % 400, (i * 53 + 200) % 400, 2, 2)).collect();
        for mode in [
            ObfuscationMode::Independent,
            ObfuscationMode::SharedGlobal,
            ObfuscationMode::SharedClustered(ClusteringConfig::default()),
        ] {
            let mut ob = obfuscator(FakeSelection::default_ring());
            let units = ob.obfuscate_batch(&reqs, mode).unwrap();
            let covered: usize = units.iter().map(|u| u.requests.len()).sum();
            assert_eq!(covered, reqs.len(), "{mode}");
            for u in &units {
                assert!(u.is_well_formed(), "{mode}");
            }
            match mode {
                ObfuscationMode::Independent => assert_eq!(units.len(), 8),
                ObfuscationMode::SharedGlobal => assert_eq!(units.len(), 1),
                ObfuscationMode::SharedClustered(_) => assert!(!units.is_empty()),
            }
        }
    }

    #[test]
    fn shared_reduces_total_pairs_versus_independent() {
        // The efficiency claim behind Figure 4: k requests sharing fakes
        // produce far fewer server-side pairs than k independent queries.
        let reqs: Vec<ClientRequest> =
            (0..6).map(|i| request(i, i * 2, 399 - i * 3, 4, 4)).collect();
        let mut ob1 = obfuscator(FakeSelection::default_ring());
        let indep = ob1.obfuscate_batch(&reqs, ObfuscationMode::Independent).unwrap();
        let mut ob2 = obfuscator(FakeSelection::default_ring());
        let shared = ob2.obfuscate_batch(&reqs, ObfuscationMode::SharedGlobal).unwrap();
        let indep_pairs: usize = indep.iter().map(|u| u.query.num_pairs()).sum();
        let shared_pairs: usize = shared.iter().map(|u| u.query.num_pairs()).sum();
        assert!(
            shared_pairs < indep_pairs,
            "shared {shared_pairs} pairs vs independent {indep_pairs}"
        );
    }

    #[test]
    fn errors_are_reported() {
        let mut ob = obfuscator(FakeSelection::Uniform);
        assert!(matches!(ob.obfuscate_shared(&[]), Err(OpaqueError::EmptyBatch)));
        let bad = request(0, 9999, 1, 2, 2);
        assert!(matches!(ob.obfuscate_independent(&bad), Err(OpaqueError::UnknownNode { .. })));
        // Map has 400 nodes; asking for 500 sources cannot be satisfied.
        let greedy = request(0, 0, 399, 500, 2);
        assert!(matches!(
            ob.obfuscate_independent(&greedy),
            Err(OpaqueError::NotEnoughFakes { .. })
        ));
    }

    #[test]
    fn same_seed_reproduces_obfuscation() {
        let r = request(0, 5, 390, 3, 3);
        let mut a = obfuscator(FakeSelection::default_ring());
        let mut b = obfuscator(FakeSelection::default_ring());
        assert_eq!(
            a.obfuscate_independent(&r).unwrap().query,
            b.obfuscate_independent(&r).unwrap().query
        );
    }

    #[test]
    fn mode_display_names() {
        assert_eq!(ObfuscationMode::Independent.to_string(), "independent");
        assert_eq!(ObfuscationMode::SharedGlobal.to_string(), "shared-global");
        assert_eq!(
            ObfuscationMode::SharedClustered(ClusteringConfig::default()).to_string(),
            "shared-clustered"
        );
    }

    #[test]
    fn mode_serde_round_trips_with_parameters() {
        for mode in [
            ObfuscationMode::Independent,
            ObfuscationMode::SharedGlobal,
            ObfuscationMode::SharedClustered(ClusteringConfig {
                radius_scale: 0.75,
                max_cluster_size: 9,
            }),
        ] {
            let json = serde_json::to_string(&mode).unwrap();
            let back: ObfuscationMode = serde_json::from_str(&json).unwrap();
            assert_eq!(back, mode, "{json}");
        }
        // Externally tagged: the clustered mode keeps its parameters.
        let json =
            serde_json::to_string(&ObfuscationMode::SharedClustered(ClusteringConfig::default()))
                .unwrap();
        assert!(json.contains("SharedClustered") && json.contains("radius_scale"), "{json}");
        assert_eq!(
            serde_json::to_string(&ObfuscationMode::Independent).unwrap(),
            "\"Independent\""
        );
    }
}
