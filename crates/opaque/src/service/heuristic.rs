//! Goal-directed search configuration for the backend shard fleet.
//!
//! Plain MSMD sweeps settle nodes in every direction until the goal set
//! is reached; on a continent-scale map most of that work is wasted on
//! nodes that could never lie on a shortest path to any target. ALT
//! landmarks ([`pathsearch::AltPreprocessing`]) give every sweep an
//! admissible, consistent lower bound to its goal set, pruning the
//! settled region while keeping answers — paths, costs, outcomes,
//! reports — byte-identical to the unguided evaluation (the
//! `tests/heuristic_equivalence.rs` guarantee). [`SearchHeuristic`] is
//! the serializable knob selecting between the two regimes; the actual
//! landmark tables are built once in [`crate::ServiceBuilder::build`] and
//! shared across the whole shard fleet behind an `Arc`.

use crate::error::{OpaqueError, Result};
use pathsearch::AltPreprocessing;
use roadnet::GraphView;
use std::sync::Arc;

/// How backend shards guide their Dijkstra sweeps.
///
/// Serialized in the externally-tagged enum form (`"None"` /
/// `{"Alt":{"landmarks":8}}`); a missing or `null` config field reads as
/// [`SearchHeuristic::None`], so configs written before this knob existed
/// keep their meaning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchHeuristic {
    /// Unguided sweeps — the historical behavior and the oracle the
    /// guided regime is proven against.
    #[default]
    None,
    /// ALT goal-directed pruning: `landmarks` farthest-point landmarks
    /// are preprocessed once per map and every sweep is keyed by an
    /// admissible max-over-targets triangle-inequality bound.
    Alt {
        /// Number of landmarks (≥ 1, ≤ the map's node count). More
        /// landmarks tighten the bound at `O(landmarks)` extra work per
        /// settled node; 8–16 is the usual sweet spot.
        landmarks: usize,
    },
}

impl SearchHeuristic {
    /// Short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            SearchHeuristic::None => "none".to_string(),
            SearchHeuristic::Alt { landmarks } => format!("alt(landmarks={landmarks})"),
        }
    }

    /// Check the parameters are satisfiable on their own (cheap,
    /// map-independent; the map-dependent checks — landmark count vs node
    /// count, symmetry — happen in [`SearchHeuristic::preprocess`]).
    pub fn validate(&self) -> Result<()> {
        match self {
            SearchHeuristic::None => Ok(()),
            SearchHeuristic::Alt { landmarks } => {
                if *landmarks == 0 {
                    return Err(OpaqueError::InvalidConfig {
                        reason: "Alt heuristic needs at least one landmark".to_string(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Build the shared landmark tables for `map`, or `None` under
    /// [`SearchHeuristic::None`]. Directed maps and landmark counts
    /// exceeding the node count are configuration errors
    /// ([`pathsearch::AltError`] mapped to
    /// [`OpaqueError::InvalidConfig`]).
    pub fn preprocess<G: GraphView>(&self, map: &G) -> Result<Option<Arc<AltPreprocessing>>> {
        match self {
            SearchHeuristic::None => Ok(None),
            SearchHeuristic::Alt { landmarks } => {
                let pre = AltPreprocessing::try_build(map, *landmarks).map_err(|e| {
                    OpaqueError::InvalidConfig { reason: format!("Alt heuristic: {e}") }
                })?;
                Ok(Some(Arc::new(pre)))
            }
        }
    }
}

// Hand-written (instead of derived) for one reason: absent config fields
// deserialize from `Null`, and `Null` must read as the unguided default
// so pre-heuristic `ServiceConfig` JSON still parses.
impl serde::Serialize for SearchHeuristic {
    fn to_value(&self) -> serde::Value {
        match self {
            SearchHeuristic::None => serde::Value::Str("None".to_string()),
            SearchHeuristic::Alt { landmarks } => serde::Value::Object(vec![(
                "Alt".to_string(),
                serde::Value::Object(vec![("landmarks".to_string(), landmarks.to_value())]),
            )]),
        }
    }
}

impl serde::Deserialize for SearchHeuristic {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        match v {
            serde::Value::Null => Ok(SearchHeuristic::None),
            serde::Value::Str(s) if s == "None" => Ok(SearchHeuristic::None),
            serde::Value::Object(entries) => match entries.as_slice() {
                [(tag, inner)] if tag == "Alt" => {
                    let fields = inner
                        .as_object()
                        .ok_or_else(|| serde::DeError::expected("object for variant Alt"))?;
                    let landmarks =
                        serde::Deserialize::from_value(serde::__field(fields, "landmarks"))?;
                    Ok(SearchHeuristic::Alt { landmarks })
                }
                _ => Err(serde::DeError::expected("SearchHeuristic variant")),
            },
            _ => Err(serde::DeError::expected("string or map for enum SearchHeuristic")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::{GridConfig, grid_network};

    #[test]
    fn names_and_defaults() {
        assert_eq!(SearchHeuristic::default(), SearchHeuristic::None);
        assert_eq!(SearchHeuristic::None.name(), "none");
        assert_eq!(SearchHeuristic::Alt { landmarks: 8 }.name(), "alt(landmarks=8)");
    }

    #[test]
    fn validate_rejects_zero_landmarks() {
        assert!(SearchHeuristic::None.validate().is_ok());
        assert!(SearchHeuristic::Alt { landmarks: 1 }.validate().is_ok());
        let err = SearchHeuristic::Alt { landmarks: 0 }.validate().unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("landmark")),
            "{err}"
        );
    }

    #[test]
    fn preprocess_builds_shared_tables_or_nothing() {
        let g = grid_network(&GridConfig { width: 8, height: 8, seed: 3, ..Default::default() })
            .unwrap();
        assert!(SearchHeuristic::None.preprocess(&g).unwrap().is_none());
        let pre = SearchHeuristic::Alt { landmarks: 4 }.preprocess(&g).unwrap().unwrap();
        assert_eq!(pre.landmarks().len(), 4);
        // Map-dependent failure: more landmarks than nodes.
        let err = SearchHeuristic::Alt { landmarks: 65 }.preprocess(&g).unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("landmark")),
            "{err}"
        );
    }

    #[test]
    fn preprocess_rejects_directed_maps() {
        use roadnet::{GraphBuilder, Point};
        let mut b = GraphBuilder::directed();
        b.add_node(Point::new(0.0, 0.0)).unwrap();
        b.add_node(Point::new(1.0, 0.0)).unwrap();
        b.add_edge(roadnet::NodeId(0), roadnet::NodeId(1), 1.0).unwrap();
        let g = b.build().unwrap();
        let err = SearchHeuristic::Alt { landmarks: 1 }.preprocess(&g).unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("symmetric")),
            "{err}"
        );
    }

    #[test]
    fn serde_round_trips_and_null_back_compat() {
        for h in [SearchHeuristic::None, SearchHeuristic::Alt { landmarks: 12 }] {
            let json = serde_json::to_string(&h).unwrap();
            let back: SearchHeuristic = serde_json::from_str(&json).unwrap();
            assert_eq!(back, h, "{json}");
        }
        assert_eq!(
            serde_json::to_string(&SearchHeuristic::Alt { landmarks: 3 }).unwrap(),
            r#"{"Alt":{"landmarks":3}}"#
        );
        // Null (an absent config field) reads as the unguided default.
        let back: SearchHeuristic = serde_json::from_str("null").unwrap();
        assert_eq!(back, SearchHeuristic::None);
        assert!(serde_json::from_str::<SearchHeuristic>(r#""Alt""#).is_err());
        assert!(serde_json::from_str::<SearchHeuristic>("3").is_err());
    }
}
