//! Exact LRU buffer pool over simulated disk pages.
//!
//! Fault counts must be deterministic and reproducible across runs (they are
//! experiment outputs), so this is a textbook exact-LRU implementation — an
//! intrusive doubly-linked list over a slot vector plus a page→slot map —
//! rather than an approximation like CLOCK.

use std::collections::HashMap;

/// Counters exposed by the buffer pool.
///
/// `faults` is the simulated I/O cost: each fault stands for one disk page
/// read. `accesses` counts logical page touches, so `faults / accesses`
/// complements [`IoStats::hit_ratio`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IoStats {
    /// Logical page touches.
    pub accesses: u64,
    /// Touches that required a (simulated or real) disk read.
    pub faults: u64,
    /// Resident pages displaced to make room.
    pub evictions: u64,
}

impl IoStats {
    /// Fraction of accesses served from the buffer (0 when untouched).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 { 0.0 } else { 1.0 - self.faults as f64 / self.accesses as f64 }
    }

    /// Aggregate two counters (used when merging per-query stats).
    pub fn merge(&mut self, other: IoStats) {
        self.accesses += other.accesses;
        self.faults += other.faults;
        self.evictions += other.evictions;
    }
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Slot {
    page: u32,
    prev: u32,
    next: u32,
}

/// Fixed-capacity exact-LRU page buffer.
#[derive(Clone, Debug)]
pub struct LruBuffer {
    capacity: usize,
    slots: Vec<Slot>,
    map: HashMap<u32, u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    stats: IoStats,
}

impl LruBuffer {
    /// A buffer holding at most `capacity` pages (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer must hold at least one page");
        LruBuffer {
            capacity,
            slots: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            stats: IoStats::default(),
        }
    }

    /// Buffer capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// True if `page` is currently buffered (does not count as an access).
    pub fn contains(&self, page: u32) -> bool {
        self.map.contains_key(&page)
    }

    /// Counters since construction or the last [`LruBuffer::reset_stats`].
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zero the counters (resident pages stay resident — experiments reset
    /// between queries to measure warm-buffer behaviour).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Evict everything and zero the counters.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
        self.stats = IoStats::default();
    }

    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        self.slots[slot as usize].prev = NIL;
        self.slots[slot as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Access `page`: returns `true` if the access faulted (page was not
    /// resident and a simulated disk read happened).
    pub fn touch(&mut self, page: u32) -> bool {
        self.stats.accesses += 1;
        if let Some(&slot) = self.map.get(&page) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return false;
        }
        self.stats.faults += 1;
        let slot = if self.map.len() < self.capacity {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot { page, prev: NIL, next: NIL });
            slot
        } else {
            // Evict the LRU page and reuse its slot.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity >= 1 guarantees a victim");
            self.unlink(victim);
            let old_page = self.slots[victim as usize].page;
            self.map.remove(&old_page);
            self.stats.evictions += 1;
            self.slots[victim as usize].page = page;
            victim
        };
        self.map.insert(page, slot);
        self.push_front(slot);
        true
    }

    /// Pages from most- to least-recently used (test/debug helper).
    pub fn lru_order(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slots[cur as usize].page);
            cur = self.slots[cur as usize].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_only_on_first_touch_when_capacity_suffices() {
        let mut b = LruBuffer::new(4);
        assert!(b.touch(1));
        assert!(b.touch(2));
        assert!(!b.touch(1));
        assert!(!b.touch(2));
        let s = b.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.faults, 2);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut b = LruBuffer::new(2);
        b.touch(1);
        b.touch(2);
        b.touch(1); // order now [1, 2]
        assert!(b.touch(3)); // evicts 2
        assert!(b.contains(1));
        assert!(!b.contains(2));
        assert!(b.contains(3));
        assert_eq!(b.stats().evictions, 1);
        assert_eq!(b.lru_order(), vec![3, 1]);
    }

    #[test]
    fn capacity_one_thrashes() {
        let mut b = LruBuffer::new(1);
        assert!(b.touch(1));
        assert!(b.touch(2));
        assert!(b.touch(1));
        assert_eq!(b.stats().faults, 3);
        assert_eq!(b.resident(), 1);
    }

    #[test]
    fn repeated_touch_of_head_is_cheap_and_correct() {
        let mut b = LruBuffer::new(3);
        b.touch(7);
        for _ in 0..100 {
            assert!(!b.touch(7));
        }
        assert_eq!(b.stats().faults, 1);
        assert_eq!(b.lru_order(), vec![7]);
    }

    #[test]
    fn sequential_scan_larger_than_capacity_always_faults() {
        // Classic LRU worst case: cyclic scan of capacity+1 pages.
        let mut b = LruBuffer::new(3);
        for round in 0..4 {
            for p in 0..4u32 {
                let faulted = b.touch(p);
                assert!(faulted, "round {round} page {p} should fault");
            }
        }
        assert_eq!(b.stats().faults, 16);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = LruBuffer::new(2);
        b.touch(1);
        b.touch(2);
        b.clear();
        assert_eq!(b.resident(), 0);
        assert_eq!(b.stats(), IoStats::default());
        assert!(b.touch(1), "post-clear touch faults again");
    }

    #[test]
    fn reset_stats_keeps_residency() {
        let mut b = LruBuffer::new(2);
        b.touch(1);
        b.reset_stats();
        assert!(!b.touch(1), "page stayed resident across stats reset");
        assert_eq!(b.stats().accesses, 1);
        assert_eq!(b.stats().faults, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IoStats { accesses: 1, faults: 1, evictions: 0 };
        a.merge(IoStats { accesses: 2, faults: 1, evictions: 1 });
        assert_eq!(a, IoStats { accesses: 3, faults: 2, evictions: 1 });
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_panics() {
        let _ = LruBuffer::new(0);
    }
}
