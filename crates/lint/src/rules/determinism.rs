//! R1 — determinism: no hash-order iteration, no wall clock, in crates
//! whose computation can reach a serialized report.
//!
//! The repo's correctness claims are byte-identity oracles over
//! serialized `BatchReport`s and gateway event streams. Two things break
//! those bytes without failing any unit test: iterating a `HashMap` /
//! `HashSet` (order is randomized per process on real std; even the
//! deterministic vendored stand-in makes no ordering promise), and
//! reading the wall clock. This rule flags both:
//!
//! - **hash-iter** — calling an order-exposing method (`iter`, `keys`,
//!   `values`, `into_iter`, `drain`, `retain`, …) on a binding whose
//!   declared type or initializer names `HashMap`/`HashSet`, or looping
//!   `for _ in &binding` over one. Keyed access (`get`, `insert`,
//!   `remove`, `contains_key`) is fine — only *order* is the hazard.
//! - **wall-clock** — `Instant::now` or any `SystemTime` mention. Report
//!   content must be a function of (map, batch, seed) alone.
//!
//! Binding discovery is flow-insensitive and file-local: type
//! ascriptions (`x: HashMap<…>`, fields, params) and initializers
//! (`= HashMap::new()`, `HashMap::with_capacity`, …). That is a
//! heuristic, not an alias analysis — a site the heuristic misreads
//! carries a `// lint: allow(hash-iter) — <why>` marker, which is the
//! point: the exception becomes greppable and justified.

use crate::rules::RawViolation;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Methods that expose hash order (or drain in hash order).
const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Run R1 over one file (the engine scopes which files).
pub fn check(f: &SourceFile) -> Vec<RawViolation> {
    let hash_bindings = collect_hash_bindings(f);
    let mut out = Vec::new();
    let n = f.code_len();
    for ci in 0..n {
        let t = f.ct(ci);
        if f.in_test(t.line) {
            continue;
        }
        // wall-clock: Instant::now / SystemTime anywhere.
        if t.is_ident("Instant")
            && ci + 3 < n
            && f.ct(ci + 1).is_punct(':')
            && f.ct(ci + 2).is_punct(':')
            && f.ct(ci + 3).is_ident("now")
        {
            out.push(RawViolation::new(
                "wall-clock",
                t.line,
                "`Instant::now` in a report-affecting crate: report bytes must be a function \
                 of (map, batch, seed) only — thread a simulated clock in from the caller",
            ));
        }
        if t.is_ident("SystemTime") {
            out.push(RawViolation::new(
                "wall-clock",
                t.line,
                "`SystemTime` in a report-affecting crate: wall time must not reach \
                 report-shaping code",
            ));
        }
        // hash-iter, method form: binding.iter() etc.
        if ci >= 2
            && t.kind == crate::lexer::TokKind::Ident
            && ORDER_METHODS.contains(&t.text.as_str())
            && f.ct(ci - 1).is_punct('.')
            && hash_bindings.contains(&f.ct(ci - 2).text)
            && ci + 1 < n
            && f.ct(ci + 1).is_punct('(')
        {
            out.push(RawViolation::new(
                "hash-iter",
                t.line,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet in a report-affecting crate: hash \
                     order can reach the serialized report — use an ordered collection, or \
                     collect-and-sort before iterating",
                    f.ct(ci - 2).text,
                    t.text
                ),
            ));
        }
        // hash-iter, loop form: `for pat in [&[mut]] binding {`.
        if t.is_ident("for") && is_loop_for(f, ci) {
            if let Some((name, line)) = for_loop_over_binding(f, ci, &hash_bindings) {
                out.push(RawViolation::new(
                    "hash-iter",
                    line,
                    format!(
                        "`for … in {name}` iterates a HashMap/HashSet in a report-affecting \
                         crate: hash order can reach the serialized report — sort first"
                    ),
                ));
            }
        }
    }
    out
}

/// Names bound (let/field/param) to a HashMap/HashSet in this file.
fn collect_hash_bindings(f: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let n = f.code_len();
    for ci in 0..n {
        let t = f.ct(ci);
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Initializer form: `name = HashMap::…` (covers `let name =`,
        // `self.field =`, struct-literal `field: HashMap::new()` is the
        // ascription form below).
        if ci >= 2 && f.ct(ci - 1).is_punct('=') {
            let prev = f.ct(ci - 2);
            if prev.kind == crate::lexer::TokKind::Ident {
                names.insert(prev.text.clone());
            }
            continue;
        }
        // Ascription form: `name : [&] [mut] [path ::]* HashMap <…>`.
        // Walk back over reference/path noise to the `:`, then take the
        // identifier before it.
        let mut j = ci;
        while j > 0 {
            let p = f.ct(j - 1);
            let path_noise = p.is_punct(':')
                || p.is_punct('&')
                || p.is_punct('<')
                || p.kind == crate::lexer::TokKind::Lifetime
                || p.is_ident("mut")
                || p.is_ident("std")
                || p.is_ident("collections")
                || p.is_ident("hash_map")
                || p.is_ident("hash_set")
                || p.is_ident("Vec"); // Vec<HashMap<…>> still iterates maps eventually
            if !path_noise {
                break;
            }
            j -= 1;
            let lone_colon = p.is_punct(':')
                && j > 0
                && !f.ct(j - 1).is_punct(':')
                && !f.ct(j + 1).is_punct(':');
            if lone_colon {
                // A single `:` (not part of a `::` path): the token
                // before it is the bound name.
                let name = f.ct(j - 1);
                if name.kind == crate::lexer::TokKind::Ident {
                    names.insert(name.text.clone());
                }
                break;
            }
        }
    }
    names
}

/// Is this `for` a loop (not `impl … for …` / HRTB `for<'a>`)?
fn is_loop_for(f: &SourceFile, ci: usize) -> bool {
    if ci + 1 < f.code_len() && f.ct(ci + 1).is_punct('<') {
        return false; // for<'a>
    }
    match ci.checked_sub(1) {
        None => true,
        Some(p) => {
            let prev = f.ct(p);
            prev.is_punct('{') || prev.is_punct('}') || prev.is_punct(';') || prev.is_punct(':')
        }
    }
}

/// If the loop's iterated expression is exactly `[&][mut] name` with
/// `name` a hash binding, return it. Anything more complex (ranges,
/// calls) is out of scope here — method calls are caught by the method
/// form.
fn for_loop_over_binding(
    f: &SourceFile,
    for_ci: usize,
    bindings: &BTreeSet<String>,
) -> Option<(String, u32)> {
    // Find the `in` at pattern depth 0, then require `[&][mut] name {`.
    let n = f.code_len();
    let mut depth = 0i32;
    let mut ci = for_ci + 1;
    while ci < n {
        let t = f.ct(ci);
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break;
        } else if t.is_punct('{') {
            return None; // no `in` before the body: not a for-loop after all
        }
        ci += 1;
    }
    let mut e = ci + 1;
    while e < n && (f.ct(e).is_punct('&') || f.ct(e).is_ident("mut")) {
        e += 1;
    }
    if e + 1 < n && f.ct(e + 1).is_punct('{') && bindings.contains(&f.ct(e).text) {
        return Some((f.ct(e).text.clone(), f.ct(e).line));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<RawViolation> {
        check(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn keyed_access_is_clean() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &mut S) { s.m.insert(1, 2); let _ = s.m.get(&1); s.m.remove(&1); }\n";
        assert!(violations(src).is_empty());
    }

    #[test]
    fn method_iteration_is_flagged_for_fields_lets_and_params() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S, q: &HashMap<u32, u32>) {\n\
                       for x in s.m.iter() {}\n\
                       let l: HashMap<u32, u32> = HashMap::new();\n\
                       let _ = l.keys();\n\
                       let _ = q.values();\n\
                   }\n";
        let v = violations(src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "hash-iter"));
    }

    #[test]
    fn initializer_bindings_are_tracked() {
        let src = "fn f() { let mut seen = HashSet::new(); seen.insert(1); seen.drain(); }\n";
        let v = violations(src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("seen.drain"));
    }

    #[test]
    fn for_loop_over_a_map_is_flagged_but_ranges_are_not() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n\
                       for kv in m {}\n\
                       for i in 0..m.len() {}\n\
                   }\n";
        let v = violations(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("for … in m"));
    }

    #[test]
    fn vec_iteration_with_a_similar_name_is_clean() {
        let src = "fn f(rows: &Vec<u32>) { for r in rows {} let _ = rows.iter(); }\n";
        assert!(violations(src).is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "struct M; impl Iterator for M { fn next(&mut self) -> Option<u8> { None } }\n";
        assert!(violations(src).is_empty());
    }

    #[test]
    fn wall_clock_is_flagged() {
        let src = "fn f() { let t = Instant::now(); }\nfn g(s: SystemTime) {}\n";
        let v = violations(src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.rule == "wall-clock"));
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(m: &HashMap<u32,u32>) { m.iter(); let _ = Instant::now(); }\n}\n";
        assert!(violations(src).is_empty());
    }

    #[test]
    fn mentions_in_strings_and_comments_are_invisible() {
        let src =
            "// HashMap::iter would be bad\nfn f() { let s = \"m.iter() Instant::now()\"; }\n";
        assert!(violations(src).is_empty());
    }
}
