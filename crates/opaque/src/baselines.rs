//! The location-privacy baselines of §II / Figure 2, implemented so the
//! paper's qualitative comparison becomes a measured one (experiment E2).
//!
//! | Technique | Figure | Claimed failure mode |
//! |-----------|--------|----------------------|
//! | direct query | 2(a) | no privacy at all |
//! | landmark \[3,4\] | 2(b) | result path irrelevant to the true query |
//! | cloaking [5–7] | 2(c) | server picks arbitrary points → likely irrelevant path |
//! | naive fake queries \[8\] | 2(d) | exact result, but redundant full queries overconsume resources |
//! | OPAQUE (this paper) | — | exact result, shared processing, tunable breach probability |
//!
//! Every technique is driven through [`run_technique`] over the same true
//! query and produces a [`TechniqueReport`] with comparable utility,
//! privacy, and cost columns.

use crate::obfuscator::{FakeSelection, Obfuscator};
use crate::query::{ClientId, ClientRequest, PathQuery, ProtectionSettings};
use crate::server::DirectionsServer;
use pathsearch::SharingPolicy;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use roadnet::{NodeId, Point, RoadNetwork, SpatialIndex};

/// A privacy technique under comparison.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Technique {
    /// Plain `Q(s,t)` — no protection (Figure 2(a)).
    Direct,
    /// Replace both endpoints by the nearest of `num_landmarks` fixed public
    /// landmarks (Figure 2(b)).
    Landmark {
        /// Number of fixed public landmarks available for snapping.
        num_landmarks: usize,
    },
    /// Snap both endpoints to a `cell_size × cell_size` cloaking region; the
    /// server searches from an arbitrary node of each region (Figure 2(c)).
    Cloaking {
        /// Side length of the square cloaking cells.
        cell_size: f64,
    },
    /// Duckham–Kulik-style obfuscation: the true query plus `num_fakes`
    /// complete fake queries, each evaluated independently (Figure 2(d)).
    NaiveFakes {
        /// Number of complete fake queries added next to the true one.
        num_fakes: usize,
    },
    /// OPAQUE's independently obfuscated path query with settings
    /// `(f_s, f_t)`, evaluated by the MSMD processor.
    Opaque {
        /// Requested source-set size `f_S`.
        f_s: u32,
        /// Requested target-set size `f_T`.
        f_t: u32,
    },
}

impl Technique {
    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Direct => "direct",
            Technique::Landmark { .. } => "landmark",
            Technique::Cloaking { .. } => "cloaking",
            Technique::NaiveFakes { .. } => "naive-fakes",
            Technique::Opaque { .. } => "opaque",
        }
    }
}

/// Measured outcome of one technique on one true query.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct TechniqueReport {
    /// Name of the measured technique ([`Technique::name`]).
    pub technique: String,
    /// Did the client end up with the exact shortest path for its true
    /// query? (The paper's service-quality criterion.)
    pub true_path_returned: bool,
    /// Relative error of the best path the client can extract:
    /// `(d_returned − d_true)/d_true` where `d_returned` is the distance of
    /// the returned path *as an answer to the true query* (∞ when the
    /// returned path does not connect the true endpoints).
    pub path_distance_error: f64,
    /// Mean Euclidean displacement between the true endpoints and the
    /// endpoints actually searched.
    pub endpoint_displacement: f64,
    /// (source, target) pairs the server evaluated.
    pub pairs_evaluated: u64,
    /// Nodes the server settled.
    pub server_settled: u64,
    /// Candidate paths shipped back.
    pub candidate_paths: u64,
    /// Probability the server pinpoints the true `(s,t)` pair, under a
    /// uniform prior over whatever ambiguity the technique leaves.
    pub breach_probability: f64,
}

/// Run `technique` for the true query `q` on `map`. All randomness is
/// drawn from `seed`, so reports are reproducible.
///
/// # Panics
/// Panics if `q`'s endpoints are disconnected on `map` — comparison
/// scenarios are always generated on the largest connected component.
pub fn run_technique(
    map: &RoadNetwork,
    index: &SpatialIndex,
    q: &PathQuery,
    technique: Technique,
    seed: u64,
) -> TechniqueReport {
    let true_dist = pathsearch::shortest_distance(map, q.source, q.destination)
        .expect("comparison query must be connected");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6261_7365);

    match technique {
        Technique::Direct => {
            let mut server = DirectionsServer::new(map, SharingPolicy::PerSource);
            let path = server.process_plain(q).expect("connected");
            TechniqueReport {
                technique: technique.name().into(),
                true_path_returned: true,
                path_distance_error: relative_error(path.distance(), true_dist),
                endpoint_displacement: 0.0,
                pairs_evaluated: server.stats().pairs_evaluated,
                server_settled: server.stats().search.settled,
                candidate_paths: server.stats().paths_returned,
                breach_probability: 1.0,
            }
        }

        Technique::Landmark { num_landmarks } => {
            assert!(num_landmarks >= 1, "need at least one landmark");
            // Fixed public landmark set, seeded independently of the query.
            let mut all: Vec<NodeId> = map.nodes().collect();
            all.shuffle(&mut StdRng::seed_from_u64(0x6c61_6e64));
            let landmarks = &all[..num_landmarks.min(all.len())];
            let nearest_landmark = |p: Point| {
                *landmarks
                    .iter()
                    .min_by(|a, b| {
                        map.point(**a).distance(p).total_cmp(&map.point(**b).distance(p))
                    })
                    .expect("non-empty landmark set")
            };
            let s2 = nearest_landmark(map.point(q.source));
            let t2 = nearest_landmark(map.point(q.destination));
            let mut server = DirectionsServer::new(map, SharingPolicy::PerSource);
            let path = server.process_plain(&PathQuery::new(s2, t2));
            let exact = s2 == q.source && t2 == q.destination;
            TechniqueReport {
                technique: technique.name().into(),
                true_path_returned: exact,
                path_distance_error: if exact {
                    0.0
                } else {
                    // The landmark path does not answer the true query at all.
                    f64::INFINITY
                },
                endpoint_displacement: (map.euclidean(q.source, s2)
                    + map.euclidean(q.destination, t2))
                    / 2.0,
                pairs_evaluated: server.stats().pairs_evaluated,
                server_settled: server.stats().search.settled,
                candidate_paths: path.iter().count() as u64,
                // The server sees landmark endpoints only; the true pair is
                // not recoverable from the query itself.
                breach_probability: 0.0,
            }
        }

        Technique::Cloaking { cell_size } => {
            assert!(cell_size > 0.0, "cloaking cell must have positive size");
            let snap = |p: Point| {
                Point::new(
                    (p.x / cell_size).floor() * cell_size + cell_size / 2.0,
                    (p.y / cell_size).floor() * cell_size + cell_size / 2.0,
                )
            };
            // The server "may arbitrarily pick a point for an imprecise
            // address" (§II): modelled as a uniformly random node within the
            // cloaked cell (falling back to the nearest node to the cell
            // centre when the cell is empty).
            let pick = |p: Point, rng: &mut StdRng| {
                let cell_center = snap(p);
                let half = cell_size / 2.0;
                let in_cell = index.within_radius(cell_center, half * std::f64::consts::SQRT_2);
                let candidates: Vec<NodeId> = in_cell
                    .into_iter()
                    .filter(|n| {
                        let np = map.point(*n);
                        (np.x - cell_center.x).abs() <= half && (np.y - cell_center.y).abs() <= half
                    })
                    .collect();
                if candidates.is_empty() {
                    (index.nearest(cell_center), 1usize)
                } else {
                    (candidates[rng.gen_range(0..candidates.len())], candidates.len())
                }
            };
            let (s2, s_region) = pick(map.point(q.source), &mut rng);
            let (t2, t_region) = pick(map.point(q.destination), &mut rng);
            let mut server = DirectionsServer::new(map, SharingPolicy::PerSource);
            let path = server.process_plain(&PathQuery::new(s2, t2));
            let exact = s2 == q.source && t2 == q.destination;
            TechniqueReport {
                technique: technique.name().into(),
                true_path_returned: exact,
                path_distance_error: if exact { 0.0 } else { f64::INFINITY },
                endpoint_displacement: (map.euclidean(q.source, s2)
                    + map.euclidean(q.destination, t2))
                    / 2.0,
                pairs_evaluated: server.stats().pairs_evaluated,
                server_settled: server.stats().search.settled,
                candidate_paths: path.iter().count() as u64,
                // The adversary knows the region; ambiguity is the number of
                // candidate nodes per side.
                breach_probability: 1.0 / (s_region as f64 * t_region as f64),
            }
        }

        Technique::NaiveFakes { num_fakes } => {
            let n = map.num_nodes() as u32;
            let mut server = DirectionsServer::new(map, SharingPolicy::PerSource);
            // True query first (order does not matter to the server).
            let true_path = server.process_plain(q).expect("connected");
            for _ in 0..num_fakes {
                // Whole fake queries with both endpoints random [8].
                loop {
                    let fq =
                        PathQuery::new(NodeId(rng.gen_range(0..n)), NodeId(rng.gen_range(0..n)));
                    if fq.source != fq.destination {
                        server.process_plain(&fq);
                        break;
                    }
                }
            }
            let err = relative_error(true_path.distance(), true_dist);
            TechniqueReport {
                technique: technique.name().into(),
                true_path_returned: true,
                path_distance_error: err,
                endpoint_displacement: 0.0,
                pairs_evaluated: server.stats().pairs_evaluated,
                server_settled: server.stats().search.settled,
                candidate_paths: server.stats().paths_returned,
                breach_probability: 1.0 / (num_fakes as f64 + 1.0),
            }
        }

        Technique::Opaque { f_s, f_t } => {
            let mut ob = Obfuscator::new(map.clone(), FakeSelection::default_ring(), seed ^ 0x6f70);
            let request = ClientRequest::new(
                ClientId(0),
                *q,
                ProtectionSettings::new(f_s, f_t).expect("validated by caller"),
            );
            let unit = ob.obfuscate_independent(&request).expect("map large enough");
            let mut server = DirectionsServer::new(map, SharingPolicy::PerSource);
            let candidates = server.process(&unit.query);
            let results = crate::filter::filter_candidates(&unit, &candidates, Some(map))
                .expect("pipeline consistent");
            let delivered = &results[0].path;
            TechniqueReport {
                technique: technique.name().into(),
                true_path_returned: true,
                path_distance_error: relative_error(delivered.distance(), true_dist),
                endpoint_displacement: 0.0,
                pairs_evaluated: server.stats().pairs_evaluated,
                server_settled: server.stats().search.settled,
                candidate_paths: server.stats().paths_returned,
                breach_probability: unit.query.breach_probability(),
            }
        }
    }
}

fn relative_error(returned: f64, truth: f64) -> f64 {
    if truth <= 0.0 { 0.0 } else { (returned - truth).abs() / truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::{GridConfig, grid_network};

    fn setup() -> (RoadNetwork, SpatialIndex, PathQuery) {
        let g = grid_network(&GridConfig { width: 20, height: 20, seed: 3, ..Default::default() })
            .unwrap();
        let idx = SpatialIndex::build(&g);
        (g, idx, PathQuery::new(NodeId(21), NodeId(378)))
    }

    #[test]
    fn direct_is_exact_and_fully_exposed() {
        let (g, idx, q) = setup();
        let r = run_technique(&g, &idx, &q, Technique::Direct, 1);
        assert!(r.true_path_returned);
        assert_eq!(r.path_distance_error, 0.0);
        assert_eq!(r.breach_probability, 1.0);
        assert_eq!(r.pairs_evaluated, 1);
    }

    #[test]
    fn landmark_protects_but_returns_irrelevant_path() {
        let (g, idx, q) = setup();
        let r = run_technique(&g, &idx, &q, Technique::Landmark { num_landmarks: 12 }, 1);
        assert!(!r.true_path_returned);
        assert!(r.path_distance_error.is_infinite());
        assert!(r.endpoint_displacement > 0.0);
        assert_eq!(r.breach_probability, 0.0);
    }

    #[test]
    fn cloaking_usually_misses_the_exact_endpoints() {
        let (g, idx, q) = setup();
        let r = run_technique(&g, &idx, &q, Technique::Cloaking { cell_size: 4.0 }, 1);
        // With ~16 nodes per cell, hitting both exact endpoints is unlikely;
        // breach probability must reflect region ambiguity.
        assert!(r.breach_probability < 0.5);
        assert!(r.pairs_evaluated == 1);
        if !r.true_path_returned {
            assert!(r.path_distance_error.is_infinite());
            assert!(r.endpoint_displacement > 0.0);
        }
    }

    #[test]
    fn naive_fakes_exact_but_expensive() {
        let (g, idx, q) = setup();
        let r = run_technique(&g, &idx, &q, Technique::NaiveFakes { num_fakes: 5 }, 1);
        assert!(r.true_path_returned);
        assert_eq!(r.path_distance_error, 0.0);
        assert_eq!(r.pairs_evaluated, 6);
        assert!((r.breach_probability - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn opaque_is_exact_with_tunable_breach() {
        let (g, idx, q) = setup();
        let r = run_technique(&g, &idx, &q, Technique::Opaque { f_s: 3, f_t: 3 }, 1);
        assert!(r.true_path_returned);
        assert_eq!(r.path_distance_error, 0.0);
        assert!((r.breach_probability - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(r.pairs_evaluated, 9);
    }

    #[test]
    fn opaque_beats_naive_fakes_on_cost_at_equal_privacy() {
        // Equal breach probability 1/9: naive needs 8 fake full queries,
        // OPAQUE needs a 3×3 obfuscated query processed with sharing.
        let (g, idx, q) = setup();
        let naive = run_technique(&g, &idx, &q, Technique::NaiveFakes { num_fakes: 8 }, 2);
        let opq = run_technique(&g, &idx, &q, Technique::Opaque { f_s: 3, f_t: 3 }, 2);
        assert!((naive.breach_probability - opq.breach_probability).abs() < 1e-12);
        assert!(
            opq.server_settled < naive.server_settled,
            "opaque {} vs naive {}",
            opq.server_settled,
            naive.server_settled
        );
    }

    #[test]
    fn technique_names() {
        assert_eq!(Technique::Direct.name(), "direct");
        assert_eq!(Technique::Landmark { num_landmarks: 1 }.name(), "landmark");
        assert_eq!(Technique::Cloaking { cell_size: 1.0 }.name(), "cloaking");
        assert_eq!(Technique::NaiveFakes { num_fakes: 1 }.name(), "naive-fakes");
        assert_eq!(Technique::Opaque { f_s: 2, f_t: 2 }.name(), "opaque");
    }
}
