//! The rule catalog. Each rule module exports a `check` pass producing
//! [`RawViolation`]s; the engine attaches file paths, applies allow
//! markers, and aggregates. See `docs/static_analysis.md` for the
//! human-facing catalog.

pub mod determinism;
pub mod docrefs;
pub mod panic_path;
pub mod unsafety;

/// A violation before the engine attaches the file path and applies
/// allow markers.
#[derive(Clone, Debug)]
pub struct RawViolation {
    /// Rule id (`hash-iter`, `wall-clock`, `safety-comment`,
    /// `panic-path`, `doc-ref`, `allow-marker`).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// What happened and what to do about it.
    pub message: String,
}

impl RawViolation {
    /// Build one.
    pub fn new(rule: &'static str, line: u32, message: impl Into<String>) -> Self {
        RawViolation { rule, line, message: message.into() }
    }
}
