//! The reusable search arena: generation-stamped label storage shared by
//! every Dijkstra-family algorithm in this crate.
//!
//! The server's hot path is MSMD evaluation — every obfuscated query
//! `Q(S,T)` grows several spanning trees over the same network (§IV,
//! Lemma 1). A naive implementation pays `O(n)` initialization *and*
//! `O(n)` allocation per tree. [`SearchArena`] removes both:
//!
//! * `dist` / `parent` / *labelled* / *settled* arrays are validated by an
//!   **epoch stamp**, so starting a new search is `O(1)` — stale labels
//!   from earlier queries are simply never current;
//! * the arrays are laid out as `trees × nodes` slabs, so one arena hosts
//!   any number of simultaneously growing trees (the shared-frontier MSMD
//!   engine interleaves them all through one heap);
//! * the binary heap and the goal/frontier scratch buffers are owned by
//!   the arena and reused, so repeated queries on the same graph touch no
//!   allocator once the high-water capacity is reached.
//!
//! [`crate::dijkstra::Searcher`] is the single-tree facade over an arena;
//! [`crate::multi::msmd_in`] runs whole MSMD queries inside a
//! caller-provided arena.

use crate::path::Path;
use roadnet::NodeId;
use std::collections::BinaryHeap;

pub(crate) const NIL: u32 = u32::MAX;

/// One prioritized frontier entry: a tentative label of `node` in `tree`.
///
/// Ordered so the globally *smallest* key pops first from a max-heap;
/// ties break on `(tree, node)` for run-to-run determinism. Crate-internal
/// like the raw heap operations that produce and consume it.
///
/// `key` and `dist` coincide for plain Dijkstra; a goal-directed sweep
/// orders the heap by `key = dist ± potential(node)` while `dist` keeps the
/// raw label the entry was pushed with. The ordering ignores `dist` on
/// purpose: the potential is a pure function of `(tree, node)`, so within
/// one slot key and dist determine each other.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FrontierEntry {
    /// Heap priority (raw distance plus the tree's potential, if any).
    pub key: f64,
    /// Raw tentative distance of the label (what `dist[]` stores).
    pub dist: f64,
    /// Index of the tree the label belongs to.
    pub tree: u32,
    /// The labelled node.
    pub node: NodeId,
}

impl PartialEq for FrontierEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.tree == other.tree && self.node == other.node
    }
}
impl Eq for FrontierEntry {}
impl PartialOrd for FrontierEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontierEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.tree.cmp(&self.tree))
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// Reusable scratch buffers for the shared-frontier MSMD engine — per-pair
/// meeting state and per-tree bookkeeping, pooled here so the engine
/// allocates nothing per query.
#[derive(Debug, Default)]
pub(crate) struct FrontierScratch {
    /// Best connecting distance found per (forward, backward) pair.
    pub mu: Vec<f64>,
    /// Meeting node realizing `mu` (`NIL` when none found yet).
    pub meet: Vec<u32>,
    /// Largest settled key per tree (a lower bound on future settles).
    pub radius: Vec<f64>,
    /// Open pairs (or unsettled targets) remaining per tree; a tree
    /// retires at zero.
    pub open: Vec<u32>,
    /// Whether a pair's shortest distance is finalized.
    pub done: Vec<bool>,
}

/// Generation-stamped multi-tree search space with a shared frontier heap.
///
/// After a search finishes, the labels of the *last* search stay readable
/// (via [`SearchArena::distance`] / [`SearchArena::path_to`]) until the
/// next [`SearchArena::begin`].
#[derive(Debug, Default)]
pub struct SearchArena {
    /// Tentative/final distances, `trees × nodes`, epoch-validated.
    dist: Vec<f64>,
    /// Parent node ids ([`NIL`] for roots), `trees × nodes`.
    parent: Vec<u32>,
    /// Label epoch stamps: a slot is labelled iff `labelled[i] == epoch`.
    labelled: Vec<u32>,
    /// Settled epoch stamps: a slot is settled iff `settled[i] == epoch`.
    settled: Vec<u32>,
    /// Current search generation. Epoch 0 means "never touched".
    epoch: u32,
    /// The shared frontier heap (lazy deletion: stale entries are skipped
    /// at pop time).
    heap: BinaryHeap<FrontierEntry>,
    /// Reusable goal-set buffer (sorted, deduplicated target lists).
    goal_scratch: Vec<NodeId>,
    /// Reusable shared-frontier bookkeeping.
    frontier_scratch: FrontierScratch,
    /// Nodes per tree of the current search.
    nodes: usize,
    /// Number of trees of the current search.
    trees: usize,
}

// One arena per worker thread is the parallel service layer's isolation
// unit: workers never share label storage, only immutable graph views.
// Guard that contract at compile time — an accidentally !Send field (an Rc
// cache, say) would silently break the worker pool.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SearchArena>();
};

impl SearchArena {
    /// An empty arena; buffers grow to the largest `trees × nodes` search
    /// they ever host and are reused from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena whose label slabs are already grown to host `trees × nodes`
    /// searches, so the first query pays no first-touch buffer growth.
    ///
    /// This is the *arena-per-worker handle*: a worker thread pinned to one
    /// arena (e.g. one shard of a parallel backend fleet) constructs it
    /// up front and then serves its whole query stream allocation-free.
    /// Larger searches still grow the arena on demand, exactly as with
    /// [`SearchArena::new`].
    pub fn preallocated(nodes: usize, trees: usize) -> Self {
        let mut arena = Self::default();
        let slots = nodes.checked_mul(trees).expect("search space fits usize");
        arena.dist.resize(slots, f64::INFINITY);
        arena.parent.resize(slots, NIL);
        arena.labelled.resize(slots, 0);
        arena.settled.resize(slots, 0);
        arena
    }

    /// Start a new search generation over `trees` trees of `nodes` nodes
    /// each. `O(1)` amortized: only grows buffers past the high-water
    /// mark, never clears them (the epoch stamp invalidates old labels).
    pub fn begin(&mut self, nodes: usize, trees: usize) {
        assert!(trees > 0, "a search grows at least one tree");
        assert!(trees <= NIL as usize, "tree count must fit the entry tag");
        let slots = nodes.checked_mul(trees).expect("search space fits usize");
        if self.dist.len() < slots {
            self.dist.resize(slots, f64::INFINITY);
            self.parent.resize(slots, NIL);
            self.labelled.resize(slots, 0);
            self.settled.resize(slots, 0);
        }
        self.nodes = nodes;
        self.trees = trees;
        self.heap.clear();
        // Epoch 0 is the "never touched" stamp; skip it on wrap-around so
        // labels from 2^32 generations ago cannot resurface as current.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.labelled.iter_mut().for_each(|s| *s = 0);
            self.settled.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Nodes per tree of the current search generation.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Trees of the current search generation.
    pub fn num_trees(&self) -> usize {
        self.trees
    }

    /// Label slots currently allocated (the high-water mark) — exposed so
    /// tests can assert reuse instead of regrowth.
    pub fn capacity(&self) -> usize {
        self.dist.len()
    }

    #[inline]
    fn slot(&self, tree: usize, node: NodeId) -> usize {
        debug_assert!(tree < self.trees, "tree {tree} out of range");
        debug_assert!(node.index() < self.nodes, "node {node} out of range");
        tree * self.nodes + node.index()
    }

    /// Write a label: tentative distance `dist` reached via `parent`
    /// (`None` for roots).
    ///
    /// The raw label/heap operations (`label`, `settle`, `relax`, `push`,
    /// `pop`, `is_fresh`) are crate-internal: they index by
    /// `tree * nodes + node` with debug-only bounds checks, so exposing
    /// them would let out-of-range trees silently alias other trees'
    /// slots in release builds. External callers drive searches through
    /// [`crate::dijkstra::run_in`] / [`crate::multi::msmd_in`] and read
    /// results via the range-checked [`SearchArena::distance`] /
    /// [`SearchArena::path_to`].
    #[inline]
    pub(crate) fn label(&mut self, tree: usize, node: NodeId, dist: f64, parent: Option<NodeId>) {
        let i = self.slot(tree, node);
        self.dist[i] = dist;
        self.parent[i] = parent.map_or(NIL, |p| p.0);
        self.labelled[i] = self.epoch;
    }

    /// Whether `node` carries a current-generation label in `tree`.
    #[inline]
    pub(crate) fn is_labelled(&self, tree: usize, node: NodeId) -> bool {
        self.labelled[self.slot(tree, node)] == self.epoch
    }

    /// Current-generation distance label of `node` in `tree`, if any.
    /// Final only for nodes the search settled before terminating;
    /// beyond the goal it is a tentative upper bound. Out-of-range reads
    /// return `None` (they are not part of the current search).
    #[inline]
    pub fn distance(&self, tree: usize, node: NodeId) -> Option<f64> {
        if tree >= self.trees || node.index() >= self.nodes {
            return None;
        }
        let i = self.slot(tree, node);
        (self.labelled[i] == self.epoch).then(|| self.dist[i])
    }

    /// Unchecked distance read: call only when the label is known current.
    #[inline]
    pub(crate) fn dist_raw(&self, tree: usize, node: NodeId) -> f64 {
        self.dist[self.slot(tree, node)]
    }

    /// Unchecked parent read ([`NIL`] for roots): call only when the label
    /// is known current. Used by the sweep recorder to snapshot final
    /// labels at settle time.
    #[inline]
    pub(crate) fn parent_raw(&self, tree: usize, node: NodeId) -> u32 {
        self.parent[self.slot(tree, node)]
    }

    /// Mark `node` settled in `tree`. Returns `false` when it already was
    /// (a stale lazy-deletion pop).
    #[inline]
    pub(crate) fn settle(&mut self, tree: usize, node: NodeId) -> bool {
        let i = self.slot(tree, node);
        if self.settled[i] == self.epoch {
            return false;
        }
        self.settled[i] = self.epoch;
        true
    }

    /// Relax the arc `from → to` in `tree` with candidate distance `cand`:
    /// labels `to` and pushes a frontier entry when `cand` improves on the
    /// current label (or none exists). Returns whether it did.
    #[inline]
    pub(crate) fn relax(&mut self, tree: usize, from: NodeId, to: NodeId, cand: f64) -> bool {
        self.relax_keyed(tree, from, to, cand, cand)
    }

    /// [`SearchArena::relax`] with an explicit heap priority: the label
    /// comparison and storage use the *raw* distance `cand` (improvement
    /// stays a statement about real path lengths), while the frontier entry
    /// is prioritized by `key` — a goal-directed sweep passes
    /// `key = cand ± potential(to)`. Plain relaxation is the `key == cand`
    /// special case.
    #[inline]
    pub(crate) fn relax_keyed(
        &mut self,
        tree: usize,
        from: NodeId,
        to: NodeId,
        cand: f64,
        key: f64,
    ) -> bool {
        let i = self.slot(tree, to);
        if self.labelled[i] != self.epoch || cand < self.dist[i] {
            self.dist[i] = cand;
            self.parent[i] = from.0;
            self.labelled[i] = self.epoch;
            self.heap.push(FrontierEntry { key, dist: cand, tree: tree as u32, node: to });
            true
        } else {
            false
        }
    }

    /// Push a frontier entry (used to seed roots; relaxation goes through
    /// [`SearchArena::relax`]). `key` is the heap priority, `dist` the raw
    /// root distance (they coincide except under a goal-directed potential).
    #[inline]
    pub(crate) fn push(&mut self, key: f64, dist: f64, tree: usize, node: NodeId) {
        self.heap.push(FrontierEntry { key, dist, tree: tree as u32, node });
    }

    /// Pop the globally smallest frontier entry across all trees.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<FrontierEntry> {
        self.heap.pop()
    }

    /// Whether a popped entry is *fresh*: not yet settled and still
    /// carrying the best-known distance for its slot. Stale entries are
    /// the lazy-deletion residue and must be skipped. Freshness compares
    /// the entry's *raw* distance against the slot label — the heap key may
    /// carry a potential offset and must not enter this test.
    #[inline]
    pub(crate) fn is_fresh(&self, e: &FrontierEntry) -> bool {
        let i = self.slot(e.tree as usize, e.node);
        self.settled[i] != self.epoch && e.dist <= self.dist[i]
    }

    /// Reconstruct the path from `tree`'s root to `t` by walking parents.
    /// `None` when `t` carries no current-generation label.
    pub fn path_to(&self, tree: usize, t: NodeId) -> Option<Path> {
        if tree >= self.trees || t.index() >= self.nodes || !self.is_labelled(tree, t) {
            return None;
        }
        let mut nodes = vec![t];
        let mut cur = t;
        loop {
            let p = self.parent[self.slot(tree, cur)];
            if p == NIL {
                break;
            }
            cur = NodeId(p);
            nodes.push(cur);
            debug_assert!(nodes.len() <= self.nodes, "parent cycle");
        }
        nodes.reverse();
        Some(Path::new(nodes, self.dist[self.slot(tree, t)]))
    }

    /// Walk `tree`'s parent chain from `t` to the root, appending every
    /// node *after* `t` itself to `out` (root last). Used by the
    /// shared-frontier engine to stitch bidirectional meetings.
    pub(crate) fn walk_parents(&self, tree: usize, t: NodeId, out: &mut Vec<NodeId>) {
        let mut cur = t;
        loop {
            let p = self.parent[self.slot(tree, cur)];
            if p == NIL {
                break;
            }
            cur = NodeId(p);
            out.push(cur);
            debug_assert!(out.len() <= self.nodes + 1, "parent cycle");
        }
    }

    /// Take the reusable goal buffer (restore it with
    /// [`SearchArena::put_goal_scratch`] so its capacity is kept).
    pub(crate) fn take_goal_scratch(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.goal_scratch)
    }

    /// Return the goal buffer taken by [`SearchArena::take_goal_scratch`].
    pub(crate) fn put_goal_scratch(&mut self, mut buf: Vec<NodeId>) {
        buf.clear();
        self.goal_scratch = buf;
    }

    /// Take the shared-frontier scratch (restore with
    /// [`SearchArena::put_frontier_scratch`]).
    pub(crate) fn take_frontier_scratch(&mut self) -> FrontierScratch {
        std::mem::take(&mut self.frontier_scratch)
    }

    /// Return the scratch taken by
    /// [`SearchArena::take_frontier_scratch`].
    pub(crate) fn put_frontier_scratch(&mut self, s: FrontierScratch) {
        self.frontier_scratch = s;
    }

    /// Test hook: jump the generation counter to exercise epoch
    /// wrap-around without 2^32 searches.
    #[cfg(test)]
    pub(crate) fn set_epoch_for_test(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{Goal, run_in};
    use roadnet::generators::{GridConfig, grid_network};
    use roadnet::{GraphBuilder, Point};

    fn line(n: u32) -> roadnet::RoadNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        for i in 0..n - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn begin_is_cheap_and_capacity_is_reused() {
        let g = grid_network(&GridConfig { width: 10, height: 10, seed: 1, ..Default::default() })
            .unwrap();
        let mut a = SearchArena::new();
        run_in(&mut a, &g, NodeId(0), &Goal::AllNodes);
        let cap = a.capacity();
        assert!(cap >= 100);
        for _ in 0..50 {
            run_in(&mut a, &g, NodeId(37), &Goal::Single(NodeId(99)));
        }
        assert_eq!(a.capacity(), cap, "repeated same-graph queries must not regrow buffers");
    }

    #[test]
    fn no_state_leaks_between_generations() {
        // Query a big graph, then a small one: labels of the big run must
        // be invisible to the small run, and vice versa on re-query.
        let big =
            grid_network(&GridConfig { width: 12, height: 12, seed: 3, ..Default::default() })
                .unwrap();
        let small = line(4);
        let mut a = SearchArena::new();
        run_in(&mut a, &big, NodeId(0), &Goal::AllNodes);
        assert!(a.distance(0, NodeId(143)).is_some());

        run_in(&mut a, &small, NodeId(3), &Goal::AllNodes);
        assert_eq!(a.distance(0, NodeId(0)), Some(3.0));
        assert_eq!(a.distance(0, NodeId(3)), Some(0.0));
        // Nodes beyond the small graph are out of this generation even
        // though the big run labelled those slots.
        assert_eq!(a.num_nodes(), 4);

        // And back: the small run's labels must not shadow the big run's.
        run_in(&mut a, &big, NodeId(143), &Goal::Single(NodeId(0)));
        let p = a.path_to(0, NodeId(0)).unwrap();
        assert_eq!(p.source(), NodeId(143));
        assert_eq!(p.destination(), NodeId(0));
        assert!(p.verify(&big, 1e-9));
    }

    #[test]
    fn epoch_wraparound_clears_all_stamps() {
        let g = line(5);
        let mut a = SearchArena::new();
        run_in(&mut a, &g, NodeId(0), &Goal::AllNodes);
        assert_eq!(a.distance(0, NodeId(4)), Some(4.0));

        // Force the counter to the wrap boundary: the next begin() lands
        // on epoch 0, which must be skipped and every stamp wiped —
        // otherwise slots stamped `0` (never touched) would read as
        // labelled.
        a.set_epoch_for_test(u32::MAX);
        run_in(&mut a, &g, NodeId(4), &Goal::AllNodes);
        assert_eq!(a.distance(0, NodeId(0)), Some(4.0));
        assert_eq!(a.distance(0, NodeId(4)), Some(0.0));
        let p = a.path_to(0, NodeId(0)).unwrap();
        assert!(p.verify(&g, 1e-9));
        assert_eq!(p.source(), NodeId(4));
    }

    #[test]
    fn preallocated_arena_starts_at_capacity_and_never_regrows() {
        let g = grid_network(&GridConfig { width: 10, height: 10, seed: 1, ..Default::default() })
            .unwrap();
        let mut a = SearchArena::preallocated(100, 2);
        let cap = a.capacity();
        assert_eq!(cap, 200, "slabs sized up front");
        run_in(&mut a, &g, NodeId(0), &Goal::AllNodes);
        assert!(a.distance(0, NodeId(99)).is_some());
        assert_eq!(a.capacity(), cap, "first query must not grow a preallocated arena");
        // And it behaves exactly like a grown arena on reuse.
        for _ in 0..10 {
            run_in(&mut a, &g, NodeId(37), &Goal::Single(NodeId(99)));
        }
        assert_eq!(a.capacity(), cap);
    }

    #[test]
    fn multi_tree_slots_are_independent() {
        let g = line(6);
        let mut a = SearchArena::new();
        a.begin(6, 2);
        a.label(0, NodeId(0), 0.0, None);
        a.label(1, NodeId(5), 0.0, None);
        assert!(a.is_labelled(0, NodeId(0)));
        assert!(!a.is_labelled(1, NodeId(0)));
        assert!(a.is_labelled(1, NodeId(5)));
        assert!(!a.is_labelled(0, NodeId(5)));
        assert!(a.settle(0, NodeId(0)));
        assert!(!a.settle(0, NodeId(0)), "second settle is stale");
        assert!(a.settle(1, NodeId(0)), "tree 1 settles independently");
        let _ = g;
    }

    #[test]
    fn frontier_orders_across_trees_deterministically() {
        let mut a = SearchArena::new();
        a.begin(4, 3);
        a.push(2.0, 2.0, 1, NodeId(0));
        a.push(1.0, 1.0, 2, NodeId(3));
        a.push(1.0, 1.0, 0, NodeId(3));
        a.push(1.0, 1.0, 0, NodeId(1));
        let order: Vec<(u32, u32)> =
            std::iter::from_fn(|| a.pop()).map(|e| (e.tree, e.node.0)).collect();
        assert_eq!(order, vec![(0, 1), (0, 3), (2, 3), (1, 0)]);
    }
}
