//! E17 — the wire under load: a closed-loop simulated-client fleet
//! drives 10⁵ (quick) to 10⁶ (full) requests through the framed TCP
//! front door (`opaque-net`) over loopback and measures end-to-end
//! latency tails.
//!
//! Three arrival mixes shape the request population — Poisson (the
//! baseline the paper's batching analysis assumes), bursty (two-state
//! MMPP, the clumped traffic that stresses admission), and diurnal
//! (sinusoidal day/night modulation). The fleet is *closed-loop*: a
//! bounded in-flight window paces submission, so the experiment measures
//! sustainable capacity rather than open-loop queue collapse, and the
//! mixes govern the composition and ordering of the load.
//!
//! Invariants asserted here (the wire's conservation law): every request
//! the fleet sends receives exactly one terminal reply, every reply pairs
//! with a latency sample, and the server drops nothing on loopback.
//! Percentiles come from [`workload::LatencyHistogram`]s — one per mix,
//! merged into the population histogram for the `net_p50_ms` /
//! `net_p99_ms` / `net_p999_ms` metrics the perf trajectory tracks.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{AdmissionPolicy, BatchPolicy, Priority, RequestMsg, ServiceBuilder};
use opaque_net::{FleetConfig, NetServer, ServerConfig, run_fleet};
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};
use workload::{
    ArrivalConfig, ArrivalProcess, LatencyHistogram, ProtectionDistribution, QueryDistribution,
    WorkloadConfig, arrival_stream,
};

/// Latency resolution: 0.5 ms buckets out to 2 s; slower outliers land
/// in the overflow bucket, which reports the observed maximum.
const LAT_BUCKET_MS: f64 = 0.5;
const LAT_BUCKETS: usize = 4_000;

/// Batch aggressively: the wire should be the bottleneck, not the
/// obfuscation window.
const MAX_BATCH: usize = 256;
const MAX_DELAY: f64 = 0.05;
/// Deep queue + bounded fleet in-flight: admission never refuses, so
/// every latency sample is a served request.
const QUEUE_DEPTH: usize = 65_536;
const MAX_IN_FLIGHT: usize = 2_048;
const CONNECTIONS: usize = 8;

/// The three mixes, with parameters scaled to the stream horizon.
fn mixes() -> [(&'static str, ArrivalProcess); 3] {
    [
        ("poisson", ArrivalProcess::Poisson),
        (
            "bursty",
            ArrivalProcess::Bursty { multiplier: 5.0, mean_burst_secs: 2.0, mean_quiet_secs: 6.0 },
        ),
        ("diurnal", ArrivalProcess::Diurnal { period_secs: 20.0, amplitude: 0.8 }),
    ]
}

/// Run E17 at the scale-implied fleet size.
pub fn run(scale: &Scale) -> ExperimentTable {
    // 10⁵ simulated clients at quick (the CI acceptance floor), 10⁶ at
    // the full scale EXPERIMENTS.md records.
    let clients = if scale.trials >= Scale::full().trials { 1_000_000 } else { 100_000 };
    run_with(clients, scale)
}

/// Run E17 with an explicit fleet size (tests use a small one — the
/// debug-build test binary must stay fast).
pub fn run_with(clients: usize, scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E17",
        "closed-loop network load: latency tails over loopback",
        "the wire front door under 1e5-1e6 simulated clients (no paper counterpart)",
        &["mix", "clients", "delivered", "unreachable", "p50 ms", "p99 ms", "p999 ms"],
    );
    let (g, idx) = network_with_index(roadnet::generators::NetworkClass::Grid, scale);
    let per_mix = clients.div_ceil(3);

    // Generate the three request populations before starting the clock:
    // each mix is an arrival-process stream truncated to exactly per_mix
    // requests, client ids remapped to be globally unique.
    let mut populations: Vec<(&'static str, Vec<(RequestMsg, Priority)>)> = Vec::new();
    for (mix_index, (name, process)) in mixes().into_iter().enumerate() {
        // Rate × horizon ≈ 1.15 × per_mix arrivals: enough margin that a
        // seeded stream never undershoots the truncation target.
        let rate = 200.0;
        let horizon = per_mix as f64 / rate * 1.15 + 2.0;
        let stream = arrival_stream(
            &g,
            &idx,
            &WorkloadConfig {
                num_requests: 0, // governed by the horizon
                queries: QueryDistribution::Uniform,
                protection: ProtectionDistribution::Fixed { f_s: 2, f_t: 2 },
                seed: 0xE17 + mix_index as u64,
            },
            &ArrivalConfig { rate_per_sec: rate, horizon_secs: horizon },
            process,
        );
        assert!(stream.len() >= per_mix, "{name} stream undershot: {} < {per_mix}", stream.len());
        let offset = (mix_index * per_mix) as u32;
        let requests: Vec<(RequestMsg, Priority)> = stream[..per_mix]
            .iter()
            .enumerate()
            .map(|(i, timed)| {
                let msg = RequestMsg {
                    client: opaque::ClientId(offset + i as u32),
                    query: timed.request.query,
                    protection: timed.request.protection,
                };
                (msg, Priority::Interactive)
            })
            .collect();
        populations.push((name, requests));
    }

    let service = ServiceBuilder::new()
        .map(g)
        .seed(0xE17)
        .batch_policy(BatchPolicy { max_batch: MAX_BATCH, max_delay: MAX_DELAY })
        .admission_policy(AdmissionPolicy { queue_depth: QUEUE_DEPTH, deadline: None })
        .build()
        .expect("valid service configuration");
    let mut server =
        NetServer::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let result = server.run_until(&flag);
        (server, result)
    });

    let mut merged = LatencyHistogram::new(LAT_BUCKET_MS, LAT_BUCKETS);
    let mut total_sent = 0usize;
    for (name, requests) in &populations {
        let outcome = run_fleet(
            addr,
            requests,
            FleetConfig { connections: CONNECTIONS, max_in_flight: MAX_IN_FLIGHT },
        )
        .expect("fleet completes");

        // Conservation: one terminal wire reply per request, one latency
        // sample per reply, nothing refused on this feasible workload.
        assert_eq!(outcome.sent, requests.len(), "{name}: fleet sent a partial population");
        assert_eq!(
            outcome.terminal_replies, outcome.sent,
            "{name}: conservation violated — {} sent, {} answered",
            outcome.sent, outcome.terminal_replies
        );
        assert_eq!(outcome.latencies_secs.len(), outcome.sent, "{name}: unpaired latencies");
        assert_eq!(outcome.door_rejections, 0, "{name}: the deep queue must not refuse");
        assert_eq!(outcome.rejected, 0, "{name}: nothing should be shed without a deadline");

        let mut hist = LatencyHistogram::new(LAT_BUCKET_MS, LAT_BUCKETS);
        for secs in &outcome.latencies_secs {
            hist.record(secs * 1_000.0);
        }
        t.row(vec![
            (*name).to_string(),
            outcome.sent.to_string(),
            outcome.delivered.to_string(),
            outcome.unreachable.to_string(),
            f3(hist.p50()),
            f3(hist.p99()),
            f3(hist.p999()),
        ]);
        total_sent += outcome.sent;
        merged.merge(&hist);
    }

    stop.store(true, Ordering::Release);
    let (server, run_result) = handle.join().expect("server thread joins");
    run_result.expect("reactor ran clean");
    let stats = server.stats();
    assert_eq!(stats.dropped_replies, 0, "loopback must not drop replies: {stats:?}");
    assert_eq!(stats.batch_failures, 0, "no batch may fail: {stats:?}");
    assert_eq!(stats.frames_in as usize, total_sent, "every sent frame must arrive");

    t.note(format!(
        "{total_sent} requests over {} connections/mix, in-flight ≤ {MAX_IN_FLIGHT}; \
         {} batches, {} accepted + {} deferred; merged p99 {:.1} ms",
        CONNECTIONS,
        stats.batches_flushed,
        stats.submitted,
        stats.deferred,
        merged.p99()
    ));
    t.metric("net_p50_ms", merged.p50());
    t.metric("net_p99_ms", merged.p99());
    t.metric("net_p999_ms", merged.p999());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The conservation and percentile assertions at a debug-build
    /// friendly fleet size; CI's net-smoke job runs the 10⁵ quick scale
    /// in release.
    #[test]
    fn e17_conserves_replies_at_test_scale() {
        let t = run_with(3_000, &Scale::quick());
        assert_eq!(t.rows.len(), 3, "one row per arrival mix");
        for row in &t.rows {
            assert_eq!(row[1], "1000", "fleet split unevenly: {row:?}");
        }
        let p50 = t.metric_value("net_p50_ms").unwrap();
        let p99 = t.metric_value("net_p99_ms").unwrap();
        let p999 = t.metric_value("net_p999_ms").unwrap();
        assert!(p50 > 0.0, "loopback latency cannot be zero");
        assert!(p50 <= p99 && p99 <= p999, "percentiles out of order: {p50} {p99} {p999}");
    }
}
