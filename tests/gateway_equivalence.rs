//! The gateway's headline guarantee, as a property: for random maps,
//! batches (with duplicate client ids and cancellations), seeds, batch
//! policies, and service configurations, the event stream emitted by
//! `submit`/`cancel`/`tick`/`flush` describes **exactly the same bytes**
//! as the legacy `process_batch` view of the same windows:
//!
//! * the full serialized event stream is byte-identical across
//!   `ExecutionPolicy::{Sequential, WorkerPool}` ×
//!   `CachePolicy::{Off, Lru}` — the gateway inherits the repository's
//!   cross-policy determinism oracle;
//! * replaying each `BatchFlushed` window's requests (reconstructed from
//!   the per-request events) through a fresh service's `process_batch`
//!   reproduces the `BatchReport` byte-for-byte, the same delivered
//!   paths (the hop-4 `ResultMsg` payloads), and matching outcomes;
//! * every ticketed submission resolves to exactly one terminal event,
//!   and cancelled tickets appear only as `Cancelled` — never in a
//!   batch, a report, or a delivery.

use opaque::{
    CachePolicy, ClientId, ClientOutcome, ClientRequest, ExecutionPolicy, ObfuscationMode,
    PathQuery, Priority, ProtectionSettings, ServiceBuilder, ServiceEvent, SubmitOutcome, Ticket,
};
use pathsearch::SharingPolicy;
use proptest::prelude::*;
use roadnet::{GraphBuilder, NodeId, Point, RoadNetwork};
use std::collections::{HashMap, HashSet};

/// Random connected road map: a random spanning tree plus extra random
/// edges (parallel roads allowed), positive weights.
fn arb_map(max_nodes: usize) -> impl Strategy<Value = RoadNetwork> {
    (4..max_nodes)
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n);
            let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
            let extra = proptest::collection::vec((0..n as u32, 0..n as u32, 1.0f64..3.0), 0..n);
            (coords, parents, extra)
        })
        .prop_map(|(coords, parents, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite coords");
            }
            let n = coords.len();
            let euclid = |a: usize, c: usize| {
                Point::new(coords[a].0, coords[a].1).distance(Point::new(coords[c].0, coords[c].1))
            };
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = (*p as usize) % child;
                let w = euclid(parent, child).max(f64::EPSILON) * 1.1;
                b.add_edge(NodeId::from_index(parent), NodeId::from_index(child), w)
                    .expect("valid tree edge");
            }
            for (a, c, factor) in extra {
                let (a, c) = (a as usize % n, c as usize % n);
                if a != c {
                    let w = euclid(a, c).max(f64::EPSILON) * factor;
                    b.add_edge(NodeId::from_index(a), NodeId::from_index(c), w)
                        .expect("valid extra edge");
                }
            }
            b.build().expect("non-empty graph")
        })
}

/// One scripted submission: client pick (small range → duplicates are
/// common), endpoints, protection sizes, lane flag (odd = bulk), and a
/// cancel flag (odd = the caller cancels right after submitting).
type RawSubmission = (u32, u32, u32, u32, u32, u32, u32);

fn arb_stream(max_requests: usize) -> impl Strategy<Value = Vec<RawSubmission>> {
    // Nested tuples: the vendored proptest implements Strategy for
    // tuples of at most five elements.
    proptest::collection::vec(
        (
            (0u32..6, proptest::num::u32::ANY, proptest::num::u32::ANY),
            (1u32..5, 1u32..5, 0u32..2, 0u32..2),
        )
            .prop_map(|((client, s, t), (f_s, f_t, bulk, cancel))| {
                (client, s, t, f_s, f_t, bulk, cancel)
            }),
        1..max_requests,
    )
}

fn request_on(map: &RoadNetwork, raw: &RawSubmission) -> (ClientRequest, Priority, bool) {
    let n = map.num_nodes() as u32;
    let &(client, s, t, f_s, f_t, bulk, cancel) = raw;
    (
        ClientRequest::new(
            ClientId(client),
            PathQuery::new(NodeId(s % n), NodeId(t % n)),
            ProtectionSettings::new(f_s, f_t).expect("nonzero by construction"),
        ),
        if bulk == 1 { Priority::Bulk } else { Priority::Interactive },
        cancel == 1,
    )
}

struct GatewayRun {
    /// The full event stream, serialized (the cross-config oracle).
    stream_json: String,
    events: Vec<ServiceEvent>,
    outcomes: Vec<SubmitOutcome>,
    /// ticket → the request it was issued for.
    requests: HashMap<Ticket, ClientRequest>,
    cancelled: HashSet<Ticket>,
}

/// Drive one full gateway session: submit the scripted stream (ticking
/// after every submission so size triggers fire mid-stream), cancel the
/// marked tickets immediately, then flush windows until the queue is
/// empty.
fn drive_gateway(
    map: &RoadNetwork,
    raw_stream: &[RawSubmission],
    seed: u64,
    max_batch: usize,
    shards: usize,
    execution: ExecutionPolicy,
    cache: CachePolicy,
) -> GatewayRun {
    let mut svc = ServiceBuilder::new()
        .map(map.clone())
        .seed(seed)
        .shards(shards)
        .obfuscation_mode(ObfuscationMode::Independent)
        .sharing_policy(SharingPolicy::PerSource)
        .execution_policy(execution)
        .cache_policy(cache)
        .verify_results(true)
        .batch_policy(opaque::BatchPolicy { max_batch, max_delay: 1e6 })
        .build()
        .expect("valid configuration");

    let mut run = GatewayRun {
        stream_json: String::new(),
        events: Vec::new(),
        outcomes: Vec::new(),
        requests: HashMap::new(),
        cancelled: HashSet::new(),
    };
    for (i, raw) in raw_stream.iter().enumerate() {
        let now = i as f64 * 0.25;
        let (request, priority, cancel) = request_on(map, raw);
        let outcome = svc.submit_with_priority(request, priority, now);
        if let Some(ticket) = outcome.ticket() {
            run.requests.insert(ticket, request);
            if cancel {
                assert!(svc.cancel(ticket), "queued tickets are cancellable");
                run.cancelled.insert(ticket);
            }
        }
        run.outcomes.push(outcome);
        run.events.extend(svc.tick(now).expect("pipeline succeeds"));
    }
    let mut shutdown_clock = raw_stream.len() as f64 * 0.25;
    while svc.pending() > 0 {
        let events = svc.flush(shutdown_clock).expect("pipeline succeeds");
        assert!(!events.is_empty(), "a non-empty queue must flush something");
        run.events.extend(events);
        shutdown_clock += 0.25;
    }
    run.stream_json = serde_json::to_string(&run.events).expect("events serialize");
    run
}

/// The replay oracle: reconstruct each flushed window's request list
/// from the per-request events and run it through a fresh service's
/// legacy `process_batch` path; every byte must match.
fn assert_replay_matches(run: &GatewayRun, map: &RoadNetwork, seed: u64, ctx: &str) {
    let mut replay = ServiceBuilder::new()
        .map(map.clone())
        .seed(seed)
        .obfuscation_mode(ObfuscationMode::Independent)
        .sharing_policy(SharingPolicy::PerSource)
        .verify_results(true)
        .build()
        .expect("valid configuration");

    let mut window: Vec<&ServiceEvent> = Vec::new();
    for event in &run.events {
        match event {
            ServiceEvent::Cancelled { ticket, .. } => {
                assert!(run.cancelled.contains(ticket), "{ctx}: spurious cancellation");
            }
            ServiceEvent::BatchFlushed(report) => {
                let requests: Vec<ClientRequest> = window
                    .iter()
                    .map(|e| {
                        let ticket = e.ticket().expect("per-request event");
                        run.requests[&ticket]
                    })
                    .collect();
                let response = replay.process_batch(&requests).expect("replay succeeds");
                assert_eq!(
                    serde_json::to_string(report).unwrap(),
                    serde_json::to_string(&response.report).unwrap(),
                    "{ctx}: BatchFlushed report not byte-identical to the replayed batch"
                );
                let mut replayed_paths: HashMap<ClientId, _> = response
                    .results
                    .iter()
                    .map(|r| (r.client, serde_json::to_string(&r.path).unwrap()))
                    .collect();
                for (event, (client, outcome)) in window.iter().zip(&response.outcomes) {
                    match (event, outcome) {
                        (
                            ServiceEvent::ResponseReady { client: c, result, .. },
                            ClientOutcome::Delivered,
                        ) => {
                            assert_eq!(c, client, "{ctx}: delivery order diverged");
                            let direct = replayed_paths.remove(c).expect("one delivery per client");
                            assert_eq!(
                                serde_json::to_string(&result.path).unwrap(),
                                direct,
                                "{ctx}: hop-4 payload diverged for {c:?}"
                            );
                        }
                        (
                            ServiceEvent::Unreachable { client: c, .. },
                            ClientOutcome::Unreachable,
                        ) => {
                            assert_eq!(c, client, "{ctx}");
                        }
                        (
                            ServiceEvent::Rejected { client: c, reason, .. },
                            ClientOutcome::Rejected { reason: direct },
                        ) => {
                            assert_eq!(c, client, "{ctx}");
                            assert_eq!(
                                reason,
                                &opaque::RejectReason::Infeasible { reason: direct.clone() },
                                "{ctx}"
                            );
                        }
                        (event, outcome) => {
                            panic!("{ctx}: event/outcome mismatch: {event:?} vs {outcome:?}")
                        }
                    }
                }
                assert!(replayed_paths.is_empty(), "{ctx}: replay delivered extra paths");
                window.clear();
            }
            per_request => window.push(per_request),
        }
    }
    assert!(window.is_empty(), "{ctx}: trailing per-request events without a BatchFlushed");
}

/// Every ticketed submission resolves to exactly one terminal event, and
/// cancelled tickets never appear as anything but `Cancelled`.
fn assert_conservation(run: &GatewayRun, ctx: &str) {
    let mut terminal: HashMap<Ticket, &ServiceEvent> = HashMap::new();
    for event in &run.events {
        if let Some(ticket) = event.ticket() {
            assert!(
                terminal.insert(ticket, event).is_none(),
                "{ctx}: ticket {ticket:?} resolved twice"
            );
        }
    }
    for outcome in &run.outcomes {
        if let Some(ticket) = outcome.ticket() {
            let event = terminal
                .get(&ticket)
                .unwrap_or_else(|| panic!("{ctx}: ticket {ticket:?} never resolved"));
            if run.cancelled.contains(&ticket) {
                assert!(
                    matches!(event, ServiceEvent::Cancelled { .. }),
                    "{ctx}: cancelled ticket {ticket:?} leaked into {event:?}"
                );
            } else {
                assert!(
                    !matches!(event, ServiceEvent::Cancelled { .. }),
                    "{ctx}: uncancelled ticket {ticket:?} reported cancelled"
                );
            }
        }
    }
    assert_eq!(
        terminal.len(),
        run.outcomes.iter().filter(|o| o.ticket().is_some()).count(),
        "{ctx}: stray events for unknown tickets"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn event_stream_is_byte_identical_across_configs_and_replays_to_the_report(
        map in arb_map(32),
        raw_stream in arb_stream(10),
        seed in proptest::num::u64::ANY,
        max_batch in 1usize..5,
    ) {
        // The four corners of the determinism matrix the repository
        // already pins batch-wise; the gateway must inherit all of them.
        let threads = 2usize;
        let configs = [
            (1, ExecutionPolicy::Sequential, CachePolicy::Off),
            (1, ExecutionPolicy::Sequential, CachePolicy::Lru { trees: 8 }),
            (threads, ExecutionPolicy::WorkerPool { threads }, CachePolicy::Off),
            (threads, ExecutionPolicy::WorkerPool { threads }, CachePolicy::Lru { trees: 8 }),
        ];
        let runs: Vec<GatewayRun> = configs
            .iter()
            .map(|&(shards, execution, cache)| {
                drive_gateway(&map, &raw_stream, seed, max_batch, shards, execution, cache)
            })
            .collect();

        let ctx = format!(
            "n={} stream={} seed={seed} max_batch={max_batch}",
            map.num_nodes(),
            raw_stream.len()
        );
        // Submit outcomes are execution/cache-invariant…
        for run in &runs[1..] {
            prop_assert_eq!(&runs[0].outcomes, &run.outcomes, "{}: submit outcomes diverged", ctx);
        }
        // …and so is the entire serialized event stream, byte for byte.
        for (i, run) in runs.iter().enumerate().skip(1) {
            prop_assert_eq!(
                &runs[0].stream_json,
                &run.stream_json,
                "{}: event stream diverged for config {} ({:?})",
                ctx, i, configs[i]
            );
        }
        // The stream replays to byte-identical reports and deliveries
        // through the legacy batch path, and conserves every ticket.
        assert_replay_matches(&runs[0], &map, seed, &ctx);
        for run in &runs {
            assert_conservation(run, &ctx);
        }
    }
}

/// Deterministic pin: the property above is not vacuous — a concrete
/// session exercises deferral, cancellation, and multi-window flushing,
/// and the per-window reports differ (so byte-equality is meaningful).
#[test]
fn scripted_session_covers_defer_cancel_and_multiple_windows() {
    use roadnet::generators::{GridConfig, grid_network};
    let map =
        grid_network(&GridConfig { width: 10, height: 10, seed: 4, ..Default::default() }).unwrap();
    // Two submissions per client id 0/1 (defers), one cancelled, spread
    // over several size-2 windows.
    let raw: Vec<RawSubmission> = vec![
        (0, 0, 99, 2, 2, 0, 0),
        (0, 5, 90, 2, 2, 1, 0),  // deferred behind the first
        (1, 10, 80, 2, 2, 0, 1), // cancelled immediately
        (1, 15, 70, 2, 2, 0, 0),
        (2, 20, 60, 2, 2, 1, 0),
    ];
    let run = drive_gateway(&map, &raw, 7, 2, 1, ExecutionPolicy::Sequential, CachePolicy::Off);
    assert_conservation(&run, "scripted");
    assert_replay_matches(&run, &map, 7, "scripted");
    let kinds: Vec<&str> = run
        .events
        .iter()
        .map(|e| match e {
            ServiceEvent::ResponseReady { .. } => "ready",
            ServiceEvent::Unreachable { .. } => "unreachable",
            ServiceEvent::Rejected { .. } => "rejected",
            ServiceEvent::Cancelled { .. } => "cancelled",
            ServiceEvent::BatchFlushed(_) => "flushed",
        })
        .collect();
    assert!(kinds.contains(&"cancelled"), "{kinds:?}");
    assert!(kinds.iter().filter(|k| **k == "flushed").count() >= 2, "{kinds:?}");
    assert_eq!(kinds.iter().filter(|k| **k == "ready").count(), 4, "{kinds:?}");
    // The deferred duplicate of client 0 really landed in a later window
    // than its blocker.
    let deferred_ticket = run.outcomes[1].ticket().unwrap();
    let blocker_ticket = run.outcomes[0].ticket().unwrap();
    let pos = |t: Ticket| run.events.iter().position(|e| e.ticket() == Some(t)).unwrap();
    let flush_between = run.events[pos(blocker_ticket)..pos(deferred_ticket)]
        .iter()
        .filter(|e| matches!(e, ServiceEvent::BatchFlushed(_)))
        .count();
    assert!(flush_between >= 1, "deferral must cross a window boundary: {kinds:?}");
}
