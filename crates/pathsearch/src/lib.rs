//! # pathsearch — shortest-path algorithms for the OPAQUE reproduction
//!
//! The directions-search server of the paper (Lee, Lee, Leong & Zheng,
//! ICDE 2009) answers path queries with "well-known shortest path
//! algorithms" (§I) and answers *obfuscated* path queries with
//! multiple-source multiple-destination (MSMD) searches (§IV). This crate
//! implements all of them over any [`roadnet::GraphView`] — so the same
//! algorithms run against the plain in-memory network or the CCAM-style
//! paged store, with computation counted by [`SearchStats`] and I/O counted
//! by the storage layer:
//!
//! * [`arena`] — the reusable, generation-stamped [`SearchArena`] every
//!   Dijkstra-family algorithm runs in, so a query stream touches no
//!   allocator;
//! * [`dijkstra`] — lazy-deletion Dijkstra over the arena;
//!   single-destination, full-tree, and the paper's multi-destination
//!   early-termination variant;
//! * [`mod@astar`] — exact and weighted A* with the Euclidean heuristic;
//! * [`mod@alt`] — ALT (A* with landmarks + triangle inequality), an extension
//!   whose heuristic reasons in network distance;
//! * [`mod@bidirectional`] — bidirectional Dijkstra, the strongest single-pair
//!   baseline;
//! * [`multi`] — the MSMD processor with selectable sharing policies,
//!   including the shared-frontier interleaved sweep (`frontier.rs`
//!   internals) and the adopt-or-grow cached entry point
//!   ([`msmd_in_cached`]);
//! * [`trace`] — recorded, reusable sweeps ([`SweepTrace`]): extraction
//!   and adoption of settled shortest-path trees with byte-identical
//!   counter replay, the substrate of the service layer's shard-local
//!   tree cache;
//! * [`cost`] — the calibrated `O(‖s,t‖²)` cost model of Lemma 1.
//!
//! ## Quick example
//!
//! ```
//! use roadnet::generators::{GridConfig, grid_network};
//! use roadnet::NodeId;
//! use pathsearch::{shortest_path, msmd, SharingPolicy};
//!
//! let net = grid_network(&GridConfig { width: 10, height: 10, ..Default::default() }).unwrap();
//! let path = shortest_path(&net, NodeId(0), NodeId(99)).unwrap();
//! assert!(path.verify(&net, 1e-9));
//!
//! // An obfuscated query: 2 sources × 2 destinations, one shared tree per source.
//! let r = msmd(&net, &[NodeId(0), NodeId(9)], &[NodeId(99), NodeId(90)], SharingPolicy::PerSource);
//! assert_eq!(r.num_paths(), 4);
//! ```

#![warn(missing_docs)]

pub mod alt;
pub mod arena;
pub mod astar;
pub mod bidirectional;
pub mod cost;
pub mod dijkstra;
mod frontier;
pub mod multi;
pub mod path;
pub mod range;
pub mod stats;
pub mod trace;

pub use alt::{AltError, AltPreprocessing, BiPotential, GoalPotential, PotentialParams, alt};
pub use arena::SearchArena;
pub use astar::{astar, astar_scaled, astar_with};
pub use bidirectional::bidirectional;
pub use cost::{CostModel, CostObservation};
pub use dijkstra::{
    Goal, Searcher, multi_destination, run_in, run_in_cached, run_in_guided, run_in_guided_cached,
    run_in_guided_traced, run_in_traced, shortest_distance, shortest_path,
};
pub use multi::{
    MsmdResult, SharingPolicy, TreeSide, TreeStats, msmd, msmd_in, msmd_in_cached, msmd_in_guided,
    msmd_in_guided_cached,
};
pub use path::Path;
pub use range::{range_search, ring_search};
pub use stats::SearchStats;
pub use trace::{SettleEvent, SweepDirection, SweepTrace, TreeStore};
