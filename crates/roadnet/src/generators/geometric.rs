//! Random geometric network generator.
//!
//! `num_nodes` points are scattered uniformly in a square; each node links
//! to its `k` nearest neighbours (duplicate links collapse to one edge).
//! k-NN graphs over uniform points are near-planar with road-like degrees.
//! Any residual components are stitched together through their closest node
//! pairs, so the result is always connected.

use crate::error::Result;
use crate::geo::Point;
use crate::graph::{GraphBuilder, RoadNetwork};
use crate::ids::NodeId;
use crate::spatial::SpatialIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Parameters for [`random_geometric`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct GeometricConfig {
    /// Number of nodes (≥ 2).
    pub num_nodes: usize,
    /// Side length of the square the nodes are scattered in. If 0, a side
    /// proportional to `sqrt(num_nodes)` is chosen so density stays constant
    /// across sizes (≈ 1 node per unit area).
    pub side: f64,
    /// Each node connects to its `k` nearest neighbours.
    pub k: usize,
    /// Edge weight = Euclidean length × uniform sample from this range
    /// (lower bound ≥ 1 keeps A* admissible).
    pub weight_factor: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeometricConfig {
    fn default() -> Self {
        GeometricConfig { num_nodes: 1000, side: 0.0, k: 3, weight_factor: (1.0, 1.25), seed: 0 }
    }
}

/// Generate a random geometric network per `cfg`.
pub fn random_geometric(cfg: &GeometricConfig) -> Result<RoadNetwork> {
    assert!(cfg.num_nodes >= 2, "need at least 2 nodes");
    assert!(cfg.k >= 1, "k must be at least 1");
    assert!(
        cfg.weight_factor.0 >= 1.0 && cfg.weight_factor.1 >= cfg.weight_factor.0,
        "weight factors must satisfy 1 <= lo <= hi"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x67656f6d); // "geom"
    let side = if cfg.side > 0.0 { cfg.side } else { (cfg.num_nodes as f64).sqrt() };

    let points: Vec<Point> = (0..cfg.num_nodes)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let index = SpatialIndex::from_points(points.clone());

    let mut b = GraphBuilder::new();
    b.reserve(cfg.num_nodes, cfg.num_nodes * cfg.k);
    for p in &points {
        b.add_node(*p)?;
    }

    let weight = |len: f64, rng: &mut StdRng| {
        if cfg.weight_factor.0 == cfg.weight_factor.1 {
            len * cfg.weight_factor.0
        } else {
            len * rng.gen_range(cfg.weight_factor.0..cfg.weight_factor.1)
        }
    };

    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(cfg.num_nodes * cfg.k);
    let add_unique = |b: &mut GraphBuilder,
                      rng: &mut StdRng,
                      seen: &mut HashSet<(u32, u32)>,
                      a: NodeId,
                      c: NodeId|
     -> Result<()> {
        let key = (a.0.min(c.0), a.0.max(c.0));
        if seen.insert(key) {
            let len = points[a.index()].distance(points[c.index()]);
            let w = weight(len, rng);
            b.add_edge(a, c, w)?;
        }
        Ok(())
    };

    for (i, p) in points.iter().enumerate() {
        let me = NodeId::from_index(i);
        // k+1 because the node itself is its own nearest neighbour.
        for nb in index.k_nearest(*p, cfg.k + 1) {
            if nb != me {
                add_unique(&mut b, &mut rng, &mut seen, me, nb)?;
            }
        }
    }

    // Stitch any remaining components to the largest one through the closest
    // pair of nodes (scan-based: component counts are tiny in practice).
    let g = b.clone().build()?;
    if !g.is_connected() {
        let labels = g.component_labels();
        let num = labels.iter().copied().max().unwrap() as usize + 1;
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num];
        for (i, &l) in labels.iter().enumerate() {
            members[l as usize].push(NodeId::from_index(i));
        }
        members.sort_by_key(|m| std::cmp::Reverse(m.len()));
        let mut main: Vec<NodeId> = members[0].clone();
        for comp in &members[1..] {
            let mut best = (f64::INFINITY, comp[0], main[0]);
            for &u in comp {
                for &v in &main {
                    let d = points[u.index()].distance(points[v.index()]);
                    if d < best.0 {
                        best = (d, u, v);
                    }
                }
            }
            add_unique(&mut b, &mut rng, &mut seen, best.1, best.2)?;
            main.extend_from_slice(comp);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometric_is_connected_admissible_and_sparse() {
        let g =
            random_geometric(&GeometricConfig { num_nodes: 500, ..Default::default() }).unwrap();
        assert_eq!(g.num_nodes(), 500);
        assert!(g.is_connected());
        assert!(g.euclidean_admissible(1e-9));
        // k-NN with k=3 yields between n*k/2 and n*k undirected edges.
        assert!(g.num_edges() >= 500 * 3 / 2);
        assert!(g.num_edges() <= 500 * 4); // some slack for stitching
    }

    #[test]
    fn no_duplicate_edges() {
        let g =
            random_geometric(&GeometricConfig { num_nodes: 200, seed: 5, ..Default::default() })
                .unwrap();
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            let key = (e.a.0.min(e.b.0), e.a.0.max(e.b.0));
            assert!(seen.insert(key), "duplicate edge {:?}", key);
        }
    }

    #[test]
    fn density_is_constant_across_sizes() {
        let small =
            random_geometric(&GeometricConfig { num_nodes: 250, ..Default::default() }).unwrap();
        let large =
            random_geometric(&GeometricConfig { num_nodes: 1000, ..Default::default() }).unwrap();
        let d_small = small.num_nodes() as f64 / (small.bbox().width() * small.bbox().height());
        let d_large = large.num_nodes() as f64 / (large.bbox().width() * large.bbox().height());
        assert!((d_small / d_large - 1.0).abs() < 0.35, "densities {d_small} vs {d_large}");
    }

    #[test]
    fn explicit_side_is_respected() {
        let g =
            random_geometric(&GeometricConfig { num_nodes: 100, side: 50.0, ..Default::default() })
                .unwrap();
        assert!(g.bbox().max.x <= 50.0 && g.bbox().max.y <= 50.0);
    }

    #[test]
    fn tiny_network_still_works() {
        let g = random_geometric(&GeometricConfig { num_nodes: 2, k: 1, ..Default::default() })
            .unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let _ = random_geometric(&GeometricConfig { k: 0, ..Default::default() });
    }
}
