//! Pin the shipped `lint.toml` against the compiled default.
//!
//! The binary falls back to `Config::default()` when no baseline file
//! exists, so the two must describe the same scopes — otherwise
//! deleting or truncating `lint.toml` would quietly change what the
//! gate enforces.

use opaque_lint::Config;
use std::path::Path;

fn shipped() -> Config {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap();
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    Config::parse(&text).expect("lint.toml parses")
}

#[test]
fn shipped_baseline_matches_the_compiled_default() {
    let file = shipped();
    let compiled = Config::default();
    assert_eq!(file.determinism_scopes, compiled.determinism_scopes);
    assert_eq!(file.panic_path_files, compiled.panic_path_files);
    assert_eq!(file.unsafe_scopes, compiled.unsafe_scopes);
    assert_eq!(file.doc_files, compiled.doc_files);
}

#[test]
fn baseline_scopes_point_at_real_paths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf();
    let cfg = shipped();
    for scope in cfg.determinism_scopes.iter().chain(&cfg.unsafe_scopes) {
        assert!(root.join(scope).is_dir(), "scope `{scope}` is not a directory");
    }
    for file in cfg.panic_path_files.iter().chain(&cfg.doc_files) {
        assert!(root.join(file).is_file(), "listed file `{file}` does not exist");
    }
}
