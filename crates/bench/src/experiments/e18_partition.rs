//! E18 — region-owned spatial sharding: routed placement vs round-robin
//! on the hotspot workload (extends §V / Lemma 1).
//!
//! PR 4's shard-local tree cache (e15) made spanning-tree reuse the
//! payoff; this experiment measures what *placement* does to that payoff.
//! Identical hotspot batch streams drive two sharded `OpaqueService`s
//! that differ only in [`PartitionPolicy`]: round-robin scatters each
//! hotspot root across every shard (every shard pays its own cold
//! misses), while `RegionOwned` routes each obfuscated query to the
//! shard owning its tree-root region, so the fleet grows each popular
//! tree once.
//!
//! Three claims, checked on every run:
//!
//! * **determinism** — every batch's `BatchReport` is byte-identical
//!   across placements and the delivered paths are identical (the
//!   partition-equivalence harness's guarantee, re-proven at bench
//!   scale);
//! * **locality pays** — the region-owned fleet ends the run with a
//!   strictly higher aggregate tree-cache hit rate than round-robin;
//! * **searches stay home** — replaying the routed sweeps with
//!   `SweepTrace` shows a larger fraction of settled nodes inside the
//!   serving shard's owned+halo coverage under region routing than under
//!   round-robin (asserted at bench scale, reported always).

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{
    CachePolicy, DirectionsBackend, FakeSelection, ObfuscationMode, Obfuscator, Partition,
    PartitionPolicy, RouteKind, ServiceBuilder,
};
use pathsearch::{Goal, Searcher, SharingPolicy};
use roadnet::generators::NetworkClass;
use std::time::Instant;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

const SHARDS: usize = 4;
const HALO: u32 = 2;
/// Cap on the units replayed for the settled-node locality probe.
const LOCALITY_SAMPLE: usize = 64;

/// Per-placement measurement over one replayed batch stream.
struct Measured {
    elapsed_secs: f64,
    total_pairs: u64,
    hit_rate: f64,
    report_json: Vec<String>,
    delivered: Vec<(opaque::ClientId, Vec<roadnet::NodeId>)>,
}

fn drive(
    g: &roadnet::RoadNetwork,
    batches: &[Vec<opaque::ClientRequest>],
    partition: PartitionPolicy,
) -> Measured {
    let mut svc = ServiceBuilder::new()
        .map(g.clone())
        .seed(0xE18)
        .shards(SHARDS)
        .partition_policy(partition)
        // Auto transposition roots one tree at the (hotspot) destination
        // of each unit — the root whose owner the router targets.
        .sharing_policy(SharingPolicy::Auto)
        .fake_selection(FakeSelection::Uniform)
        .obfuscation_mode(ObfuscationMode::Independent)
        .cache_policy(CachePolicy::Lru { trees: 64 })
        .build()
        .expect("valid configuration");

    let mut measured = Measured {
        elapsed_secs: 0.0,
        total_pairs: 0,
        hit_rate: 0.0,
        report_json: Vec::with_capacity(batches.len()),
        delivered: Vec::new(),
    };
    for batch in batches {
        let t0 = Instant::now();
        let response = svc.process_batch(batch).expect("batch succeeds");
        measured.elapsed_secs += t0.elapsed().as_secs_f64();
        measured.total_pairs += response.report.total_pairs;
        measured
            .report_json
            .push(serde_json::to_string(&response.report).expect("report serializes"));
        measured
            .delivered
            .extend(response.results.iter().map(|r| (r.client, r.path.nodes().to_vec())));
    }
    let stats = svc.backend().stats();
    let consulted = stats.tree_cache_hits + stats.tree_cache_misses;
    measured.hit_rate =
        if consulted == 0 { 0.0 } else { stats.tree_cache_hits as f64 / consulted as f64 };
    measured
}

/// Replay a sample of obfuscated units as traced sweeps and report, per
/// placement, the mean fraction of settled nodes lying inside the serving
/// shard's owned+halo coverage — plus the region router's route-kind mix.
fn settled_locality(
    g: &roadnet::RoadNetwork,
    partition: &Partition,
    requests: &[opaque::ClientRequest],
) -> (f64, f64, [usize; 3]) {
    let mut obfuscator = Obfuscator::new(g.clone(), FakeSelection::Uniform, 0xE18);
    let mut searcher = Searcher::new();
    let (mut region_sum, mut rr_sum, mut kinds) = (0.0, 0.0, [0usize; 3]);
    let sample = requests.len().min(LOCALITY_SAMPLE);
    for (i, request) in requests.iter().take(sample).enumerate() {
        let unit = obfuscator.obfuscate_independent(request).expect("unit obfuscates");
        let (region_shard, kind) = partition.route_explain(&unit.query);
        kinds[match kind {
            RouteKind::Owner => 0,
            RouteKind::Halo => 1,
            RouteKind::Fallback => 2,
        }] += 1;
        let rr_shard = i % partition.shards();
        // `f_t = 1` keeps one tree per unit, rooted (under Auto
        // transposition) at the single hotspot destination and grown
        // until every source is settled — the sweep the server runs.
        let root = unit.query.targets()[0];
        let goal = Goal::Set(unit.query.sources().to_vec());
        let (_, trace) = searcher.run_traced(g, root, &goal);
        let settled = trace.len().max(1) as f64;
        let in_shard = |shard: usize| {
            trace.settled().filter(|&n| partition.covers(shard, n)).count() as f64 / settled
        };
        region_sum += in_shard(region_shard);
        rr_sum += in_shard(rr_shard);
    }
    let denom = sample.max(1) as f64;
    (region_sum / denom, rr_sum / denom, kinds)
}

/// Run E18.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E18",
        "region-owned spatial sharding vs round-robin placement",
        "routed queries keep hotspot trees on their owner shard (extends §V)",
        &["placement", "batches", "pairs", "ms/batch", "hit rate", "settled in shard"],
    );
    let (g, idx) = network_with_index(NetworkClass::Geometric, scale);
    let bench_scale = scale.network_nodes >= 2_000;
    let reps = if bench_scale { 6 } else { 4 };
    t.note(format!(
        "geometric map, {} nodes, {SHARDS} shards (halo {HALO}), {reps} hotspot batches",
        g.num_nodes()
    ));

    // The same regime as e15 — everyone drives to a few malls — but now
    // the question is *which shard* answers. Fresh source seeds per
    // batch; destinations keep revisiting the same few hotspot nodes, so
    // each root has exactly one owner for the router to find.
    let batches: Vec<Vec<opaque::ClientRequest>> = (0..reps)
        .map(|rep| {
            generate_requests(
                &g,
                &idx,
                &WorkloadConfig {
                    num_requests: scale.queries.max(8),
                    queries: QueryDistribution::Hotspot {
                        hotspots: 4,
                        exponent: 1.0,
                        spread: 0.005,
                    },
                    protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 1 },
                    seed: 0xE180 + rep as u64,
                },
            )
        })
        .collect();

    let rr = drive(&g, &batches, PartitionPolicy::RoundRobin);
    let region = drive(&g, &batches, PartitionPolicy::RegionOwned { halo: HALO });

    // Determinism, re-proven at this scale: placement never changes a
    // report byte or a delivered path.
    assert_eq!(
        region.report_json, rr.report_json,
        "placement must not change a single report byte"
    );
    assert_eq!(region.delivered, rr.delivered, "placement must not change a delivered path");

    // The payoff: same stream, same per-shard caches, strictly better
    // hit rate when each hotspot root has one owner instead of SHARDS
    // cold copies.
    assert!(
        region.hit_rate > rr.hit_rate,
        "region-owned hit rate {:.4} must strictly beat round-robin {:.4}",
        region.hit_rate,
        rr.hit_rate
    );

    // The settled-node locality probe over the first batch's units.
    let partition = Partition::build(&g, SHARDS, HALO).expect("partition builds");
    let (local_region, local_rr, kinds) = settled_locality(&g, &partition, &batches[0]);
    t.note(format!(
        "route mix over {} sampled units: {} owner / {} halo / {} fallback",
        kinds.iter().sum::<usize>(),
        kinds[0],
        kinds[1],
        kinds[2]
    ));
    if bench_scale {
        assert!(
            local_region > local_rr,
            "settled-node locality must favour region routing at bench scale \
             (region {local_region:.3} vs round-robin {local_rr:.3})"
        );
    }

    let row = |t: &mut ExperimentTable, name: &str, m: &Measured, locality: f64| {
        t.row(vec![
            name.to_string(),
            m.report_json.len().to_string(),
            m.total_pairs.to_string(),
            f3(m.elapsed_secs * 1e3 / m.report_json.len() as f64),
            f3(m.hit_rate),
            f3(locality),
        ]);
    };
    row(&mut t, "round-robin", &rr, local_rr);
    row(&mut t, &format!("region-owned(halo={HALO})"), &region, local_region);
    t.note(format!(
        "hit rate {:.0}% -> {:.0}%; settled-in-shard {:.0}% -> {:.0}%",
        rr.hit_rate * 100.0,
        region.hit_rate * 100.0,
        local_rr * 100.0,
        local_region * 100.0
    ));

    t.metric("cache_hit_rate_region", region.hit_rate);
    t.metric("cache_hit_rate_rr", rr.hit_rate);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_quick_scale_with_identical_reports_and_a_locality_win() {
        // run() itself asserts byte-identical reports, identical
        // deliveries, and the strict hit-rate win; the settled-node
        // locality assertion is scale-gated inside.
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 2, "round-robin + region-owned");
        assert_eq!(t.rows[0][2], t.rows[1][2], "identical pair workload");
        let region = t.metric_value("cache_hit_rate_region").unwrap();
        let rr = t.metric_value("cache_hit_rate_rr").unwrap();
        assert!(region > rr, "metrics carry the win: {region} vs {rr}");
    }
}
