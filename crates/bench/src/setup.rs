//! Shared scaffolding for the experiment harness.

use roadnet::generators::NetworkClass;
use roadnet::{RoadNetwork, SpatialIndex};

/// Experiment scale: `quick` keeps the full suite under a couple of seconds
/// (used by tests and smoke runs), `full` is the scale EXPERIMENTS.md
/// records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Target node count for generated networks.
    pub network_nodes: usize,
    /// Queries sampled per measured configuration.
    pub queries: usize,
    /// Monte-Carlo trials for attack simulations.
    pub trials: u32,
}

impl Scale {
    /// Small inputs for CI / tests.
    pub fn quick() -> Self {
        Scale { network_nodes: 400, queries: 8, trials: 20_000 }
    }

    /// The scale used to produce the numbers in EXPERIMENTS.md.
    pub fn full() -> Self {
        Scale { network_nodes: 4_000, queries: 40, trials: 200_000 }
    }
}

/// The experiment suite's default map: one network per class, fixed seed.
pub fn network(class: NetworkClass, scale: &Scale) -> RoadNetwork {
    class.generate(scale.network_nodes, 0xC0FFEE).expect("generators produce valid networks")
}

/// Network plus spatial index, the common pair.
pub fn network_with_index(class: NetworkClass, scale: &Scale) -> (RoadNetwork, SpatialIndex) {
    let g = network(class, scale);
    let idx = SpatialIndex::build(&g);
    (g, idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.network_nodes < f.network_nodes);
        assert!(q.queries < f.queries);
        assert!(q.trials < f.trials);
    }

    #[test]
    fn standard_networks_are_connected() {
        for class in NetworkClass::ALL {
            let g = network(class, &Scale::quick());
            assert!(g.is_connected());
        }
    }
}
