//! Continent-scale road-network generator.
//!
//! Published million-node road graphs (the DIMACS USA/Europe files) are not
//! shippable in CI, so this generator produces a deterministic synthetic
//! continent at matching scale: a `provinces_x × provinces_y` lattice of
//! jittered street-grid *provinces* — each with its own random spanning
//! tree and knockout, like [`grid_network`](super::grid_network) — joined
//! by a small number of *highway* crossings between adjacent provinces.
//! The result has the two structural properties continent-scale search
//! experiments depend on:
//!
//! * **locality** — almost all edges are short intra-province streets, so
//!   uninformed search floods a province before escaping it;
//! * **sparse long-haul connectivity** — inter-province travel funnels
//!   through a few highway crossings, which is what makes goal direction
//!   (ALT lower bounds) pay off at scale.
//!
//! All weights are the Euclidean length scaled by a factor ≥ 1, so the
//! Euclidean and landmark heuristics stay admissible. One seeded RNG
//! drives everything: same config ⇒ bit-identical network.

use super::grid::Dsu;
use crate::error::Result;
use crate::geo::Point;
use crate::graph::{GraphBuilder, RoadNetwork};
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters for [`continent_network`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ContinentConfig {
    /// Province lattice columns (≥ 1).
    pub provinces_x: usize,
    /// Province lattice rows (≥ 1; `provinces_x × provinces_y ≥ 1`).
    pub provinces_y: usize,
    /// Street-grid columns per province (≥ 2).
    pub province_width: usize,
    /// Street-grid rows per province (≥ 2).
    pub province_height: usize,
    /// Distance between adjacent street nodes.
    pub spacing: f64,
    /// Empty belt between provinces, in multiples of `spacing`. Highways
    /// must span it, so cross-province hops are visibly longer than
    /// streets.
    pub sea_gap: f64,
    /// Street coordinates are jittered by up to ± `jitter × spacing / 2`
    /// per axis.
    pub jitter: f64,
    /// Street weight = Euclidean length × uniform sample from this range;
    /// lower bound ≥ 1 keeps goal-directed heuristics admissible.
    pub weight_factor: (f64, f64),
    /// Fraction of non-spanning-tree street edges removed per province.
    pub knockout: f64,
    /// Highway crossings between each pair of adjacent provinces (≥ 1 so
    /// the continent stays connected).
    pub highway_lanes: usize,
    /// Highway weight = Euclidean length × this factor (≥ 1).
    pub highway_factor: f64,
    /// RNG seed; same seed ⇒ same network.
    pub seed: u64,
}

impl Default for ContinentConfig {
    fn default() -> Self {
        ContinentConfig {
            provinces_x: 4,
            provinces_y: 4,
            province_width: 32,
            province_height: 32,
            spacing: 1.0,
            sea_gap: 6.0,
            jitter: 0.2,
            weight_factor: (1.0, 1.3),
            knockout: 0.08,
            highway_lanes: 3,
            highway_factor: 1.05,
            seed: 0,
        }
    }
}

impl ContinentConfig {
    /// Total nodes the config generates.
    pub fn num_nodes(&self) -> usize {
        self.provinces_x * self.provinces_y * self.province_width * self.province_height
    }
}

/// Generate a continent per `cfg`. See the [module docs](self) for the
/// construction.
///
/// # Errors
/// Propagates builder validation errors; with a valid config generation
/// always succeeds.
///
/// # Panics
/// On degenerate configs (empty lattice, provinces under 2×2, weight or
/// highway factors below 1, zero highway lanes on a multi-province map).
pub fn continent_network(cfg: &ContinentConfig) -> Result<RoadNetwork> {
    assert!(cfg.provinces_x >= 1 && cfg.provinces_y >= 1, "continent needs at least one province");
    assert!(cfg.province_width >= 2 && cfg.province_height >= 2, "provinces must be at least 2x2");
    assert!(
        cfg.weight_factor.0 >= 1.0 && cfg.weight_factor.1 >= cfg.weight_factor.0,
        "weight factors must satisfy 1 <= lo <= hi"
    );
    assert!(cfg.highway_factor >= 1.0, "highway factor must be >= 1");
    assert!((0.0..=1.0).contains(&cfg.knockout), "knockout must be a fraction");
    assert!(
        cfg.highway_lanes >= 1 || cfg.provinces_x * cfg.provinces_y == 1,
        "multi-province continents need at least one highway lane"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x636f_6e74); // "cont"

    let (pw, ph) = (cfg.province_width, cfg.province_height);
    let per_province = pw * ph;
    let total = cfg.num_nodes();
    let mut b = GraphBuilder::new();
    b.reserve(total, 2 * total);

    // Global node id of street (x, y) in province (px, py). Provinces are
    // laid out row-major, streets row-major within each.
    let id = |px: usize, py: usize, x: usize, y: usize| {
        NodeId::from_index((py * cfg.provinces_x + px) * per_province + y * pw + x)
    };
    // Province origin in world coordinates, shifted by the sea gap.
    let stride_x = (pw as f64 + cfg.sea_gap) * cfg.spacing;
    let stride_y = (ph as f64 + cfg.sea_gap) * cfg.spacing;

    // Nodes: jittered lattices, province by province, one RNG stream.
    for py in 0..cfg.provinces_y {
        for px in 0..cfg.provinces_x {
            let (ox, oy) = (px as f64 * stride_x, py as f64 * stride_y);
            for y in 0..ph {
                for x in 0..pw {
                    let jx = if cfg.jitter > 0.0 {
                        rng.gen_range(-0.5..0.5) * cfg.jitter * cfg.spacing
                    } else {
                        0.0
                    };
                    let jy = if cfg.jitter > 0.0 {
                        rng.gen_range(-0.5..0.5) * cfg.jitter * cfg.spacing
                    } else {
                        0.0
                    };
                    b.add_node(Point::new(
                        ox + x as f64 * cfg.spacing + jx,
                        oy + y as f64 * cfg.spacing + jy,
                    ))?;
                }
            }
        }
    }

    // Streets: per province, shuffled lattice candidates with a preserved
    // random spanning tree (exactly the grid generator's construction).
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::with_capacity(2 * per_province);
    for py in 0..cfg.provinces_y {
        for px in 0..cfg.provinces_x {
            candidates.clear();
            for y in 0..ph {
                for x in 0..pw {
                    if x + 1 < pw {
                        candidates.push((id(px, py, x, y), id(px, py, x + 1, y)));
                    }
                    if y + 1 < ph {
                        candidates.push((id(px, py, x, y), id(px, py, x, y + 1)));
                    }
                }
            }
            candidates.shuffle(&mut rng);
            let base = (py * cfg.provinces_x + px) * per_province;
            let mut dsu = Dsu::new(per_province);
            for &(a, c) in candidates.iter() {
                let in_tree = dsu.union(a.0 - base as u32, c.0 - base as u32);
                if in_tree || rng.gen::<f64>() >= cfg.knockout {
                    let factor = if cfg.weight_factor.0 == cfg.weight_factor.1 {
                        cfg.weight_factor.0
                    } else {
                        rng.gen_range(cfg.weight_factor.0..cfg.weight_factor.1)
                    };
                    b.add_euclidean_edge(a, c, factor)?;
                }
            }
        }
    }

    // Highways: `highway_lanes` evenly spread crossings per adjacent
    // province pair — east-west between border columns, north-south
    // between border rows.
    let lane_rows = |extent: usize| -> Vec<usize> {
        let lanes = cfg.highway_lanes.min(extent);
        (0..lanes).map(|l| (2 * l + 1) * extent / (2 * lanes)).collect()
    };
    for py in 0..cfg.provinces_y {
        for px in 0..cfg.provinces_x {
            if px + 1 < cfg.provinces_x {
                for &y in &lane_rows(ph) {
                    b.add_euclidean_edge(
                        id(px, py, pw - 1, y),
                        id(px + 1, py, 0, y),
                        cfg.highway_factor,
                    )?;
                }
            }
            if py + 1 < cfg.provinces_y {
                for &x in &lane_rows(pw) {
                    b.add_euclidean_edge(
                        id(px, py, x, ph - 1),
                        id(px, py + 1, x, 0),
                        cfg.highway_factor,
                    )?;
                }
            }
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ContinentConfig {
        ContinentConfig {
            provinces_x: 3,
            provinces_y: 2,
            province_width: 8,
            province_height: 8,
            seed: 5,
            ..ContinentConfig::default()
        }
    }

    #[test]
    fn continent_is_connected_and_admissible() {
        let g = continent_network(&small()).unwrap();
        assert_eq!(g.num_nodes(), 3 * 2 * 8 * 8);
        assert!(g.is_connected(), "highways must join every province");
        assert!(g.euclidean_admissible(1e-9));
        let deg = g.avg_degree();
        assert!((1.5..=8.0).contains(&deg), "degree {deg} not road-like");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = continent_network(&small()).unwrap();
        let b = continent_network(&small()).unwrap();
        assert_eq!(a.edges(), b.edges());
        let c = continent_network(&ContinentConfig { seed: 6, ..small() }).unwrap();
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn highway_count_matches_lattice_adjacency() {
        let cfg = ContinentConfig { knockout: 0.0, jitter: 0.0, ..small() };
        let g = continent_network(&cfg).unwrap();
        // Full per-province lattice plus lanes on every adjacent pair.
        let street = 3 * 2 * (8 * 7 + 8 * 7);
        let pairs = 2 * 2 + 3; // east-west + north-south adjacencies
        assert_eq!(g.num_edges(), street + pairs * cfg.highway_lanes);
    }

    #[test]
    fn provinces_are_separated_by_the_sea_gap() {
        let cfg = ContinentConfig { jitter: 0.0, ..small() };
        let g = continent_network(&cfg).unwrap();
        // Last column of province (0,0) vs first column of province (1,0).
        let left = g.point(NodeId(7));
        let right = g.point(NodeId((8 * 8) as u32));
        assert!(right.x - left.x >= cfg.sea_gap * cfg.spacing);
    }

    #[test]
    fn single_province_needs_no_highways() {
        let cfg = ContinentConfig {
            provinces_x: 1,
            provinces_y: 1,
            province_width: 6,
            province_height: 6,
            highway_lanes: 0,
            ..ContinentConfig::default()
        };
        let g = continent_network(&cfg).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.num_nodes(), 36);
    }

    #[test]
    #[should_panic(expected = "highway lane")]
    fn zero_lanes_on_multi_province_map_panics() {
        let _ = continent_network(&ContinentConfig { highway_lanes: 0, ..small() });
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_province_panics() {
        let _ = continent_network(&ContinentConfig { province_width: 1, ..small() });
    }
}
