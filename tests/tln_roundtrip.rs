//! Property-based round-trip of the TLN network exchange format: any
//! network the builder accepts must survive write → read bit-exactly.

use proptest::prelude::*;
use roadnet::io::{read_tln, write_tln};
use roadnet::{GraphBuilder, NodeId, Point, RoadNetwork};

fn arb_network(directed: bool) -> impl Strategy<Value = RoadNetwork> {
    (1usize..30)
        .prop_flat_map(move |n| {
            let coords = proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), n);
            let edges =
                proptest::collection::vec((0..n as u32, 0..n as u32, 0.0f64..1e9), 0..(3 * n));
            (Just(directed), coords, edges)
        })
        .prop_map(|(directed, coords, edges)| {
            let mut b = if directed { GraphBuilder::directed() } else { GraphBuilder::new() };
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite");
            }
            let n = coords.len() as u32;
            for (a, c, w) in edges {
                let (a, c) = (a % n, c % n);
                if a != c {
                    b.add_edge(NodeId(a), NodeId(c), w).expect("valid");
                }
            }
            b.build().expect("non-empty")
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn undirected_round_trip_is_exact(g in arb_network(false)) {
        let mut buf = Vec::new();
        write_tln(&g, &mut buf).expect("write");
        let h = read_tln(&mut std::io::Cursor::new(buf)).expect("read back");
        prop_assert_eq!(g.num_nodes(), h.num_nodes());
        prop_assert_eq!(g.is_directed(), h.is_directed());
        prop_assert_eq!(g.edges(), h.edges());
        for n in g.nodes() {
            prop_assert_eq!(g.point(n), h.point(n));
        }
    }

    #[test]
    fn directed_round_trip_is_exact(g in arb_network(true)) {
        let mut buf = Vec::new();
        write_tln(&g, &mut buf).expect("write");
        let h = read_tln(&mut std::io::Cursor::new(buf)).expect("read back");
        prop_assert!(h.is_directed());
        prop_assert_eq!(g.edges(), h.edges());
        prop_assert_eq!(g.num_arcs(), h.num_arcs());
    }

    #[test]
    fn double_round_trip_is_stable(g in arb_network(false)) {
        // write(read(write(g))) == write(g): the format is canonical.
        let mut first = Vec::new();
        write_tln(&g, &mut first).expect("write 1");
        let h = read_tln(&mut std::io::Cursor::new(first.clone())).expect("read");
        let mut second = Vec::new();
        write_tln(&h, &mut second).expect("write 2");
        prop_assert_eq!(first, second);
    }
}
