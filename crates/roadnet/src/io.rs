//! Plain-text network exchange formats: TLN and a DIMACS-shortest-path
//! subset.
//!
//! The paper's obfuscator keeps "a simple road map (e.g., obtained from
//! Tiger/Line)" (§IV). Real TIGER/Line files are unavailable offline, so
//! this module defines a minimal line-oriented format (TLN) carrying exactly
//! what the system needs — node coordinates and weighted segments — and
//! readers/writers for it. Generated networks can be exported, archived with
//! experiment results, and re-imported bit-exactly (coordinates and weights
//! round-trip through `{:.17e}` formatting).
//!
//! ```text
//! TLN 1 undirected
//! # comment lines and blank lines are ignored
//! N <id> <x> <y>
//! E <a> <b> <weight>
//! ```
//!
//! Node ids must be dense (`0..n`) but may appear in any order; edges may
//! only reference declared ids.
//!
//! For continent-scale maps the crate also speaks the file layout of the
//! [9th DIMACS Implementation Challenge] — the de-facto interchange for
//! published road networks (TIGER/Line USA, Europe): a `.gr` distance graph
//! plus a `.co` coordinate file. See [`read_dimacs`] for the exact grammar
//! subset and [`write_dimacs_gr`]/[`write_dimacs_co`] for the emitters.
//! `docs/formats.md` at the repository root documents both formats in full.
//!
//! [9th DIMACS Implementation Challenge]: http://www.diag.uniroma1.it/challenge9/

use crate::error::{Result, RoadNetError};
use crate::geo::Point;
use crate::graph::{GraphBuilder, RoadNetwork};
use crate::ids::NodeId;
use std::io::{BufRead, Write};

const MAGIC: &str = "TLN";
const VERSION: &str = "1";

/// Serialize `g` in TLN format.
pub fn write_tln<W: Write>(g: &RoadNetwork, w: &mut W) -> Result<()> {
    let mode = if g.is_directed() { "directed" } else { "undirected" };
    writeln!(w, "{MAGIC} {VERSION} {mode}")?;
    writeln!(w, "# nodes={} edges={}", g.num_nodes(), g.num_edges())?;
    for n in g.nodes() {
        let p = g.point(n);
        writeln!(w, "N {} {:.17e} {:.17e}", n, p.x, p.y)?;
    }
    for e in g.edges() {
        writeln!(w, "E {} {} {:.17e}", e.a, e.b, e.weight)?;
    }
    Ok(())
}

/// Parse a TLN document into a [`RoadNetwork`].
pub fn read_tln<R: BufRead>(r: &mut R) -> Result<RoadNetwork> {
    let mut lines = r.lines().enumerate();

    let (first_no, first) = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('#') {
                    break (no + 1, t.to_string());
                }
            }
            None => return Err(RoadNetError::Parse { line: 0, message: "empty document".into() }),
        }
    };
    let mut hdr = first.split_whitespace();
    if hdr.next() != Some(MAGIC) || hdr.next() != Some(VERSION) {
        return Err(RoadNetError::Parse {
            line: first_no,
            message: format!("expected header '{MAGIC} {VERSION} <mode>', got '{first}'"),
        });
    }
    let directed = match hdr.next() {
        Some("directed") => true,
        Some("undirected") => false,
        other => {
            return Err(RoadNetError::Parse {
                line: first_no,
                message: format!("expected mode directed|undirected, got {other:?}"),
            });
        }
    };

    let mut points: Vec<Option<Point>> = Vec::new();
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for (no, line) in lines {
        let no = no + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let tag = parts.next().expect("non-empty line has a token");
        let parse_f = |s: Option<&str>, what: &str| -> Result<f64> {
            s.and_then(|v| v.parse::<f64>().ok())
                .ok_or_else(|| RoadNetError::Parse { line: no, message: format!("bad {what}") })
        };
        let parse_u = |s: Option<&str>, what: &str| -> Result<u32> {
            s.and_then(|v| v.parse::<u32>().ok())
                .ok_or_else(|| RoadNetError::Parse { line: no, message: format!("bad {what}") })
        };
        match tag {
            "N" => {
                let id = parse_u(parts.next(), "node id")? as usize;
                let x = parse_f(parts.next(), "x coordinate")?;
                let y = parse_f(parts.next(), "y coordinate")?;
                if points.len() <= id {
                    points.resize(id + 1, None);
                }
                if points[id].is_some() {
                    return Err(RoadNetError::Parse {
                        line: no,
                        message: format!("duplicate node id {id}"),
                    });
                }
                points[id] = Some(Point::new(x, y));
            }
            "E" => {
                let a = parse_u(parts.next(), "edge endpoint")?;
                let b = parse_u(parts.next(), "edge endpoint")?;
                let w = parse_f(parts.next(), "edge weight")?;
                edges.push((a, b, w));
            }
            other => {
                return Err(RoadNetError::Parse {
                    line: no,
                    message: format!("unknown record tag '{other}'"),
                });
            }
        }
        if parts.next().is_some() {
            return Err(RoadNetError::Parse { line: no, message: "trailing tokens".into() });
        }
    }

    let mut b = if directed { GraphBuilder::directed() } else { GraphBuilder::new() };
    b.reserve(points.len(), edges.len());
    for (i, p) in points.iter().enumerate() {
        match p {
            Some(p) => {
                b.add_node(*p)?;
            }
            None => {
                return Err(RoadNetError::Parse {
                    line: 0,
                    message: format!("node ids not dense: id {i} missing"),
                });
            }
        }
    }
    for (a, bb, w) in edges {
        b.add_edge(NodeId(a), NodeId(bb), w)?;
    }
    b.build()
}

/// Write `g` to a file at `path` in TLN format.
pub fn save_tln(g: &RoadNetwork, path: &std::path::Path) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_tln(g, &mut f)?;
    f.flush()?;
    Ok(())
}

/// Read a TLN file from `path`.
pub fn load_tln(path: &std::path::Path) -> Result<RoadNetwork> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read_tln(&mut f)
}

// ---------------------------------------------------------------------------
// DIMACS shortest-path subset (.gr distance graph + .co coordinates)
// ---------------------------------------------------------------------------

/// Write the `.gr` (distance graph) half of a DIMACS pair.
///
/// Grammar emitted (1-based node ids, one arc per line):
///
/// ```text
/// c <comment>
/// p sp <nodes> <arcs>
/// a <from> <to> <weight>
/// ```
///
/// Undirected networks emit **both** arc directions, as published DIMACS
/// road graphs do; [`read_dimacs`] re-pairs them. Weights are written
/// `{:.17e}` so they reload bit-exactly (the challenge files use integer
/// deci-meters; this subset generalizes to the float weights the OPAQUE
/// cost model needs).
pub fn write_dimacs_gr<W: Write>(g: &RoadNetwork, w: &mut W) -> Result<()> {
    let arcs = if g.is_directed() { g.num_arcs() } else { 2 * g.num_edges() };
    writeln!(w, "c OPAQUE reproduction road network (DIMACS sp subset)")?;
    writeln!(w, "p sp {} {}", g.num_nodes(), arcs)?;
    for e in g.edges() {
        writeln!(w, "a {} {} {:.17e}", e.a.0 + 1, e.b.0 + 1, e.weight)?;
        if !g.is_directed() {
            writeln!(w, "a {} {} {:.17e}", e.b.0 + 1, e.a.0 + 1, e.weight)?;
        }
    }
    Ok(())
}

/// Write the `.co` (coordinates) half of a DIMACS pair:
///
/// ```text
/// c <comment>
/// p aux sp co <nodes>
/// v <id> <x> <y>
/// ```
///
/// Ids are 1-based to match the `.gr` file; coordinates round-trip
/// bit-exactly through `{:.17e}`.
pub fn write_dimacs_co<W: Write>(g: &RoadNetwork, w: &mut W) -> Result<()> {
    writeln!(w, "c OPAQUE reproduction road network coordinates")?;
    writeln!(w, "p aux sp co {}", g.num_nodes())?;
    for n in g.nodes() {
        let p = g.point(n);
        writeln!(w, "v {} {:.17e} {:.17e}", n.0 + 1, p.x, p.y)?;
    }
    Ok(())
}

/// Parse a DIMACS `.gr` + `.co` pair into a [`RoadNetwork`].
///
/// Accepted grammar (a strict subset of the challenge format):
///
/// * `.gr` — `c` comment lines and blanks anywhere; exactly one
///   `p sp <n> <m>` problem line before any arc; then `m` arc lines
///   `a <u> <v> <w>` with `1 ≤ u, v ≤ n` and a finite weight `w ≥ 0`.
/// * `.co` — `c`/blank lines; exactly one `p aux sp co <n>` problem line
///   whose `n` matches the `.gr` header; then one `v <id> <x> <y>` line
///   per node, each id exactly once.
///
/// Both streams are parsed line-by-line (no full-file buffering), so
/// million-node maps load in one pass. Every violation is reported as
/// [`RoadNetError::Parse`] with the 1-based line number of the offending
/// line and `line: 0` for whole-file defects (missing nodes, arc-count
/// mismatch).
///
/// **Direction recovery.** DIMACS graphs are arc lists. If every arc has a
/// bit-equal reverse partner the network is rebuilt *undirected* — each
/// pair collapses to one edge oriented as its first-seen arc, preserving
/// generator edge order across a write/read cycle. Any unmatched arc makes
/// the whole network directed, keeping every arc verbatim.
///
/// # Errors
/// [`RoadNetError::Parse`] on any grammar violation; I/O errors propagate.
pub fn read_dimacs<R1: BufRead, R2: BufRead>(gr: &mut R1, co: &mut R2) -> Result<RoadNetwork> {
    let fail = |line: usize, message: String| RoadNetError::Parse { line, message };

    // --- .gr pass: header then arcs -------------------------------------
    let mut header: Option<(usize, usize)> = None; // (n, m)
    let mut arcs: Vec<(u32, u32, f64)> = Vec::new();
    for (no, line) in gr.lines().enumerate() {
        let no = no + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let mut parts = t.split_whitespace();
        match parts.next() {
            Some("p") => {
                if header.is_some() {
                    return Err(fail(no, "duplicate problem line".into()));
                }
                if parts.next() != Some("sp") {
                    return Err(fail(no, "expected 'p sp <nodes> <arcs>'".into()));
                }
                let n = parse_count(parts.next(), no, "node count")?;
                let m = parse_count(parts.next(), no, "arc count")?;
                if n == 0 {
                    return Err(fail(no, "node count must be positive".into()));
                }
                header = Some((n, m));
                arcs.reserve(m);
            }
            Some("a") => {
                let (n, _) =
                    header.ok_or_else(|| fail(no, "arc before 'p sp' problem line".into()))?;
                let u = parse_count(parts.next(), no, "arc tail")?;
                let v = parse_count(parts.next(), no, "arc head")?;
                let w = parts
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(|| fail(no, "bad arc weight".into()))?;
                if u == 0 || u > n || v == 0 || v > n {
                    return Err(fail(no, format!("arc endpoint out of range 1..={n}")));
                }
                if !w.is_finite() || w < 0.0 {
                    return Err(fail(no, format!("arc weight {w} not finite and non-negative")));
                }
                arcs.push((u as u32 - 1, v as u32 - 1, w));
            }
            Some(other) => {
                return Err(fail(no, format!("unknown record tag '{other}' in .gr")));
            }
            None => unreachable!("non-empty line has a token"),
        }
        if parts.next().is_some() {
            return Err(fail(no, "trailing tokens".into()));
        }
    }
    let (n, m) = header.ok_or_else(|| fail(0, "missing 'p sp' problem line in .gr".into()))?;
    if arcs.len() != m {
        return Err(fail(0, format!("header promised {m} arcs, found {}", arcs.len())));
    }

    // --- .co pass: one coordinate per node -------------------------------
    let mut points: Vec<Option<Point>> = vec![None; n];
    let mut co_header = false;
    for (no, line) in co.lines().enumerate() {
        let no = no + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let mut parts = t.split_whitespace();
        match parts.next() {
            Some("p") => {
                if co_header {
                    return Err(fail(no, "duplicate problem line in .co".into()));
                }
                if (parts.next(), parts.next(), parts.next())
                    != (Some("aux"), Some("sp"), Some("co"))
                {
                    return Err(fail(no, "expected 'p aux sp co <nodes>'".into()));
                }
                let cn = parse_count(parts.next(), no, "node count")?;
                if cn != n {
                    return Err(fail(no, format!(".co has {cn} nodes but .gr has {n}")));
                }
                co_header = true;
            }
            Some("v") => {
                if !co_header {
                    return Err(fail(no, "vertex before 'p aux sp co' problem line".into()));
                }
                let id = parse_count(parts.next(), no, "vertex id")?;
                let x = parts.next().and_then(|s| s.parse::<f64>().ok());
                let y = parts.next().and_then(|s| s.parse::<f64>().ok());
                let (x, y) = match (x, y) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return Err(fail(no, "bad vertex coordinates".into())),
                };
                if id == 0 || id > n {
                    return Err(fail(no, format!("vertex id out of range 1..={n}")));
                }
                if points[id - 1].is_some() {
                    return Err(fail(no, format!("duplicate vertex id {id}")));
                }
                points[id - 1] = Some(Point::new(x, y));
            }
            Some(other) => {
                return Err(fail(no, format!("unknown record tag '{other}' in .co")));
            }
            None => unreachable!("non-empty line has a token"),
        }
        if parts.next().is_some() {
            return Err(fail(no, "trailing tokens".into()));
        }
    }
    if !co_header {
        return Err(fail(0, "missing 'p aux sp co' problem line in .co".into()));
    }
    if let Some(missing) = points.iter().position(Option::is_none) {
        return Err(fail(0, format!("no coordinates for node {}", missing + 1)));
    }

    // --- direction recovery ----------------------------------------------
    // Greedily pair each arc with the earliest unmatched bit-equal reverse.
    // All arcs paired ⇒ undirected (one edge per pair, oriented and ordered
    // by first occurrence); otherwise the graph is directed as written.
    let mut pending: std::collections::HashMap<(u32, u32, u64), Vec<usize>> =
        std::collections::HashMap::new();
    let mut matched = vec![false; arcs.len()];
    let mut undirected: Vec<(u32, u32, f64)> = Vec::with_capacity(arcs.len() / 2);
    for (i, &(u, v, w)) in arcs.iter().enumerate() {
        if let Some(slot) = pending.get_mut(&(v, u, w.to_bits())) {
            if let Some(j) = slot.pop() {
                matched[i] = true;
                matched[j] = true;
                let (fu, fv, fw) = arcs[j];
                undirected.push((fu, fv, fw));
                continue;
            }
        }
        pending.entry((u, v, w.to_bits())).or_default().push(i);
    }
    let all_paired = matched.iter().all(|&m| m);

    let mut b = if all_paired { GraphBuilder::new() } else { GraphBuilder::directed() };
    b.reserve(n, if all_paired { undirected.len() } else { arcs.len() });
    for p in points {
        b.add_node(p.expect("density checked above"))?;
    }
    let edge_list = if all_paired { &undirected } else { &arcs };
    for &(u, v, w) in edge_list {
        b.add_edge(NodeId(u), NodeId(v), w)?;
    }
    b.build()
}

/// Parse a positive-or-zero count token, mapping failure to a line error.
fn parse_count(s: Option<&str>, line: usize, what: &str) -> Result<usize> {
    s.and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| RoadNetError::Parse { line, message: format!("bad {what}") })
}

/// Write `g` as a DIMACS pair at `gr_path` / `co_path`.
pub fn save_dimacs(
    g: &RoadNetwork,
    gr_path: &std::path::Path,
    co_path: &std::path::Path,
) -> Result<()> {
    let mut gr = std::io::BufWriter::new(std::fs::File::create(gr_path)?);
    write_dimacs_gr(g, &mut gr)?;
    gr.flush()?;
    let mut co = std::io::BufWriter::new(std::fs::File::create(co_path)?);
    write_dimacs_co(g, &mut co)?;
    co.flush()?;
    Ok(())
}

/// Load a DIMACS pair from `gr_path` / `co_path`.
pub fn load_dimacs(gr_path: &std::path::Path, co_path: &std::path::Path) -> Result<RoadNetwork> {
    let mut gr = std::io::BufReader::new(std::fs::File::open(gr_path)?);
    let mut co = std::io::BufReader::new(std::fs::File::open(co_path)?);
    read_dimacs(&mut gr, &mut co)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GridConfig, grid_network};

    fn round_trip(g: &RoadNetwork) -> RoadNetwork {
        let mut buf = Vec::new();
        write_tln(g, &mut buf).unwrap();
        read_tln(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn round_trip_preserves_structure_exactly() {
        let g = grid_network(&GridConfig { width: 6, height: 5, seed: 11, ..Default::default() })
            .unwrap();
        let h = round_trip(&g);
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        for n in g.nodes() {
            assert_eq!(g.point(n), h.point(n));
        }
        assert_eq!(g.edges(), h.edges());
        assert_eq!(g.is_directed(), h.is_directed());
    }

    #[test]
    fn directed_flag_round_trips() {
        let mut b = GraphBuilder::directed();
        let a = b.add_node(Point::new(0.0, 0.0)).unwrap();
        let c = b.add_node(Point::new(1.0, 1.0)).unwrap();
        b.add_edge(a, c, 2.0).unwrap();
        let g = b.build().unwrap();
        let h = round_trip(&g);
        assert!(h.is_directed());
        assert_eq!(h.num_arcs(), 1);
    }

    #[test]
    fn comments_blanks_and_order_are_tolerated() {
        let doc = "\n# preamble\nTLN 1 undirected\n\nE 0 1 2.5\nN 1 1.0 0.0\n# interleaved\nN 0 0.0 0.0\n";
        let g = read_tln(&mut std::io::Cursor::new(doc)).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges()[0].weight, 2.5);
    }

    #[test]
    fn rejects_bad_header() {
        for doc in ["XYZ 1 undirected\n", "TLN 2 undirected\n", "TLN 1 sideways\n", ""] {
            let err = read_tln(&mut std::io::Cursor::new(doc)).unwrap_err();
            assert!(matches!(err, RoadNetError::Parse { .. }), "doc {doc:?} gave {err}");
        }
    }

    #[test]
    fn rejects_malformed_records() {
        let cases = [
            "TLN 1 undirected\nN 0 0.0\n",                     // missing y
            "TLN 1 undirected\nN 0 0.0 0.0 extra\n",           // trailing token
            "TLN 1 undirected\nQ 0\n",                         // unknown tag
            "TLN 1 undirected\nN 0 a 0.0\n",                   // bad float
            "TLN 1 undirected\nN 0 0 0\nN 0 1 1\n",            // duplicate id
            "TLN 1 undirected\nN 1 0 0\n",                     // non-dense ids
            "TLN 1 undirected\nN 0 0 0\nN 1 1 1\nE 0 5 1.0\n", // edge to unknown node
        ];
        for doc in cases {
            let err = read_tln(&mut std::io::Cursor::new(doc)).unwrap_err();
            assert!(
                matches!(err, RoadNetError::Parse { .. } | RoadNetError::NodeOutOfRange { .. }),
                "doc {doc:?} gave {err}"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("roadnet_tln_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.tln");
        let g = grid_network(&GridConfig { width: 4, height: 4, ..Default::default() }).unwrap();
        save_tln(&g, &path).unwrap();
        let h = load_tln(&path).unwrap();
        assert_eq!(g.edges(), h.edges());
        std::fs::remove_file(&path).ok();
    }

    fn dimacs_round_trip(g: &RoadNetwork) -> (RoadNetwork, Vec<u8>, Vec<u8>) {
        let mut gr = Vec::new();
        let mut co = Vec::new();
        write_dimacs_gr(g, &mut gr).unwrap();
        write_dimacs_co(g, &mut co).unwrap();
        let h =
            read_dimacs(&mut std::io::Cursor::new(&gr), &mut std::io::Cursor::new(&co)).unwrap();
        (h, gr, co)
    }

    #[test]
    fn dimacs_round_trip_reproduces_the_network_byte_exactly() {
        let g = grid_network(&GridConfig { width: 7, height: 6, seed: 13, ..Default::default() })
            .unwrap();
        let (h, gr, co) = dimacs_round_trip(&g);
        assert!(!h.is_directed());
        assert_eq!(g.num_nodes(), h.num_nodes());
        for n in g.nodes() {
            assert_eq!(g.point(n), h.point(n));
        }
        // Edge list identical including order and bit-exact weights.
        assert_eq!(g.edges(), h.edges());
        // And a second write of the reloaded network is byte-identical,
        // so archived fixtures are stable.
        let (_, gr2, co2) = dimacs_round_trip(&h);
        assert_eq!(gr, gr2);
        assert_eq!(co, co2);
    }

    #[test]
    fn dimacs_unpaired_arcs_recover_a_directed_graph() {
        let gr = "c one-way pair plus a lone arc\np sp 3 3\na 1 2 5.0\na 2 1 5.0\na 2 3 1.5\n";
        let co = "p aux sp co 3\nv 1 0.0 0.0\nv 2 1.0 0.0\nv 3 2.0 0.0\n";
        let g = read_dimacs(&mut std::io::Cursor::new(gr), &mut std::io::Cursor::new(co)).unwrap();
        assert!(g.is_directed(), "lone arc 2→3 must force a directed rebuild");
        assert_eq!(g.num_arcs(), 3);
    }

    #[test]
    fn dimacs_reverse_weights_must_match_bit_for_bit() {
        let gr = "p sp 2 2\na 1 2 5.0\na 2 1 5.000000000000001\n";
        let co = "p aux sp co 2\nv 1 0.0 0.0\nv 2 1.0 0.0\n";
        let g = read_dimacs(&mut std::io::Cursor::new(gr), &mut std::io::Cursor::new(co)).unwrap();
        assert!(g.is_directed(), "ulp-different reverse weights are two one-way arcs");
    }

    #[test]
    fn dimacs_rejects_malformed_inputs_with_line_numbers() {
        let co_ok = "p aux sp co 2\nv 1 0.0 0.0\nv 2 1.0 0.0\n";
        let gr_ok = "p sp 2 2\na 1 2 1.0\na 2 1 1.0\n";
        let bad_gr = [
            ("a 1 2 1.0\n", "arc before 'p sp'"),
            ("p sp 2 2\np sp 2 2\n", "duplicate problem line"),
            ("p xx 2 2\n", "expected 'p sp"),
            ("p sp 0 0\n", "positive"),
            ("p sp 2 2\na 1 3 1.0\na 2 1 1.0\n", "out of range"),
            ("p sp 2 2\na 1 2 nope\n", "bad arc weight"),
            ("p sp 2 2\na 1 2 -1.0\na 2 1 1.0\n", "non-negative"),
            ("p sp 2 2\na 1 2 1.0\n", "promised 2 arcs"),
            ("p sp 2 2\na 1 2 1.0 extra\n", "trailing"),
            ("p sp 2 2\nz 1 2\n", "unknown record tag"),
        ];
        for (gr, want) in bad_gr {
            let err = read_dimacs(&mut std::io::Cursor::new(gr), &mut std::io::Cursor::new(co_ok))
                .unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(want), "gr {gr:?} gave {msg:?}, wanted {want:?}");
        }
        let bad_co = [
            ("v 1 0.0 0.0\n", "vertex before"),
            ("p aux sp co 3\n", ".co has 3 nodes but .gr has 2"),
            ("p aux sp co 2\nv 1 0.0 0.0\n", "no coordinates for node 2"),
            ("p aux sp co 2\nv 1 0.0 0.0\nv 1 1.0 0.0\n", "duplicate vertex id"),
            ("p aux sp co 2\nv 3 0.0 0.0\n", "out of range"),
            ("p aux sp co 2\nv 1 0.0 zz\n", "bad vertex coordinates"),
        ];
        for (co, want) in bad_co {
            let err = read_dimacs(&mut std::io::Cursor::new(gr_ok), &mut std::io::Cursor::new(co))
                .unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(want), "co {co:?} gave {msg:?}, wanted {want:?}");
        }
    }

    #[test]
    fn dimacs_file_round_trip() {
        let dir = std::env::temp_dir().join("roadnet_dimacs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let (gr, co) = (dir.join("net.gr"), dir.join("net.co"));
        let g = grid_network(&GridConfig { width: 5, height: 5, seed: 2, ..Default::default() })
            .unwrap();
        save_dimacs(&g, &gr, &co).unwrap();
        let h = load_dimacs(&gr, &co).unwrap();
        assert_eq!(g.edges(), h.edges());
        std::fs::remove_file(&gr).ok();
        std::fs::remove_file(&co).ok();
    }
}
