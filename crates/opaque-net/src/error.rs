//! Typed failures of the wire layer.
//!
//! The frame codec and the connection state machine never panic on peer
//! input: every malformed byte sequence maps to a [`NetError`], the
//! offending connection is drained and closed, and the rest of the server
//! keeps running. The variants mirror the decode pipeline — length prefix
//! first, version byte second, payload last — so tests can pin exactly
//! where a malformed input was refused.

use std::fmt;

/// A failure in the framed wire protocol or the sockets underneath it.
#[derive(Debug)]
pub enum NetError {
    /// An outgoing payload was too large to describe in the u32 length
    /// prefix at all; encoding it would have emitted a corrupt frame.
    PayloadTooLarge {
        /// The unencodable payload's length in bytes.
        len: usize,
    },
    /// The length prefix announced a frame beyond the configured cap; the
    /// payload was never allocated or read.
    FrameTooLarge {
        /// Announced payload length.
        len: u32,
        /// The decoder's configured cap.
        max: u32,
    },
    /// The version byte is not [`crate::frame::PROTOCOL_VERSION`].
    BadVersion {
        /// The byte received.
        got: u8,
    },
    /// The peer closed the stream in the middle of a frame.
    TruncatedFrame {
        /// Bytes of the announced frame still missing at close.
        missing: usize,
    },
    /// The payload was complete but not a decodable message.
    Malformed {
        /// What failed to decode.
        reason: String,
    },
    /// A socket-level failure.
    Io(std::io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PayloadTooLarge { len } => {
                write!(
                    f,
                    "payload of {len} bytes cannot be framed (u32 length prefix caps payloads at {} bytes)",
                    u32::MAX
                )
            }
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this peer speaks {})",
                    crate::frame::PROTOCOL_VERSION
                )
            }
            NetError::TruncatedFrame { missing } => {
                write!(f, "stream closed mid-frame ({missing} bytes missing)")
            }
            NetError::Malformed { reason } => write!(f, "malformed payload: {reason}"),
            NetError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Convenience alias for wire-layer results.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_parameters() {
        let e = NetError::PayloadTooLarge { len: 5_000_000_000 };
        assert!(e.to_string().contains("5000000000"), "{e}");
        let e = NetError::FrameTooLarge { len: 2_000_000, max: 1_048_576 };
        assert!(e.to_string().contains("2000000"), "{e}");
        let e = NetError::BadVersion { got: 9 };
        assert!(e.to_string().contains('9'), "{e}");
        let e = NetError::TruncatedFrame { missing: 17 };
        assert!(e.to_string().contains("17"), "{e}");
        let e = NetError::Malformed { reason: "not json".to_string() };
        assert!(e.to_string().contains("not json"), "{e}");
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset");
        let e: NetError = io.into();
        assert!(matches!(e, NetError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
