//! Search-cost instrumentation.
//!
//! The paper's Lemma 1 bounds the processing cost of an obfuscated path
//! query by the *area* covered by the Dijkstra spanning trees. The concrete
//! proxies we record for that area are: nodes settled (computation) and —
//! when searching through a [`roadnet::PagedGraph`] — page faults (I/O,
//! reported separately by the storage layer). Every algorithm in this crate
//! fills in a [`SearchStats`].

/// Counters describing one (or an aggregate of several) search runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Nodes permanently labelled (popped with their final distance).
    pub settled: u64,
    /// Arc relaxations attempted.
    pub relaxed: u64,
    /// Heap insertions (lazy-deletion Dijkstra pushes duplicates).
    pub heap_pushes: u64,
    /// Heap removals, including stale entries.
    pub heap_pops: u64,
    /// Number of individual search runs aggregated into this value.
    pub runs: u64,
}

impl SearchStats {
    /// A zeroed counter describing a single run.
    pub fn one_run() -> Self {
        SearchStats { runs: 1, ..Default::default() }
    }

    /// Accumulate another run's counters into this aggregate.
    pub fn merge(&mut self, other: SearchStats) {
        self.settled += other.settled;
        self.relaxed += other.relaxed;
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.runs += other.runs;
    }

    /// Mean settled nodes per run (0 when empty).
    pub fn settled_per_run(&self) -> f64 {
        if self.runs == 0 { 0.0 } else { self.settled as f64 / self.runs as f64 }
    }
}

impl std::ops::Add for SearchStats {
    type Output = SearchStats;
    fn add(mut self, rhs: SearchStats) -> SearchStats {
        self.merge(rhs);
        self
    }
}

impl std::iter::Sum for SearchStats {
    fn sum<I: Iterator<Item = SearchStats>>(iter: I) -> Self {
        let mut acc = SearchStats::default();
        for s in iter {
            acc.merge(s);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_add_accumulate() {
        let a = SearchStats { settled: 10, relaxed: 30, heap_pushes: 20, heap_pops: 15, runs: 1 };
        let b = SearchStats { settled: 5, relaxed: 12, heap_pushes: 9, heap_pops: 9, runs: 1 };
        let c = a + b;
        assert_eq!(c.settled, 15);
        assert_eq!(c.relaxed, 42);
        assert_eq!(c.runs, 2);
        assert!((c.settled_per_run() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            SearchStats { settled: 1, runs: 1, ..Default::default() },
            SearchStats { settled: 2, runs: 1, ..Default::default() },
            SearchStats { settled: 3, runs: 1, ..Default::default() },
        ];
        let total: SearchStats = parts.into_iter().sum();
        assert_eq!(total.settled, 6);
        assert_eq!(total.runs, 3);
    }

    #[test]
    fn settled_per_run_handles_zero() {
        assert_eq!(SearchStats::default().settled_per_run(), 0.0);
    }
}
