//! E14 — worker-pool execution: server throughput scaling (extends §V).
//!
//! The paper's server cost model (§V) prices every obfuscated query as
//! MSMD search work; queries are mutually independent, so the fleet-wide
//! cost is embarrassingly parallel across shards. This experiment drives
//! identical batch streams through one `OpaqueService` per
//! [`ExecutionPolicy`] — `Sequential` and `WorkerPool{2,4}` over a
//! four-shard fleet on the geometric map — and reports wall time,
//! pair throughput, and speedup.
//!
//! Two claims, checked on every run:
//!
//! * **determinism** — every batch's `BatchReport` is byte-identical
//!   across execution policies (the equivalence harness's guarantee,
//!   re-proven here at bench scale);
//! * **scaling** — with ≥ 4 hardware threads at bench scale, 4 workers
//!   deliver ≥ 1.5× the sequential throughput. The scaling assertion is
//!   necessarily gated on `std::thread::available_parallelism()`: on a
//!   single-core host the pool degrades to sequential-with-overhead and
//!   no amount of software can manufacture parallel speedup.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{ExecutionPolicy, ObfuscationMode, ServiceBuilder};
use roadnet::generators::NetworkClass;
use std::time::Instant;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

const SHARDS: usize = 4;

/// Per-policy measurement: total wall time and the serialized report of
/// every processed batch (the determinism oracle).
struct Measured {
    elapsed_secs: f64,
    total_pairs: u64,
    trees_grown: u64,
    report_json: Vec<String>,
}

fn drive(
    g: &roadnet::RoadNetwork,
    batches: &[Vec<opaque::ClientRequest>],
    execution: ExecutionPolicy,
) -> Measured {
    let mut svc = ServiceBuilder::new()
        .map(g.clone())
        .seed(0xE14)
        .shards(SHARDS)
        .sharing_policy(pathsearch::SharingPolicy::PerSource)
        // Independent mode: one obfuscated query per request keeps the
        // injector queue full for every batch.
        .obfuscation_mode(ObfuscationMode::Independent)
        .execution_policy(execution)
        .build()
        .expect("valid configuration");

    let mut measured = Measured {
        elapsed_secs: 0.0,
        total_pairs: 0,
        trees_grown: 0,
        report_json: Vec::with_capacity(batches.len()),
    };
    for batch in batches {
        let t0 = Instant::now();
        let response = svc.process_batch(batch).expect("batch succeeds");
        measured.elapsed_secs += t0.elapsed().as_secs_f64();
        measured.total_pairs += response.report.total_pairs;
        measured.trees_grown += response.report.server_trees_grown;
        measured
            .report_json
            .push(serde_json::to_string(&response.report).expect("report serializes"));
    }
    measured
}

/// Run E14.
pub fn run(scale: &Scale) -> ExperimentTable {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut t = ExperimentTable::new(
        "E14",
        "worker-pool execution: throughput scaling on the shard fleet",
        "parallel deployment of the server cost model (§V) with proven determinism",
        &["execution", "threads", "batches", "pairs", "ms/batch", "pairs/s", "speedup"],
    );
    let (g, idx) = network_with_index(NetworkClass::Geometric, scale);
    t.note(format!(
        "geometric map, {} nodes, {SHARDS} shards, {hw} hardware threads",
        g.num_nodes()
    ));

    // A fixed stream of batches, reused verbatim for every policy, so
    // identically-seeded services see identical work.
    let reps = if scale.network_nodes >= 2_000 { 6 } else { 3 };
    let batches: Vec<Vec<opaque::ClientRequest>> = (0..reps)
        .map(|rep| {
            generate_requests(
                &g,
                &idx,
                &WorkloadConfig {
                    num_requests: scale.queries.max(2 * SHARDS),
                    queries: QueryDistribution::Uniform,
                    protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 4 },
                    seed: 0xE140 + rep as u64,
                },
            )
        })
        .collect();

    let baseline = drive(&g, &batches, ExecutionPolicy::Sequential);
    let speedup_at = |threads: usize, m: &Measured| {
        assert_eq!(
            m.report_json, baseline.report_json,
            "{threads}-thread pool: reports must be byte-identical to sequential"
        );
        baseline.elapsed_secs / m.elapsed_secs.max(f64::MIN_POSITIVE)
    };

    let row =
        |t: &mut ExperimentTable, name: String, threads: usize, m: &Measured, speedup: f64| {
            t.row(vec![
                name,
                threads.to_string(),
                m.report_json.len().to_string(),
                m.total_pairs.to_string(),
                f3(m.elapsed_secs * 1e3 / m.report_json.len() as f64),
                f3(m.total_pairs as f64 / m.elapsed_secs.max(f64::MIN_POSITIVE)),
                f3(speedup),
            ]);
        };
    row(&mut t, "sequential".to_string(), 1, &baseline, 1.0);

    let mut speedup4 = None;
    for threads in [2usize, 4] {
        let m = drive(&g, &batches, ExecutionPolicy::WorkerPool { threads });
        let s = speedup_at(threads, &m);
        if threads == 4 {
            speedup4 = Some(s);
        }
        row(&mut t, format!("pool({threads})"), threads, &m, s);
    }

    // The scaling claim, where the hardware can express it.
    let bench_scale = scale.network_nodes >= 2_000;
    let speedup4 = speedup4.expect("4-thread row measured");
    if hw >= 4 && bench_scale {
        assert!(
            speedup4 >= 1.5,
            "4 workers on {hw} hardware threads must reach >= 1.5x sequential \
             throughput at bench scale, got {speedup4:.2}x"
        );
        t.note(format!("scaling claim holds: {speedup4:.2}x >= 1.5x at 4 threads"));
    } else {
        t.note(format!(
            "scaling assertion skipped ({} hardware threads, bench_scale={bench_scale}); \
             determinism still verified on every batch",
            hw
        ));
    }
    t.metric("trees_grown", baseline.trees_grown as f64);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_quick_scale_with_byte_identical_reports() {
        // run() itself asserts report equality for every batch and
        // policy; the speedup claim is hardware-gated inside.
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 3, "sequential + pool(2) + pool(4)");
        for row in &t.rows {
            let pairs: u64 = row[3].parse().unwrap();
            assert!(pairs > 0, "every policy evaluated real pairs");
        }
        // All policies did exactly the same work.
        assert_eq!(t.rows[0][3], t.rows[1][3]);
        assert_eq!(t.rows[0][3], t.rows[2][3]);
    }
}
