//! Criterion timings for E9: search over paged storage — CCAM clustering
//! vs random placement under a starved buffer.

use criterion::{Criterion, criterion_group, criterion_main};
use pathsearch::{Goal, Searcher};
use roadnet::generators::NetworkClass;
use roadnet::{NodeId, PageLayout, PagePlacement, PagedGraph};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g = NetworkClass::Grid.generate(2_500, 0xBE).expect("valid network");
    let n = g.num_nodes() as u32;
    let (s, t) = (NodeId(1), NodeId(n - 2));

    let mut group = c.benchmark_group("e9_storage");
    group.bench_function("in-memory", |b| {
        let mut searcher = Searcher::new();
        b.iter(|| {
            let st = searcher.run(&g, black_box(s), &Goal::Single(t));
            black_box(st.settled)
        })
    });
    for placement in [PagePlacement::Connectivity, PagePlacement::Random { seed: 1 }] {
        let layout = PageLayout::build(&g, placement, PageLayout::DEFAULT_SLOTS_PER_PAGE);
        let buffer = (layout.num_pages() / 8).max(2);
        let paged = PagedGraph::new(&g, layout, buffer);
        group.bench_function(format!("paged/{}", placement.name()), |b| {
            let mut searcher = Searcher::new();
            b.iter(|| {
                let st = searcher.run(&paged, black_box(s), &Goal::Single(t));
                black_box((st.settled, paged.io_stats().faults))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
