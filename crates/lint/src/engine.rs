//! The engine: walk the workspace, scope rules by the baseline, apply
//! allow markers, aggregate a [`LintReport`].
//!
//! Determinism discipline applies to the linter itself — it is run in CI
//! and its JSON output is diffed by humans, so everything here iterates
//! in sorted path order and the report is a pure function of the tree.

use crate::config::Config;
use crate::rules::docrefs::{self, DocIndex};
use crate::rules::unsafety::UnsafeSite;
use crate::rules::{determinism, panic_path, unsafety};
use crate::source::SourceFile;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A confirmed violation: rule, site, and what to do.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// Repo-relative file, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id.
    pub rule: String,
    /// What happened and how to fix it.
    pub message: String,
}

/// A site where an allow marker suppressed a would-be violation. Kept in
/// the report so the exception surface stays as visible as the rule
/// surface.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AllowedSite {
    /// Repo-relative file.
    pub file: String,
    /// Covered code line.
    pub line: u32,
    /// The rule the marker waived.
    pub rule: String,
}

/// Everything one lint run learned about the workspace.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct LintReport {
    /// Unsuppressed violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Every `unsafe` site in scope, documented or not.
    pub census: Vec<UnsafeSite>,
    /// Marker-suppressed sites, sorted like `violations`.
    pub allowed: Vec<AllowedSite>,
    /// Rust files scanned.
    pub files_scanned: u32,
    /// Markdown docs checked for cross-references.
    pub docs_checked: u32,
}

impl LintReport {
    /// Clean means zero violations (allowed sites are fine — that is
    /// what markers are for).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Rules an allow marker may waive. `safety-comment` is deliberately
/// absent — the fix for a missing SAFETY comment is the comment — and
/// `doc-ref` lives in markdown, where there are no markers.
const ALLOWABLE_RULES: &[&str] = &["hash-iter", "wall-clock", "panic-path"];

/// All rule ids, for marker validation.
const ALL_RULES: &[&str] =
    &["hash-iter", "wall-clock", "safety-comment", "panic-path", "doc-ref", "allow-marker"];

/// Run every rule over the tree at `root` per the baseline `cfg`.
pub fn run(root: &Path, cfg: &Config) -> io::Result<LintReport> {
    let files = walk(root)?;
    let mut report = LintReport::default();
    let mut idx = DocIndex { files: files.iter().cloned().collect(), idents: BTreeSet::new() };

    // Pass 1: lex every Rust file once; run the source rules. Vendored
    // stand-ins are in the file index (docs reference `vendor/`) but are
    // not held to workspace rules — they are placeholders for crates.io
    // code this repo does not own.
    for rel in files.iter().filter(|f| f.ends_with(".rs") && !f.starts_with("vendor/")) {
        let src = fs::read_to_string(root.join(rel))?;
        let f = SourceFile::parse(rel, &src);
        report.files_scanned += 1;
        for ci in 0..f.code_len() {
            let t = f.ct(ci);
            if t.kind == crate::lexer::TokKind::Ident {
                idx.idents.insert(t.text.clone());
            }
        }

        let mut raw = Vec::new();
        if cfg.determinism_scopes.iter().any(|s| in_scope(rel, s)) {
            raw.extend(determinism::check(&f));
        }
        if cfg.panic_path_files.iter().any(|p| p == rel) {
            raw.extend(panic_path::check(&f));
        }
        if cfg.unsafe_scopes.iter().any(|s| in_scope(rel, s)) {
            let (v, census) = unsafety::check(&f);
            raw.extend(v);
            report.census.extend(census);
        }

        // Marker validation: unknown rule ids and missing justifications
        // are violations in their own right.
        for m in &f.markers {
            for r in &m.rules {
                if !ALL_RULES.contains(&r.as_str()) {
                    raw.push(crate::rules::RawViolation::new(
                        "allow-marker",
                        m.line,
                        format!("allow marker names unknown rule `{r}`"),
                    ));
                } else if !ALLOWABLE_RULES.contains(&r.as_str()) {
                    raw.push(crate::rules::RawViolation::new(
                        "allow-marker",
                        m.line,
                        format!("rule `{r}` cannot be waived by an allow marker"),
                    ));
                }
            }
            if !m.justified {
                raw.push(crate::rules::RawViolation::new(
                    "allow-marker",
                    m.line,
                    "allow marker has no justification: say why the exception is sound",
                ));
            }
        }

        // Marker application: suppress covered sites, record them.
        for v in raw {
            if ALLOWABLE_RULES.contains(&v.rule) && f.allowed(v.line, v.rule) {
                report.allowed.push(AllowedSite {
                    file: rel.clone(),
                    line: v.line,
                    rule: v.rule.to_string(),
                });
            } else {
                report.violations.push(Violation {
                    file: rel.clone(),
                    line: v.line,
                    rule: v.rule.to_string(),
                    message: v.message,
                });
            }
        }
    }

    // Pass 2: doc cross-references, resolved against the full tree.
    for rel in &cfg.doc_files {
        let path = root.join(rel);
        if !path.is_file() {
            report.violations.push(Violation {
                file: rel.clone(),
                line: 0,
                rule: "doc-ref".to_string(),
                message: format!("baseline lists doc `{rel}`, which does not exist"),
            });
            continue;
        }
        report.docs_checked += 1;
        let text = fs::read_to_string(&path)?;
        for v in docrefs::check(&text, &idx) {
            report.violations.push(Violation {
                file: rel.clone(),
                line: v.line,
                rule: v.rule.to_string(),
                message: v.message,
            });
        }
    }

    report.violations.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    report.allowed.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report.census.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Is `rel` under the path-prefix `scope`?
fn in_scope(rel: &str, scope: &str) -> bool {
    rel == scope || rel.starts_with(&format!("{}/", scope.trim_end_matches('/')))
}

/// Directory names never descended into. `vendor` stays in the walk so
/// doc references to it resolve; the scan loop excludes it instead.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// All files under `root`, repo-relative with forward slashes, sorted.
fn walk(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') || name == ".github" {
                    stack.push(path);
                }
            } else if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_scope_is_prefix_with_separator_boundary() {
        assert!(in_scope("crates/opaque/src/lib.rs", "crates/opaque/src"));
        assert!(!in_scope("crates/opaque-net/src/lib.rs", "crates/opaque"));
        assert!(in_scope("crates/opaque/src", "crates/opaque/src"));
    }
}
