//! Integration tests for the service-layer gateway API: builder
//! validation, typed admission (`SubmitOutcome` under an
//! `AdmissionPolicy`), priority lanes, cancellation, deadline shedding,
//! the per-client event stream, and sharded-backend equivalence.

use opaque::{
    AdmissionPolicy, BatchPolicy, ClientId, ClientOutcome, ClientRequest, ClusteringConfig,
    DirectionsServer, FakeSelection, ObfuscationMode, OpaqueError, PathQuery, Priority,
    ProtectionSettings, RejectReason, ServiceBuilder, ServiceConfig, ServiceEvent, ShardedBackend,
    SubmitOutcome,
};
use pathsearch::SharingPolicy;
use roadnet::generators::{GridConfig, grid_network};
use roadnet::{NodeId, SpatialIndex};
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

fn map() -> roadnet::RoadNetwork {
    grid_network(&GridConfig { width: 18, height: 18, seed: 13, ..Default::default() })
        .expect("valid network")
}

fn workload(n: usize, seed: u64) -> Vec<ClientRequest> {
    let g = map();
    let idx = SpatialIndex::build(&g);
    generate_requests(
        &g,
        &idx,
        &WorkloadConfig {
            num_requests: n,
            queries: QueryDistribution::Uniform,
            protection: ProtectionDistribution::UniformRange { lo: 2, hi: 5 },
            seed,
        },
    )
}

fn request(i: u32) -> ClientRequest {
    ClientRequest::new(
        ClientId(i),
        PathQuery::new(NodeId(i * 5 % 324), NodeId(323 - i * 7 % 324)),
        ProtectionSettings::new(3, 3).unwrap(),
    )
}

#[test]
fn builder_validation_errors_are_typed_and_specific() {
    // No map.
    assert!(matches!(
        ServiceBuilder::new().build(),
        Err(OpaqueError::InvalidConfig { ref reason }) if reason.contains("map")
    ));
    // Zero shards.
    assert!(matches!(
        ServiceBuilder::new().map(map()).shards(0).build(),
        Err(OpaqueError::InvalidConfig { ref reason }) if reason.contains("shards")
    ));
    // Unsatisfiable batch policy.
    assert!(matches!(
        ServiceBuilder::new()
            .map(map())
            .batch_policy(BatchPolicy { max_batch: 0, max_delay: 1.0 })
            .build(),
        Err(OpaqueError::InvalidConfig { ref reason }) if reason.contains("max_batch")
    ));
    // Unsatisfiable admission policy.
    assert!(matches!(
        ServiceBuilder::new()
            .map(map())
            .admission_policy(AdmissionPolicy { queue_depth: 0, deadline: None })
            .build(),
        Err(OpaqueError::InvalidConfig { ref reason }) if reason.contains("queue_depth")
    ));
    // Weight/map mismatch.
    assert!(matches!(
        ServiceBuilder::new().map(map()).weights(vec![0.5; 7]).build(),
        Err(OpaqueError::InvalidConfig { ref reason }) if reason.contains("weights")
    ));
    // A valid config builds, and from_config round-trips the knobs.
    let config = ServiceConfig { shards: 2, seed: 9, ..Default::default() };
    let svc = ServiceBuilder::from_config(config).map(map()).build().expect("valid");
    assert_eq!(svc.backend().num_shards(), 2);
}

#[test]
fn batcher_flushes_on_size_then_deadline() {
    let mut svc = ServiceBuilder::new()
        .map(map())
        .batch_policy(BatchPolicy { max_batch: 3, max_delay: 4.0 })
        .obfuscation_mode(ObfuscationMode::SharedGlobal)
        .build()
        .expect("valid");

    // Size trigger: the third submission makes the batch eligible.
    svc.submit(request(0), 0.0).ticket().unwrap();
    svc.submit(request(1), 0.5).ticket().unwrap();
    assert!(svc.tick(1.0).unwrap().is_empty(), "2 < max_batch and deadline not reached");
    svc.submit(request(2), 1.0).ticket().unwrap();
    let events = svc.tick(1.0).unwrap();
    assert_eq!(events.len(), 4, "three deliveries + the report: {events:?}");
    assert!(
        events[..3].iter().all(|e| matches!(e, ServiceEvent::ResponseReady { .. })),
        "{events:?}"
    );
    assert!(matches!(events[3], ServiceEvent::BatchFlushed(_)));
    assert_eq!(svc.pending(), 0);

    // Deadline trigger: one request, flushed only after max_delay.
    svc.submit(request(3), 10.0).ticket().unwrap();
    assert!(svc.tick(13.9).unwrap().is_empty(), "3.9s < 4s deadline");
    let events = svc.tick(14.0).unwrap();
    assert_eq!(events.len(), 2, "{events:?}");

    // A duplicate client within one pending window defers; a forced
    // flush drains the partial batch and the deferral needs one more.
    svc.submit(request(4), 20.0).ticket().unwrap();
    assert!(matches!(svc.submit(request(4), 20.1), SubmitOutcome::Deferred(_)));
    let events = svc.flush(21.0).unwrap();
    assert_eq!(events.len(), 2, "first window: one delivery + report: {events:?}");
    let events = svc.flush(22.0).unwrap();
    assert_eq!(events.len(), 2, "deferred window: one delivery + report: {events:?}");
    assert_eq!(svc.pending(), 0);
}

#[test]
fn duplicate_submissions_defer_instead_of_erroring() {
    // Regression pin for the gateway redesign: the submit path can no
    // longer fail with OpaqueError::DuplicateClient — both requests from
    // one client are served, one window apart, with distinct tickets and
    // both answered by name.
    let mut svc = ServiceBuilder::new().map(map()).verify_results(true).build().expect("valid");
    let first = ClientRequest::new(
        ClientId(9),
        PathQuery::new(NodeId(0), NodeId(323)),
        ProtectionSettings::new(2, 2).unwrap(),
    );
    let second = ClientRequest::new(
        ClientId(9),
        PathQuery::new(NodeId(17), NodeId(300)),
        ProtectionSettings::new(2, 2).unwrap(),
    );
    let t0 = match svc.submit(first, 0.0) {
        SubmitOutcome::Accepted(t) => t,
        other => panic!("fresh client must be accepted, got {other:?}"),
    };
    let t1 = match svc.submit(second, 0.1) {
        SubmitOutcome::Deferred(t) => t,
        other => panic!("duplicate client must defer, got {other:?}"),
    };
    assert_ne!(t0, t1);

    let mut delivered = Vec::new();
    let mut guard = 0;
    while svc.pending() > 0 {
        for event in svc.flush(1.0 + guard as f64).unwrap() {
            if let ServiceEvent::ResponseReady { ticket, result, .. } = event {
                delivered.push((ticket, result.path.source(), result.path.destination()));
            }
        }
        guard += 1;
        assert!(guard < 5, "deferred requests must drain in bounded windows");
    }
    assert_eq!(
        delivered,
        vec![(t0, NodeId(0), NodeId(323)), (t1, NodeId(17), NodeId(300))],
        "each submission is answered with its own query's path"
    );
}

#[test]
fn queue_depth_refuses_submissions_with_backpressure() {
    let mut svc = ServiceBuilder::new()
        .map(map())
        .batch_policy(BatchPolicy { max_batch: 100, max_delay: 100.0 })
        .admission_policy(AdmissionPolicy { queue_depth: 3, deadline: None })
        .build()
        .expect("valid");
    for i in 0..3 {
        assert!(svc.submit(request(i), 0.0).is_accepted());
    }
    match svc.submit(request(3), 0.1) {
        SubmitOutcome::Rejected(RejectReason::QueueFull { depth: 3 }) => {}
        other => panic!("expected backpressure, got {other:?}"),
    }
    // Refused submissions get no ticket and no event; draining frees
    // capacity again.
    let events = svc.flush(1.0).unwrap();
    assert_eq!(events.len(), 4, "three queued deliveries + report: {events:?}");
    assert!(svc.submit(request(3), 2.0).is_accepted());
}

#[test]
fn interactive_lane_has_priority_over_bulk() {
    let mut svc = ServiceBuilder::new()
        .map(map())
        .batch_policy(BatchPolicy { max_batch: 2, max_delay: 100.0 })
        .build()
        .expect("valid");
    let bulk0 = svc.submit_with_priority(request(0), Priority::Bulk, 0.0).ticket().unwrap();
    let _bulk1 = svc.submit_with_priority(request(1), Priority::Bulk, 0.1).ticket().unwrap();
    let inter = svc.submit_with_priority(request(2), Priority::Interactive, 0.2).ticket().unwrap();
    // Size trigger at 2: the interactive request jumps the older bulk
    // queue; only one bulk rides along.
    let events = svc.tick(0.2).unwrap();
    let tickets: Vec<_> = events.iter().filter_map(ServiceEvent::ticket).collect();
    assert_eq!(tickets, vec![inter, bulk0], "interactive drains first: {events:?}");
}

#[test]
fn cancelled_tickets_never_reach_a_batch() {
    let mut svc = ServiceBuilder::new().map(map()).build().expect("valid");
    let keep = svc.submit(request(0), 0.0).ticket().unwrap();
    let gone = svc.submit(request(1), 0.1).ticket().unwrap();
    assert!(svc.cancel(gone));
    let events = svc.flush(1.0).unwrap();
    // Acknowledgement first, then the survivor's delivery + report.
    assert_eq!(events[0], ServiceEvent::Cancelled { ticket: gone, client: ClientId(1) });
    assert_eq!(events[1].ticket(), Some(keep));
    match events.last().unwrap() {
        ServiceEvent::BatchFlushed(report) => assert_eq!(report.num_requests, 1),
        other => panic!("expected report, got {other:?}"),
    }
    // Cancelling after the drain fails: the request is gone (§IV —
    // satisfied requests are discarded immediately).
    assert!(!svc.cancel(keep));
    assert!(!svc.cancel(gone));
}

#[test]
fn deadline_expiry_sheds_requests_under_backlog() {
    // max_batch 1 forces a backlog: the second request waits a full
    // extra window and crosses its 3s admission deadline.
    let mut svc = ServiceBuilder::new()
        .map(map())
        .batch_policy(BatchPolicy { max_batch: 1, max_delay: 100.0 })
        .admission_policy(AdmissionPolicy { queue_depth: 10, deadline: Some(3.0) })
        .build()
        .expect("valid");
    let t0 = svc.submit(request(0), 0.0).ticket().unwrap();
    let t1 = svc.submit(request(1), 0.0).ticket().unwrap();
    let events = svc.tick(1.0).unwrap();
    assert_eq!(
        events.iter().filter_map(ServiceEvent::ticket).collect::<Vec<_>>(),
        vec![t0],
        "size cap drains one: {events:?}"
    );
    // By t=10 the straggler is overdue: shed, not served.
    let events = svc.tick(10.0).unwrap();
    match &events[0] {
        ServiceEvent::Rejected { ticket, reason: RejectReason::DeadlineExpired { .. }, .. } => {
            assert_eq!(*ticket, t1);
        }
        other => panic!("expected shedding, got {other:?}"),
    }
    assert_eq!(svc.pending(), 0);
}

#[test]
fn sharded_backend_matches_single_server_results() {
    let requests = workload(24, 0x5AAD);

    let run = |shards: usize| {
        let mut svc = ServiceBuilder::new()
            .map(map())
            .seed(77)
            .shards(shards)
            .verify_results(true)
            .obfuscation_mode(ObfuscationMode::SharedClustered(ClusteringConfig::default()))
            .build()
            .expect("valid");
        svc.process_batch(&requests).expect("pipeline succeeds")
    };

    let single = run(1);
    let sharded = run(4);

    // Same obfuscation seed, same map on every shard: identical delivery.
    assert_eq!(single.results.len(), sharded.results.len());
    for (a, b) in single.results.iter().zip(&sharded.results) {
        assert_eq!(a.client, b.client);
        assert_eq!(a.path.nodes(), b.path.nodes());
        assert!((a.path.distance() - b.path.distance()).abs() < 1e-12);
    }
    assert_eq!(single.report.per_client_breach, sharded.report.per_client_breach);
    assert_eq!(single.report.total_pairs, sharded.report.total_pairs);
    // Fleet-wide counters agree with the single server's.
    assert_eq!(
        single.report.server_settled, sharded.report.server_settled,
        "aggregated shard stats must match the single-server load"
    );
}

#[test]
fn sharded_backend_balances_round_robin() {
    let g = map();
    let servers: Vec<DirectionsServer<roadnet::RoadNetwork>> =
        (0..3).map(|_| DirectionsServer::new(g.clone(), SharingPolicy::PerSource)).collect();
    let backend = ShardedBackend::new(servers).unwrap();
    let mut svc = ServiceBuilder::new().map(g).seed(3).build_with_backend(backend).expect("valid");

    let requests = workload(12, 0xBA1A);
    svc.process_batch(&requests).expect("pipeline succeeds");
    let load = svc.backend().load_per_shard();
    assert_eq!(load.len(), 3);
    // 12 independent units over 3 shards: every shard saw work.
    assert!(load.iter().all(|&pairs| pairs > 0), "round robin must touch every shard: {load:?}");
}

#[test]
fn event_stream_matches_the_direct_batch_view() {
    // The gateway's event stream and the legacy process_batch view must
    // describe the same bytes for the same requests (the deterministic
    // pin; tests/gateway_equivalence.rs proves it property-based).
    let requests = workload(10, 0xC0_FFEE);
    let build = || {
        ServiceBuilder::new()
            .map(map())
            .seed(4242)
            .verify_results(true)
            .obfuscation_mode(ObfuscationMode::SharedGlobal)
            .build()
            .expect("valid")
    };

    let mut direct = build();
    let response = direct.process_batch(&requests).expect("pipeline");

    let mut gateway = build();
    for r in &requests {
        gateway.submit(*r, 0.0).ticket().unwrap();
    }
    let events = gateway.flush(0.5).unwrap();
    assert_eq!(events.len(), requests.len() + 1);

    let mut deliveries = 0usize;
    for (event, (client, outcome)) in events.iter().zip(&response.outcomes) {
        match (event, outcome) {
            (ServiceEvent::ResponseReady { client: c, result, .. }, ClientOutcome::Delivered) => {
                assert_eq!(c, client);
                let direct_path = &response.results.iter().find(|r| r.client == *c).unwrap().path;
                assert_eq!(
                    serde_json::to_string(&result.path).unwrap(),
                    serde_json::to_string(direct_path).unwrap(),
                    "hop-4 payload must be byte-identical to the batch view"
                );
                deliveries += 1;
            }
            (ServiceEvent::Unreachable { client: c, .. }, ClientOutcome::Unreachable) => {
                assert_eq!(c, client);
            }
            (
                ServiceEvent::Rejected {
                    client: c,
                    reason: RejectReason::Infeasible { reason },
                    ..
                },
                ClientOutcome::Rejected { reason: direct_reason },
            ) => {
                assert_eq!(c, client);
                assert_eq!(reason, direct_reason);
            }
            (event, outcome) => panic!("event/outcome mismatch: {event:?} vs {outcome:?}"),
        }
    }
    assert_eq!(deliveries, response.results.len());
    match events.last().unwrap() {
        ServiceEvent::BatchFlushed(report) => {
            assert_eq!(
                serde_json::to_string(report).unwrap(),
                serde_json::to_string(&response.report).unwrap(),
                "the trailing report is the same determinism oracle"
            );
        }
        other => panic!("expected trailing report, got {other:?}"),
    }
}

#[test]
fn service_reports_unreachable_instead_of_failing_the_batch() {
    // A two-component map: node 0 and node 1 are connected; an isolated
    // pair far away is not reachable from them.
    let mut b = roadnet::GraphBuilder::new();
    for i in 0..4 {
        b.add_node(roadnet::Point::new(i as f64, 0.0)).unwrap();
    }
    b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
    let g = b.build().unwrap();

    let mut svc = ServiceBuilder::new()
        .map(g.clone())
        .fake_selection(FakeSelection::Uniform)
        .build()
        .expect("valid");
    let reachable = ClientRequest::new(
        ClientId(0),
        PathQuery::new(NodeId(0), NodeId(1)),
        ProtectionSettings::new(1, 1).unwrap(),
    );
    let unreachable = ClientRequest::new(
        ClientId(1),
        PathQuery::new(NodeId(0), NodeId(3)),
        ProtectionSettings::new(1, 1).unwrap(),
    );
    let resp = svc.process_batch(&[reachable, unreachable]).expect("lenient service mode");
    assert_eq!(resp.results.len(), 1);
    assert_eq!(resp.outcomes[0], (ClientId(0), ClientOutcome::Delivered));
    assert_eq!(resp.outcomes[1], (ClientId(1), ClientOutcome::Unreachable));

    // The same pair through the gateway: an explicit Unreachable event.
    let mut svc =
        ServiceBuilder::new().map(g).fake_selection(FakeSelection::Uniform).build().expect("valid");
    let t0 = svc.submit(reachable, 0.0).ticket().unwrap();
    let t1 = svc.submit(unreachable, 0.0).ticket().unwrap();
    let events = svc.flush(0.0).unwrap();
    assert!(matches!(&events[0], ServiceEvent::ResponseReady { ticket, .. } if *ticket == t0));
    assert!(matches!(&events[1], ServiceEvent::Unreachable { ticket, .. } if *ticket == t1));
}

#[test]
fn service_mode_is_used_unless_overridden() {
    let requests = workload(6, 7);
    let mut svc = ServiceBuilder::new()
        .map(map())
        .obfuscation_mode(ObfuscationMode::SharedGlobal)
        .build()
        .expect("valid");
    let resp = svc.process_batch(&requests).expect("ok");
    assert_eq!(resp.report.mode, ObfuscationMode::SharedGlobal);
    assert_eq!(resp.report.num_units, 1);

    let resp = svc.process_batch_with_mode(&requests, ObfuscationMode::Independent).expect("ok");
    assert_eq!(resp.report.mode, ObfuscationMode::Independent);
    assert_eq!(resp.report.num_units, requests.len());
}
