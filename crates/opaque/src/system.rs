//! End-to-end OPAQUE pipeline (Figure 5): clients → obfuscator → server →
//! candidate filter → clients, with full accounting.
//!
//! [`OpaqueSystem`] wires the trusted obfuscator to a directions-search
//! server and processes request batches under a chosen
//! [`ObfuscationMode`]. Every batch yields a [`BatchReport`] recording what
//! the experiments need: server load (pairs, settled nodes), network
//! redundancy (candidate vs delivered path volume), obfuscation overhead
//! (fakes added), and per-client breach probability.

use crate::error::Result;
use crate::filter::{ClientResult, filter_candidates};
use crate::obfuscator::{ObfuscationMode, ObfuscationUnit, Obfuscator};
use crate::protocol::{
    CandidateResultsMsg, HopTraffic, ObfuscatedQueryMsg, RequestMsg, ResultMsg,
};
use crate::query::{ClientId, ClientRequest};
use crate::server::DirectionsServer;
use roadnet::{GraphView, NodeId};
use std::collections::HashSet;

/// Accounting for one processed batch.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct BatchReport {
    /// Obfuscation mode used (`independent`, `shared-global`, …).
    pub mode: String,
    /// Requests in the batch.
    pub num_requests: usize,
    /// Obfuscated queries sent to the server.
    pub num_units: usize,
    /// Σ |S|·|T| over all units — the server's query workload.
    pub total_pairs: u64,
    /// Fake endpoints the obfuscator had to generate.
    pub fakes_added: u64,
    /// Candidate result paths the server returned (network download at the
    /// obfuscator).
    pub candidate_paths: u64,
    /// Total nodes across all candidate paths (proxy for bytes on the
    /// obfuscator–server link).
    pub candidate_path_nodes: u64,
    /// Total nodes across the paths actually delivered to clients.
    pub delivered_path_nodes: u64,
    /// Nodes the server settled for this batch.
    pub server_settled: u64,
    /// Arc relaxations performed by the server for this batch.
    pub server_relaxed: u64,
    /// Per-client breach probability (Definition 2 applied to the unit the
    /// client was embedded in).
    pub per_client_breach: Vec<(ClientId, f64)>,
    /// Measured bytes per hop of Figure 5 (requests, obfuscated queries,
    /// candidate results, delivered results), in the protocol's wire
    /// encoding.
    pub traffic: HopTraffic,
}

impl BatchReport {
    /// Mean breach probability across the batch's clients.
    pub fn mean_breach(&self) -> f64 {
        if self.per_client_breach.is_empty() {
            return 0.0;
        }
        self.per_client_breach.iter().map(|(_, b)| b).sum::<f64>()
            / self.per_client_breach.len() as f64
    }

    /// Candidate-to-delivered volume ratio — the redundancy §II attributes
    /// to naive obfuscation ("overconsumption of server and network
    /// resources"). 1.0 means nothing wasted.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.delivered_path_nodes == 0 {
            return 0.0;
        }
        self.candidate_path_nodes as f64 / self.delivered_path_nodes as f64
    }
}

/// The assembled OPAQUE deployment.
pub struct OpaqueSystem<G> {
    obfuscator: Obfuscator,
    server: DirectionsServer<G>,
    /// Re-verify delivered paths against the obfuscator's map.
    pub verify_results: bool,
}

impl<G: GraphView> OpaqueSystem<G> {
    /// Assemble a system from its two components.
    pub fn new(obfuscator: Obfuscator, server: DirectionsServer<G>) -> Self {
        OpaqueSystem { obfuscator, server, verify_results: false }
    }

    /// Access the obfuscator (e.g. to inspect its map).
    pub fn obfuscator(&self) -> &Obfuscator {
        &self.obfuscator
    }

    /// Access the server (e.g. to read cumulative stats).
    pub fn server(&self) -> &DirectionsServer<G> {
        &self.server
    }

    /// Process one batch of client requests end to end.
    ///
    /// Results are returned in request order. Satisfied requests are *not*
    /// retained anywhere in the system (§IV: "the satisfied requests are
    /// immediately discarded in the obfuscator, for sake of security") —
    /// only the aggregate `BatchReport` survives.
    pub fn process_batch(
        &mut self,
        requests: &[ClientRequest],
        mode: ObfuscationMode,
    ) -> Result<(Vec<ClientResult>, BatchReport)> {
        let before = self.server.stats();
        let units = self.obfuscator.obfuscate_batch(requests, mode)?;

        let mut report = BatchReport {
            mode: mode.name().to_string(),
            num_requests: requests.len(),
            num_units: units.len(),
            ..BatchReport::default()
        };
        for r in requests {
            report.traffic.record_request(&RequestMsg {
                client: r.client,
                query: r.query,
                protection: r.protection,
            });
        }

        let mut delivered: Vec<ClientResult> = Vec::with_capacity(requests.len());
        for (query_id, unit) in units.iter().enumerate() {
            report.total_pairs += unit.query.num_pairs() as u64;
            report.fakes_added += count_fakes(unit);
            report.traffic.record_query(&ObfuscatedQueryMsg {
                query_id: query_id as u64,
                query: unit.query.clone(),
            });

            let candidates = self.server.process(&unit.query);
            report.candidate_paths += candidates.num_paths() as u64;
            report.candidate_path_nodes += candidates
                .paths
                .iter()
                .flatten()
                .flatten()
                .map(|p| p.nodes().len() as u64)
                .sum::<u64>();
            report
                .traffic
                .record_candidates(&CandidateResultsMsg::from_result(query_id as u64, &candidates));

            let verify_on = self.verify_results.then(|| self.obfuscator.map());
            let results = filter_candidates(unit, &candidates, verify_on)?;
            for r in &results {
                report.delivered_path_nodes += r.path.nodes().len() as u64;
                report
                    .per_client_breach
                    .push((r.client, unit.query.breach_probability()));
                report
                    .traffic
                    .record_result(&ResultMsg { client: r.client, path: r.path.clone() });
            }
            delivered.extend(results);
        }

        let after = self.server.stats();
        report.server_settled = after.search.settled - before.search.settled;
        report.server_relaxed = after.search.relaxed - before.search.relaxed;

        // Restore request order for the caller.
        let order: std::collections::HashMap<ClientId, usize> =
            requests.iter().enumerate().map(|(i, r)| (r.client, i)).collect();
        delivered.sort_by_key(|r| order.get(&r.client).copied().unwrap_or(usize::MAX));
        report
            .per_client_breach
            .sort_by_key(|(c, _)| order.get(c).copied().unwrap_or(usize::MAX));
        Ok((delivered, report))
    }
}

/// Number of endpoints in the unit's sets that are not true endpoints of
/// any carried request.
fn count_fakes(unit: &ObfuscationUnit) -> u64 {
    let truth: HashSet<NodeId> = unit
        .requests
        .iter()
        .flat_map(|r| [r.query.source, r.query.destination])
        .collect();
    let fake_sources = unit.query.sources().iter().filter(|s| !truth.contains(s)).count();
    let fake_targets = unit.query.targets().iter().filter(|t| !truth.contains(t)).count();
    (fake_sources + fake_targets) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscator::{ClusteringConfig, FakeSelection};
    use crate::query::{PathQuery, ProtectionSettings};
    use pathsearch::SharingPolicy;
    use roadnet::generators::{GridConfig, grid_network};

    fn system() -> OpaqueSystem<roadnet::RoadNetwork> {
        let map = grid_network(&GridConfig { width: 16, height: 16, seed: 5, ..Default::default() })
            .unwrap();
        let server = DirectionsServer::new(map.clone(), SharingPolicy::PerSource);
        let obfuscator = Obfuscator::new(map, FakeSelection::default_ring(), 11);
        OpaqueSystem::new(obfuscator, server)
    }

    fn request(i: u32, s: u32, t: u32, f: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(s), NodeId(t)),
            ProtectionSettings::new(f, f).unwrap(),
        )
    }

    #[test]
    fn batch_delivers_correct_paths_in_request_order() {
        let mut sys = system();
        sys.verify_results = true;
        let reqs =
            vec![request(10, 0, 255, 3), request(11, 16, 240, 3), request(12, 32, 200, 2)];
        let (results, report) =
            sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        assert_eq!(results.len(), 3);
        for (res, req) in results.iter().zip(&reqs) {
            assert_eq!(res.client, req.client);
            assert_eq!(res.path.source(), req.query.source);
            assert_eq!(res.path.destination(), req.query.destination);
        }
        assert_eq!(report.num_units, 3);
        assert_eq!(report.total_pairs, 9 + 9 + 4);
        // Independent obfuscation with f=3 adds 2+2 fakes per query (f=2: 1+1).
        assert_eq!(report.fakes_added, 4 + 4 + 2);
    }

    #[test]
    fn breach_probabilities_follow_definition_2() {
        let mut sys = system();
        let reqs = vec![request(0, 0, 255, 2), request(1, 16, 240, 4)];
        let (_, report) = sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        let breaches: Vec<f64> = report.per_client_breach.iter().map(|(_, b)| *b).collect();
        assert!((breaches[0] - 0.25).abs() < 1e-12);
        assert!((breaches[1] - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn shared_mode_reduces_server_load_and_improves_breach() {
        let reqs: Vec<ClientRequest> =
            (0..6).map(|i| request(i, i * 17 % 256, (i * 31 + 128) % 256, 4)).collect();

        let mut indep_sys = system();
        let (_, indep) = indep_sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        let mut shared_sys = system();
        let (_, shared) = shared_sys.process_batch(&reqs, ObfuscationMode::SharedGlobal).unwrap();

        assert!(shared.total_pairs <= indep.total_pairs);
        assert!(shared.fakes_added < indep.fakes_added);
        // Shared |S|,|T| ≥ 6 true endpoints each, so breach ≤ 1/36 < 1/16.
        assert!(shared.mean_breach() < indep.mean_breach());
    }

    #[test]
    fn clustered_mode_round_trips_all_clients() {
        let mut sys = system();
        let reqs: Vec<ClientRequest> =
            (0..10).map(|i| request(i, i * 11 % 256, (i * 7 + 100) % 256, 3)).collect();
        let (results, report) = sys
            .process_batch(&reqs, ObfuscationMode::SharedClustered(ClusteringConfig::default()))
            .unwrap();
        assert_eq!(results.len(), 10);
        assert!(report.num_units >= 1 && report.num_units <= 10);
        assert_eq!(report.per_client_breach.len(), 10);
    }

    #[test]
    fn redundancy_ratio_reflects_candidate_overhead() {
        let mut sys = system();
        let reqs = vec![request(0, 0, 255, 4)];
        let (_, report) = sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        // 16 candidate paths, 1 delivered → ratio must exceed 1.
        assert!(report.redundancy_ratio() > 1.0);
        assert_eq!(report.candidate_paths, 16);
    }

    #[test]
    fn traffic_is_accounted_per_hop() {
        let mut sys = system();
        let reqs = vec![request(0, 0, 255, 4), request(1, 16, 240, 4)];
        let (_, report) = sys.process_batch(&reqs, ObfuscationMode::SharedGlobal).unwrap();
        let t = report.traffic;
        assert!(t.requests_bytes > 0);
        assert!(t.queries_bytes > 0);
        assert!(t.results_bytes > 0);
        // Candidate downloads dominate: the measurable §II overconsumption.
        assert!(t.candidates_bytes > t.results_bytes);
        assert!(t.candidate_amplification() > 1.0);
        // Byte-level amplification should roughly agree with the node-level
        // redundancy proxy (same underlying paths; both well above 1).
        assert!(report.redundancy_ratio() > 1.0);
    }

    #[test]
    fn server_counters_accumulate_across_batches() {
        let mut sys = system();
        let reqs = vec![request(0, 0, 255, 2)];
        sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        let first = sys.server().stats().pairs_evaluated;
        sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        assert_eq!(sys.server().stats().pairs_evaluated, first * 2);
    }

    #[test]
    fn report_mean_breach_empty_is_zero() {
        assert_eq!(BatchReport::default().mean_breach(), 0.0);
        assert_eq!(BatchReport::default().redundancy_ratio(), 0.0);
    }
}
