//! Integration tests for the service-layer API: builder validation, the
//! batcher's flush semantics, sharded-backend equivalence, and the
//! compat-shim proof obligation (`OpaqueSystem` ≡ `OpaqueService` in
//! strict mode on the same workload).

#![allow(deprecated)] // this test IS the shim ≡ service proof obligation

use opaque::{
    BatchPolicy, ClientId, ClientOutcome, ClientRequest, ClusteringConfig, DirectionsServer,
    FakeSelection, ObfuscationMode, Obfuscator, OpaqueError, PathQuery, ProtectionSettings,
    ServiceBuilder, ServiceConfig, ShardedBackend,
};
use pathsearch::SharingPolicy;
use roadnet::generators::{GridConfig, grid_network};
use roadnet::{NodeId, SpatialIndex};
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

fn map() -> roadnet::RoadNetwork {
    grid_network(&GridConfig { width: 18, height: 18, seed: 13, ..Default::default() })
        .expect("valid network")
}

fn workload(n: usize, seed: u64) -> Vec<ClientRequest> {
    let g = map();
    let idx = SpatialIndex::build(&g);
    generate_requests(
        &g,
        &idx,
        &WorkloadConfig {
            num_requests: n,
            queries: QueryDistribution::Uniform,
            protection: ProtectionDistribution::UniformRange { lo: 2, hi: 5 },
            seed,
        },
    )
}

#[test]
fn builder_validation_errors_are_typed_and_specific() {
    // No map.
    assert!(matches!(
        ServiceBuilder::new().build(),
        Err(OpaqueError::InvalidConfig { ref reason }) if reason.contains("map")
    ));
    // Zero shards.
    assert!(matches!(
        ServiceBuilder::new().map(map()).shards(0).build(),
        Err(OpaqueError::InvalidConfig { ref reason }) if reason.contains("shards")
    ));
    // Unsatisfiable batch policy.
    assert!(matches!(
        ServiceBuilder::new()
            .map(map())
            .batch_policy(BatchPolicy { max_batch: 0, max_delay: 1.0 })
            .build(),
        Err(OpaqueError::InvalidConfig { ref reason }) if reason.contains("max_batch")
    ));
    // Weight/map mismatch.
    assert!(matches!(
        ServiceBuilder::new().map(map()).weights(vec![0.5; 7]).build(),
        Err(OpaqueError::InvalidConfig { ref reason }) if reason.contains("weights")
    ));
    // A valid config builds, and from_config round-trips the knobs.
    let config = ServiceConfig { shards: 2, seed: 9, ..Default::default() };
    let svc = ServiceBuilder::from_config(config).map(map()).build().expect("valid");
    assert_eq!(svc.backend().num_shards(), 2);
}

#[test]
fn batcher_flushes_on_size_then_deadline() {
    let mut svc = ServiceBuilder::new()
        .map(map())
        .batch_policy(BatchPolicy { max_batch: 3, max_delay: 4.0 })
        .obfuscation_mode(ObfuscationMode::SharedGlobal)
        .build()
        .expect("valid");

    let request = |i: u32| {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(i * 5), NodeId(323 - i * 7)),
            ProtectionSettings::new(3, 3).unwrap(),
        )
    };

    // Size trigger: the third submission makes the batch eligible.
    svc.submit(request(0), 0.0).unwrap();
    svc.submit(request(1), 0.5).unwrap();
    assert!(svc.tick(1.0).unwrap().is_none(), "2 < max_batch and deadline not reached");
    svc.submit(request(2), 1.0).unwrap();
    let resp = svc.tick(1.0).unwrap().expect("size trigger");
    assert_eq!(resp.results.len(), 3);
    assert_eq!(resp.tickets.len(), 3);
    assert!(resp.outcomes.iter().all(|(_, o)| *o == ClientOutcome::Delivered));
    assert_eq!(svc.pending(), 0);

    // Deadline trigger: one request, flushed only after max_delay.
    svc.submit(request(3), 10.0).unwrap();
    assert!(svc.tick(13.9).unwrap().is_none(), "3.9s < 4s deadline");
    let resp = svc.tick(14.0).unwrap().expect("deadline trigger");
    assert_eq!(resp.results.len(), 1);

    // Duplicate client within one pending batch is rejected at admission.
    svc.submit(request(4), 20.0).unwrap();
    assert!(matches!(
        svc.submit(request(4), 20.1),
        Err(OpaqueError::DuplicateClient { client: ClientId(4) })
    ));
    // Forced flush drains the partial batch.
    let resp = svc.flush(21.0).unwrap().expect("partial batch");
    assert_eq!(resp.results.len(), 1);
}

#[test]
fn sharded_backend_matches_single_server_results() {
    let requests = workload(24, 0x5AAD);

    let run = |shards: usize| {
        let mut svc = ServiceBuilder::new()
            .map(map())
            .seed(77)
            .shards(shards)
            .verify_results(true)
            .obfuscation_mode(ObfuscationMode::SharedClustered(ClusteringConfig::default()))
            .build()
            .expect("valid");
        svc.process_batch(&requests).expect("pipeline succeeds")
    };

    let single = run(1);
    let sharded = run(4);

    // Same obfuscation seed, same map on every shard: identical delivery.
    assert_eq!(single.results.len(), sharded.results.len());
    for (a, b) in single.results.iter().zip(&sharded.results) {
        assert_eq!(a.client, b.client);
        assert_eq!(a.path.nodes(), b.path.nodes());
        assert!((a.path.distance() - b.path.distance()).abs() < 1e-12);
    }
    assert_eq!(single.report.per_client_breach, sharded.report.per_client_breach);
    assert_eq!(single.report.total_pairs, sharded.report.total_pairs);
    // Fleet-wide counters agree with the single server's.
    assert_eq!(
        single.report.server_settled, sharded.report.server_settled,
        "aggregated shard stats must match the single-server load"
    );
}

#[test]
fn sharded_backend_balances_round_robin() {
    let g = map();
    let servers: Vec<DirectionsServer<roadnet::RoadNetwork>> =
        (0..3).map(|_| DirectionsServer::new(g.clone(), SharingPolicy::PerSource)).collect();
    let backend = ShardedBackend::new(servers).unwrap();
    let mut svc = ServiceBuilder::new().map(g).seed(3).build_with_backend(backend).expect("valid");

    let requests = workload(12, 0xBA1A);
    svc.process_batch(&requests).expect("pipeline succeeds");
    let load = svc.backend().load_per_shard();
    assert_eq!(load.len(), 3);
    // 12 independent units over 3 shards: every shard saw work.
    assert!(load.iter().all(|&pairs| pairs > 0), "round robin must touch every shard: {load:?}");
}

#[test]
fn compat_shim_equals_service_on_the_same_workload() {
    let requests = workload(20, 0xC0_FFEE);
    let g = map();

    for mode in [
        ObfuscationMode::Independent,
        ObfuscationMode::SharedGlobal,
        ObfuscationMode::SharedClustered(ClusteringConfig::default()),
    ] {
        // The historical wiring…
        let mut system = opaque::OpaqueSystem::new(
            Obfuscator::new(g.clone(), FakeSelection::default_ring(), 4242),
            DirectionsServer::new(g.clone(), SharingPolicy::PerSource),
        );
        system.verify_results = true;
        let (sys_results, sys_report) =
            system.process_batch(&requests, mode).expect("system pipeline");

        // …and the service with identical configuration.
        let mut service = ServiceBuilder::new()
            .map(g.clone())
            .seed(4242)
            .verify_results(true)
            .obfuscation_mode(mode)
            .build()
            .expect("valid");
        let response = service.process_batch(&requests).expect("service pipeline");

        // Identical delivered paths…
        assert_eq!(sys_results.len(), response.results.len(), "{mode}");
        for (a, b) in sys_results.iter().zip(&response.results) {
            assert_eq!(a.client, b.client, "{mode}");
            assert_eq!(a.path.nodes(), b.path.nodes(), "{mode}");
        }
        // …identical breach probabilities…
        assert_eq!(sys_report.per_client_breach, response.report.per_client_breach, "{mode}");
        // …and identical aggregate accounting.
        assert_eq!(sys_report.total_pairs, response.report.total_pairs, "{mode}");
        assert_eq!(sys_report.fakes_added, response.report.fakes_added, "{mode}");
        assert_eq!(sys_report.num_units, response.report.num_units, "{mode}");
        assert_eq!(sys_report.mode, response.report.mode, "{mode}");
    }
}

#[test]
fn service_reports_unreachable_instead_of_failing_the_batch() {
    // A two-component map: node 0 and node 1 are connected; an isolated
    // pair far away is not reachable from them.
    let mut b = roadnet::GraphBuilder::new();
    for i in 0..4 {
        b.add_node(roadnet::Point::new(i as f64, 0.0)).unwrap();
    }
    b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
    b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
    let g = b.build().unwrap();

    let mut svc = ServiceBuilder::new()
        .map(g.clone())
        .fake_selection(FakeSelection::Uniform)
        .build()
        .expect("valid");
    let reachable = ClientRequest::new(
        ClientId(0),
        PathQuery::new(NodeId(0), NodeId(1)),
        ProtectionSettings::new(1, 1).unwrap(),
    );
    let unreachable = ClientRequest::new(
        ClientId(1),
        PathQuery::new(NodeId(0), NodeId(3)),
        ProtectionSettings::new(1, 1).unwrap(),
    );
    let resp = svc.process_batch(&[reachable, unreachable]).expect("lenient service mode");
    assert_eq!(resp.results.len(), 1);
    assert_eq!(resp.outcomes[0], (ClientId(0), ClientOutcome::Delivered));
    assert_eq!(resp.outcomes[1], (ClientId(1), ClientOutcome::Unreachable));

    // The strict shim keeps the historical all-or-error contract.
    let mut system = opaque::OpaqueSystem::new(
        Obfuscator::new(g.clone(), FakeSelection::Uniform, 1),
        DirectionsServer::new(g, SharingPolicy::PerSource),
    );
    let err =
        system.process_batch(&[reachable, unreachable], ObfuscationMode::Independent).unwrap_err();
    assert!(matches!(err, OpaqueError::MissingResult { .. }));
}

#[test]
fn service_mode_is_used_unless_overridden() {
    let requests = workload(6, 7);
    let mut svc = ServiceBuilder::new()
        .map(map())
        .obfuscation_mode(ObfuscationMode::SharedGlobal)
        .build()
        .expect("valid");
    let resp = svc.process_batch(&requests).expect("ok");
    assert_eq!(resp.report.mode, ObfuscationMode::SharedGlobal);
    assert_eq!(resp.report.num_units, 1);

    let resp = svc.process_batch_with_mode(&requests, ObfuscationMode::Independent).expect("ok");
    assert_eq!(resp.report.mode, ObfuscationMode::Independent);
    assert_eq!(resp.report.num_units, requests.len());
}
