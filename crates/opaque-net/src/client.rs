//! Client halves: a simple blocking client and a closed-loop fleet
//! driver for the load harness.
//!
//! [`NetClient`] is the reference implementation of the protocol — one
//! blocking socket, one frame decoder — used by the loopback
//! determinism test and the `--smoke` binary. [`run_fleet`] multiplexes
//! many *simulated* clients over a handful of real sockets (each socket
//! carries a slice of the fleet, requests tagged by [`ClientId`]), so a
//! single process can drive 10⁵–10⁶ logical clients against a loopback
//! server without 10⁵ file descriptors.

use crate::error::{NetError, Result};
use crate::frame::{DEFAULT_MAX_FRAME, FrameDecoder, frame_vec};
use crate::reactor::{POLLIN, POLLOUT, PollFd, poll};
use crate::wire::{WireReply, WireRequest, decode_message, encode_message};
use opaque::{ClientId, Priority, RequestMsg};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::time::Instant;

/// A blocking, one-request-at-a-time protocol client.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl NetClient {
    /// Connect to a server.
    ///
    /// # Errors
    /// Socket errors from connect.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream, decoder: FrameDecoder::new(DEFAULT_MAX_FRAME) })
    }

    /// Send one request frame.
    ///
    /// # Errors
    /// [`NetError::PayloadTooLarge`] for an unframeable request (nothing
    /// is written), and socket errors from the write.
    pub fn send(&mut self, request: &WireRequest) -> Result<()> {
        let frame = frame_vec(&encode_message(request)?)?;
        self.stream.write_all(&frame)?;
        Ok(())
    }

    /// Block until the next reply frame arrives.
    ///
    /// # Errors
    /// Codec errors, [`NetError::TruncatedFrame`] if the server closes
    /// mid-frame, and socket errors.
    pub fn recv(&mut self) -> Result<WireReply> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self.decoder.next_frame()? {
                return decode_message(&payload);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                self.decoder.finish()?;
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed with no reply pending",
                )));
            }
            self.decoder.push(&buf[..n]);
        }
    }
}

/// Shape of a [`run_fleet`] run.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Real sockets to spread the fleet across.
    pub connections: usize,
    /// Total unanswered requests allowed across the fleet — the closed
    /// loop. Submission pauses when this many are outstanding.
    pub max_in_flight: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { connections: 4, max_in_flight: 2048 }
    }
}

/// What the fleet observed, in aggregate.
#[derive(Clone, Debug, Default)]
pub struct FleetOutcome {
    /// Request frames written.
    pub sent: usize,
    /// Terminal replies received (conservation: must equal `sent`).
    pub terminal_replies: usize,
    /// Replies with `ticket: None` — refused before ticketing.
    pub door_rejections: usize,
    /// `Result` replies.
    pub delivered: usize,
    /// `Unreachable` replies.
    pub unreachable: usize,
    /// Ticketed `Rejected` replies (deadline shed, infeasible).
    pub rejected: usize,
    /// Send → terminal-reply latency per answered request, seconds.
    pub latencies_secs: Vec<f64>,
}

/// Drive `requests` through a server as a closed-loop fleet and collect
/// per-request latencies.
///
/// Latency is paired by [`ClientId`] (door rejections overtake queued
/// requests, so FIFO pairing would lie) — client ids must therefore be
/// unique across `requests`. Returns once every request has its
/// terminal reply.
///
/// # Errors
/// Socket and codec errors; [`NetError::Malformed`] on duplicate client
/// ids; unexpected EOF if the server closes early.
pub fn run_fleet(
    addr: impl ToSocketAddrs,
    requests: &[(RequestMsg, Priority)],
    cfg: FleetConfig,
) -> Result<FleetOutcome> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| NetError::Malformed { reason: "no address resolved".to_string() })?;
    let connections = cfg.connections.max(1);
    let mut streams = Vec::with_capacity(connections);
    for _ in 0..connections {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        streams.push(FleetConn {
            stream,
            decoder: FrameDecoder::new(DEFAULT_MAX_FRAME),
            outbox: Vec::new(),
            out_pos: 0,
        });
    }

    let mut outcome = FleetOutcome::default();
    let mut started: HashMap<ClientId, Instant> = HashMap::with_capacity(requests.len());
    let mut next = 0usize;

    while outcome.terminal_replies < requests.len() {
        // Submit while the closed loop has room, round-robin over sockets.
        while next < requests.len()
            && (outcome.sent - outcome.terminal_replies) < cfg.max_in_flight.max(1)
        {
            let (request, priority) = requests[next];
            if started.insert(request.client, Instant::now()).is_some() {
                return Err(NetError::Malformed {
                    reason: format!("duplicate client id {:?} in fleet", request.client),
                });
            }
            let wire = WireRequest { request, priority };
            let conn = &mut streams[next % connections];
            let frame = frame_vec(&encode_message(&wire)?)?;
            conn.outbox.extend_from_slice(&frame);
            next += 1;
            outcome.sent += 1;
        }

        // Poll every socket: always for readability, for writability
        // only while bytes wait.
        let mut fds: Vec<PollFd> = streams
            .iter()
            .map(|c| {
                let mut events = POLLIN;
                if c.pending_out() > 0 {
                    events |= POLLOUT;
                }
                PollFd::new(c.stream.as_raw_fd(), events)
            })
            .collect();
        match poll(&mut fds, 10) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }

        for (conn, fd) in streams.iter_mut().zip(&fds) {
            if fd.writable() {
                conn.flush()?;
            }
            if fd.readable() {
                conn.read_replies(&mut outcome, &mut started)?;
            }
        }
    }
    Ok(outcome)
}

/// One real socket carrying a slice of the fleet.
struct FleetConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbox: Vec<u8>,
    out_pos: usize,
}

impl FleetConn {
    fn pending_out(&self) -> usize {
        self.outbox.len() - self.out_pos
    }

    fn flush(&mut self) -> Result<()> {
        while self.out_pos < self.outbox.len() {
            match self.stream.write(&self.outbox[self.out_pos..]) {
                Ok(0) => {
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "server stopped accepting bytes",
                    )));
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if self.out_pos >= self.outbox.len() {
            self.outbox.clear();
            self.out_pos = 0;
        } else if self.out_pos > self.outbox.len() / 2 {
            self.outbox.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }

    fn read_replies(
        &mut self,
        outcome: &mut FleetOutcome,
        started: &mut HashMap<ClientId, Instant>,
    ) -> Result<()> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.decoder.finish()?;
                    return Err(NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed mid-run",
                    )));
                }
                Ok(n) => {
                    self.decoder.push(&buf[..n]);
                    while let Some(payload) = self.decoder.next_frame()? {
                        let reply: WireReply = decode_message(&payload)?;
                        settle(&reply, outcome, started)?;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }
}

fn settle(
    reply: &WireReply,
    outcome: &mut FleetOutcome,
    started: &mut HashMap<ClientId, Instant>,
) -> Result<()> {
    match reply {
        WireReply::Result { .. } => outcome.delivered += 1,
        WireReply::Unreachable { .. } => outcome.unreachable += 1,
        WireReply::Rejected { ticket: Some(_), .. } => outcome.rejected += 1,
        WireReply::Rejected { ticket: None, .. } => outcome.door_rejections += 1,
        WireReply::Cancelled { .. } => {}
        WireReply::Error { reason } => {
            return Err(NetError::Malformed {
                reason: format!("server reported a protocol error: {reason}"),
            });
        }
    }
    let client = reply.client().expect("terminal replies carry a client");
    let t0 = started.remove(&client).ok_or_else(|| NetError::Malformed {
        reason: format!("reply for unknown client {client:?}"),
    })?;
    outcome.latencies_secs.push(t0.elapsed().as_secs_f64());
    outcome.terminal_replies += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetServer, ServerConfig};
    use opaque::{BatchPolicy, PathQuery, ProtectionSettings, ServiceBuilder};
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};
    use std::sync::Arc;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn spawn_server(
        max_batch: usize,
        max_delay: f64,
    ) -> (std::net::SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<NetServer>) {
        let map =
            grid_network(&GridConfig { width: 12, height: 12, seed: 5, ..Default::default() })
                .unwrap();
        let service = ServiceBuilder::new()
            .map(map)
            .seed(23)
            .batch_policy(BatchPolicy { max_batch, max_delay })
            .build()
            .unwrap();
        let mut server = NetServer::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            server.run_until(&flag).expect("reactor runs");
            server
        });
        (addr, stop, handle)
    }

    fn request(client: u32, s: u32, t: u32) -> RequestMsg {
        RequestMsg {
            client: ClientId(client),
            query: PathQuery::new(NodeId(s), NodeId(t)),
            protection: ProtectionSettings::new(2, 2).unwrap(),
        }
    }

    #[test]
    fn blocking_client_round_trips_a_request() {
        let (addr, stop, handle) = spawn_server(1, 3600.0);
        let mut client = NetClient::connect(addr).unwrap();
        client
            .send(&WireRequest { request: request(5, 0, 143), priority: Priority::Interactive })
            .unwrap();
        let reply = client.recv().unwrap();
        match reply {
            WireReply::Result { result, .. } => assert_eq!(result.client, ClientId(5)),
            other => panic!("expected Result, got {other:?}"),
        }
        stop.store(true, Ordering::Release);
        let server = handle.join().unwrap();
        assert_eq!(server.stats().replies_sent, 1);
    }

    #[test]
    fn fleet_conserves_every_request() {
        let (addr, stop, handle) = spawn_server(16, 0.02);
        let requests: Vec<(RequestMsg, Priority)> = (0..200)
            .map(|i| {
                let s = i % 144;
                let t = (i * 7 + 31) % 144;
                (request(i, s, t), Priority::Interactive)
            })
            .collect();
        let outcome =
            run_fleet(addr, &requests, FleetConfig { connections: 3, max_in_flight: 64 }).unwrap();
        assert_eq!(outcome.sent, 200);
        assert_eq!(outcome.terminal_replies, 200, "conservation violated: {outcome:?}");
        assert_eq!(outcome.latencies_secs.len(), 200);
        assert_eq!(
            outcome.delivered + outcome.unreachable + outcome.rejected + outcome.door_rejections,
            200
        );
        assert!(outcome.delivered > 0, "a healthy grid should deliver: {outcome:?}");
        stop.store(true, Ordering::Release);
        let server = handle.join().unwrap();
        assert_eq!(server.stats().dropped_replies, 0);
    }

    #[test]
    fn duplicate_client_ids_are_refused() {
        let (addr, stop, handle) = spawn_server(4, 0.02);
        let requests =
            vec![(request(1, 0, 10), Priority::Bulk), (request(1, 3, 12), Priority::Bulk)];
        match run_fleet(addr, &requests, FleetConfig::default()) {
            Err(NetError::Malformed { reason }) => assert!(reason.contains("duplicate")),
            other => panic!("expected duplicate-id refusal, got {other:?}"),
        }
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }
}
