//! The self-check: the workspace this crate ships in lints clean.
//!
//! This is the enforcement point that makes opaque-lint a gate rather
//! than a suggestion — `cargo test` fails on the first unallowlisted
//! violation, before CI's lint-gate job ever sees it.

use opaque_lint::{Config, run};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).map(Path::to_path_buf).unwrap()
}

fn baseline() -> Config {
    let text = std::fs::read_to_string(repo_root().join("lint.toml")).expect("lint.toml exists");
    Config::parse(&text).expect("lint.toml parses")
}

#[test]
fn workspace_has_zero_unallowlisted_violations() {
    let report = run(&repo_root(), &baseline()).expect("lint run succeeds");
    assert!(
        report.is_clean(),
        "opaque-lint found violations — fix them or add a justified allow marker:\n{}",
        opaque_lint::report::human(&report)
    );
}

#[test]
fn every_unsafe_site_is_censused_with_a_justification() {
    let report = run(&repo_root(), &baseline()).expect("lint run succeeds");
    // The workspace's unsafe surface is intentionally tiny: the raw
    // poll(2) syscall in the reactor. Growing it is allowed — but only
    // with written justification, which a clean run already implies.
    assert!(!report.census.is_empty(), "the reactor's poll syscall should be censused");
    for site in &report.census {
        assert!(
            !site.justification.is_empty(),
            "unsafe {} at {}:{} has no SAFETY justification",
            site.kind,
            site.file,
            site.line
        );
    }
    assert!(
        report.census.iter().any(|s| s.file == "crates/opaque-net/src/reactor.rs"),
        "the reactor syscall site disappeared from the census: {:?}",
        report.census
    );
}

#[test]
fn the_exception_surface_is_nonempty_and_accounted() {
    let report = run(&repo_root(), &baseline()).expect("lint run succeeds");
    // The repo carries real, justified exceptions (commutative hash
    // folds, locally-proven bounds). If this ever drops to zero the
    // markers were probably broken, not removed — investigate before
    // relaxing.
    assert!(
        !report.allowed.is_empty(),
        "expected justified allow-marker sites; marker parsing may have regressed"
    );
    for site in &report.allowed {
        assert!(
            ["hash-iter", "wall-clock", "panic-path"].contains(&site.rule.as_str()),
            "rule {} should not be waivable (site {}:{})",
            site.rule,
            site.file,
            site.line
        );
    }
    assert!(report.files_scanned > 100, "walk regressed: {} files", report.files_scanned);
    assert!(report.docs_checked >= 6, "doc list regressed: {} docs", report.docs_checked);
}
