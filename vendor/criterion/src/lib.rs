//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — measuring wall-clock
//! time with `std::time::Instant` and printing a one-line summary per
//! benchmark (min / mean over the sample). No statistical analysis, HTML
//! reports, or baseline comparison; swap in the real criterion when the
//! registry is reachable to get those back.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The stand-in runs one setup per
/// measured invocation regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle: measurement settings plus output.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time budget for warm-up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmarking group `{name}`");
        BenchmarkGroup { criterion: self, group: name }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.clone();
        run_benchmark(&settings, &id.into(), f);
        self
    }
}

/// A named set of benchmarks sharing the parent's settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.criterion.clone();
        let id = format!("{}/{}", self.group, id.into());
        run_benchmark(&settings, &id, f);
        self
    }

    /// Close the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(settings: &Criterion, id: &str, mut f: F) {
    // Warm-up: run the routine until the warm-up budget is spent.
    let warm_up_deadline = Instant::now() + settings.warm_up_time;
    let mut bencher = Bencher { elapsed: Duration::ZERO };
    f(&mut bencher);
    while Instant::now() < warm_up_deadline {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
    }

    // Measurement: collect up to sample_size samples within the budget.
    let deadline = Instant::now() + settings.measurement_time;
    let mut samples: Vec<Duration> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed);
        if Instant::now() >= deadline {
            break;
        }
    }

    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len().max(1) as u32;
    eprintln!("  {id}: min {min:?}, mean {mean:?} over {} sample(s)", samples.len());
}

/// Passed to each benchmark closure; measures exactly the routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        drop(out);
    }

    /// Measure `routine` on a fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        drop(out);
    }
}

/// Bundle benchmark functions with a configuration, mirroring criterion's
/// two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the given groups; exits early under `--test` so
/// `cargo test --benches` stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_returns() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function("trivial", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            runs += 1;
        });
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut b = Bencher { elapsed: Duration::ZERO };
        let mut seen = Vec::new();
        for i in 0..3 {
            b.iter_batched(|| i, |x| seen.push(x), BatchSize::LargeInput);
        }
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
