//! `opaque-server` — stand up the framed TCP front door over a
//! generated grid map.
//!
//! ```text
//! opaque-server [--addr HOST:PORT] [--nodes N] [--seed S] [--shards K] [--smoke]
//! ```
//!
//! `--smoke` binds an ephemeral loopback port, drives a few requests
//! through a real client from a second thread, prints the resulting
//! batch report and wire stats, and exits non-zero on any mismatch —
//! the CI end-to-end check that the binary actually serves.

use opaque::{
    BatchPolicy, ClientId, PathQuery, Priority, ProtectionSettings, RequestMsg, ServiceBuilder,
};
use opaque_net::{FleetConfig, NetServer, ServerConfig, run_fleet};
use roadnet::NodeId;
use roadnet::generators::{GridConfig, grid_network};
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};

struct Args {
    addr: String,
    nodes: u32,
    seed: u64,
    shards: usize,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { addr: "127.0.0.1:4650".to_string(), nodes: 1024, seed: 7, shards: 1, smoke: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--nodes" => {
                args.nodes = value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--shards" => {
                args.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                return Err("usage: opaque-server [--addr HOST:PORT] [--nodes N] [--seed S] \
                     [--shards K] [--smoke]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn build_server(args: &Args, addr: &str) -> NetServer {
    let side = (args.nodes as f64).sqrt().ceil().max(4.0) as usize;
    let map =
        grid_network(&GridConfig { width: side, height: side, seed: 5, ..Default::default() })
            .expect("grid generates");
    let service = ServiceBuilder::new()
        .map(map)
        .seed(args.seed)
        .shards(args.shards)
        .batch_policy(BatchPolicy { max_batch: 64, max_delay: 0.05 })
        .build()
        .expect("valid service configuration");
    NetServer::bind(addr, service, ServerConfig::default()).expect("bind")
}

fn smoke(args: &Args) -> Result<(), String> {
    let mut server = build_server(args, "127.0.0.1:0");
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let side = (args.nodes as f64).sqrt().ceil().max(4.0) as u32;
    let n = side * side; // NodeId space of the generated grid
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let result = server.run_until(&flag);
        (server, result)
    });

    let requests: Vec<(RequestMsg, Priority)> = (0..24u32)
        .map(|i| {
            let msg = RequestMsg {
                client: ClientId(i),
                query: PathQuery::new(NodeId(i % n), NodeId((i * 17 + n / 2) % n)),
                protection: ProtectionSettings::new(2, 2).expect("valid protection"),
            };
            let lane = if i % 3 == 0 { Priority::Bulk } else { Priority::Interactive };
            (msg, lane)
        })
        .collect();
    let outcome = run_fleet(addr, &requests, FleetConfig { connections: 2, max_in_flight: 16 })
        .map_err(|e| format!("fleet failed: {e}"))?;

    stop.store(true, Ordering::Release);
    let (server, run_result) = handle.join().map_err(|_| "server thread panicked")?;
    run_result.map_err(|e| format!("reactor failed: {e}"))?;

    if outcome.terminal_replies != requests.len() {
        return Err(format!(
            "conservation violated: {} requests, {} terminal replies",
            requests.len(),
            outcome.terminal_replies
        ));
    }
    if outcome.delivered == 0 {
        return Err(format!("no request was delivered: {outcome:?}"));
    }
    if server.stats().dropped_replies != 0 {
        return Err(format!("replies dropped on loopback: {:?}", server.stats()));
    }
    println!("smoke ok: {} requests, {} delivered", outcome.sent, outcome.delivered);
    println!("stats: {:?}", server.stats());
    for report in server.reports() {
        println!("report: {report}");
    }
    Ok(())
}

fn serve(args: &Args) -> Result<(), String> {
    let mut server = build_server(args, &args.addr);
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("opaque-server listening on {addr} ({} nodes, seed {})", args.nodes, args.seed);
    let stop = AtomicBool::new(false);
    server.run_until(&stop).map_err(|e| format!("reactor failed: {e}"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = if args.smoke { smoke(&args) } else { serve(&args) };
    if let Err(msg) = result {
        eprintln!("opaque-server: {msg}");
        std::process::exit(1);
    }
}
