//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of serde: the [`Serialize`] /
//! [`Deserialize`] traits (routed through an owned JSON-like [`Value`]
//! model rather than serde's zero-copy visitor machinery) and the matching
//! derive macros. The surface is exactly what this repository uses —
//! `#[derive(serde::Serialize, serde::Deserialize)]` on plain structs,
//! newtype structs, and enums with unit / newtype / struct variants — and
//! the `serde_json` sibling crate provides the text encoding.
//!
//! Swapping in the real serde later only requires deleting `vendor/` and
//! repointing the workspace dependencies at crates.io.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// An owned, self-describing data value — the intermediate form every
/// serialization passes through (the moral equivalent of
/// `serde_json::Value`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; integers the repository
    /// serializes (ids, counters, seeds) fit losslessly in the 53-bit
    /// mantissa.
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved, which keeps wire sizes deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the entries of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a value that did not have the expected shape.
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

static NULL: Value = Value::Null;

/// Look up a struct field by name; absent fields read as `Null` so that
/// `Option` fields deserialize to `None` (and everything else reports a
/// type mismatch). Used by the derive-generated code.
pub fn __field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(DeError::expected(concat!("number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(DeError::expected(concat!("number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected array of length {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("array for tuple")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn option_none_is_null_and_missing_field_reads_as_null() {
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        let entries = vec![("a".to_string(), Value::Num(1.0))];
        assert_eq!(__field(&entries, "missing"), &Value::Null);
        assert_eq!(Option::<u32>::from_value(__field(&entries, "missing")).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let pair = (7u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }
}
