/root/repo/vendor/serde_json/target/debug/deps/serde_json-c046ff745964e1eb.d: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde_json-c046ff745964e1eb.rlib: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde_json-c046ff745964e1eb.rmeta: src/lib.rs

src/lib.rs:
