//! The goal-directed search guarantee, as a property: for random maps,
//! random batches, random obfuscator seeds, every sharing policy, and
//! every service composition (Sequential/WorkerPool × RoundRobin/
//! RegionOwned × Lru/Off), `SearchHeuristic::Alt` produces the **same
//! answers** as `SearchHeuristic::None` — the same delivered paths and
//! costs, the same per-client outcomes, the same hop-4 payload bytes —
//! while settling **no more** nodes in aggregate.
//!
//! ALT pruning is allowed to change exactly one thing: the amount of
//! work. The serialized `BatchReport` carries that work in its
//! `server_settled` / `server_relaxed` fields, so the oracle here
//! compares reports with those two fields normalized to zero and asserts
//! every other byte identical; the fleet's raw counters are then checked
//! directly for `settled(Alt) <= settled(None)`. Any other divergence
//! this test could catch would be a real admissibility bug: a landmark
//! bound overestimating a true distance, a guided trace adopted under the
//! wrong potential, a transposed sweep keyed by the wrong goal set.

use opaque::{
    BatchReport, CachePolicy, ClientId, ClientRequest, DirectionsBackend, ExecutionPolicy,
    ObfuscationMode, PartitionPolicy, PathQuery, ProtectionSettings, SearchHeuristic,
    ServiceBuilder, ServiceResponse,
};
use pathsearch::SharingPolicy;
use proptest::prelude::*;
use roadnet::{GraphBuilder, NodeId, Point, RoadNetwork};

/// Random connected road map: a random spanning tree plus extra random
/// edges (parallel roads allowed), weights ≥ Euclidean distance so the
/// landmark bounds have nontrivial pruning room.
fn arb_map(max_nodes: usize) -> impl Strategy<Value = RoadNetwork> {
    (4..max_nodes)
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n);
            let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
            let extra = proptest::collection::vec((0..n as u32, 0..n as u32, 1.0f64..3.0), 0..n);
            (coords, parents, extra)
        })
        .prop_map(|(coords, parents, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite coords");
            }
            let n = coords.len();
            let euclid = |a: usize, c: usize| {
                Point::new(coords[a].0, coords[a].1).distance(Point::new(coords[c].0, coords[c].1))
            };
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = (*p as usize) % child;
                let w = euclid(parent, child).max(f64::EPSILON) * 1.1;
                b.add_edge(NodeId::from_index(parent), NodeId::from_index(child), w)
                    .expect("valid tree edge");
            }
            for (a, c, factor) in extra {
                let (a, c) = (a as usize % n, c as usize % n);
                if a != c {
                    let w = euclid(a, c).max(f64::EPSILON) * factor;
                    b.add_edge(NodeId::from_index(a), NodeId::from_index(c), w)
                        .expect("valid extra edge");
                }
            }
            b.build().expect("non-empty graph")
        })
}

/// A batch of requests with unique client ids; endpoints and protection
/// demands are arbitrary (including infeasible ones — rejections must be
/// identical across heuristics too).
fn arb_batch(max_requests: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, u32)>> {
    proptest::collection::vec(
        (proptest::num::u32::ANY, proptest::num::u32::ANY, 1u32..5, 1u32..5),
        1..max_requests,
    )
}

fn requests_on(map: &RoadNetwork, raw: &[(u32, u32, u32, u32)]) -> Vec<ClientRequest> {
    let n = map.num_nodes() as u32;
    raw.iter()
        .enumerate()
        .map(|(i, &(s, t, f_s, f_t))| {
            ClientRequest::new(
                ClientId(i as u32),
                PathQuery::new(NodeId(s % n), NodeId(t % n)),
                ProtectionSettings::new(f_s, f_t).expect("nonzero by construction"),
            )
        })
        .collect()
}

struct Composition {
    sharing: SharingPolicy,
    shards: usize,
    execution: ExecutionPolicy,
    partition: PartitionPolicy,
    cache: CachePolicy,
}

fn build_service(
    map: RoadNetwork,
    seed: u64,
    mode: ObfuscationMode,
    comp: &Composition,
    heuristic: SearchHeuristic,
) -> opaque::OpaqueService<opaque::DefaultBackend> {
    ServiceBuilder::new()
        .map(map)
        .seed(seed)
        .shards(comp.shards)
        .obfuscation_mode(mode)
        .sharing_policy(comp.sharing)
        .execution_policy(comp.execution)
        .partition_policy(comp.partition)
        .cache_policy(comp.cache)
        .search_heuristic(heuristic)
        .verify_results(true)
        .build()
        .expect("valid configuration")
}

/// The report with its two work fields normalized away — everything else
/// (deliveries, fakes, traffic bytes per hop, trees grown) must be
/// byte-identical between the guided and unguided evaluation.
fn normalized_report_json(report: &BatchReport) -> String {
    let mut r = report.clone();
    r.server_settled = 0;
    r.server_relaxed = 0;
    serde_json::to_string(&r).expect("report serializes")
}

/// The equivalence oracle: every observable piece of a batch's output,
/// modulo the settled/relaxed work counters.
fn assert_answer_identical(plain: &ServiceResponse, alt: &ServiceResponse, ctx: &str) {
    assert_eq!(plain.outcomes, alt.outcomes, "{ctx}: per-client outcomes diverged");
    assert_eq!(plain.results.len(), alt.results.len(), "{ctx}: delivery count diverged");
    for (x, y) in plain.results.iter().zip(&alt.results) {
        assert_eq!(x.client, y.client, "{ctx}: delivery order diverged");
        assert_eq!(x.path, y.path, "{ctx}: delivered path diverged for {:?}", x.client);
        assert_eq!(
            x.path.distance().to_bits(),
            y.path.distance().to_bits(),
            "{ctx}: delivered cost diverged for {:?}",
            x.client
        );
    }
    assert_eq!(
        plain.report.traffic, alt.report.traffic,
        "{ctx}: hop payload bytes diverged (hop 4 included)"
    );
    assert_eq!(
        normalized_report_json(&plain.report),
        normalized_report_json(&alt.report),
        "{ctx}: BatchReport diverged beyond the settled/relaxed counters"
    );
}

/// Fleet counters with the work counters masked: all of these must match
/// between heuristics (pruning may only shrink work, never change what
/// was answered or how many trees grew). The physical cache hit/miss pair
/// is also masked — under `SharingPolicy::None` each (root, target) pair
/// carries its own potential params, so a single-root cache slot can
/// churn differently between the regimes.
fn masked_stats(svc: &opaque::OpaqueService<opaque::DefaultBackend>) -> opaque::ServerStats {
    let mut stats = svc.backend().stats();
    stats.tree_cache_hits = 0;
    stats.tree_cache_misses = 0;
    stats.search.settled = 0;
    stats.search.relaxed = 0;
    stats.search.heap_pushes = 0;
    stats.search.heap_pops = 0;
    stats
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn alt_answers_are_identical_to_none_and_settle_no_more(
        map in arb_map(40),
        raw_batch in arb_batch(10),
        seed in proptest::num::u64::ANY,
        landmarks in 1usize..4,
        sharing_pick in 0u8..4,
        execution_pick in 0u8..2,
        partition_pick in 0u8..2,
        cache_pick in 0u8..2,
        mode_pick in 0u8..2,
    ) {
        let sharing = match sharing_pick {
            0 => SharingPolicy::None,
            1 => SharingPolicy::PerSource,
            2 => SharingPolicy::Auto,
            _ => SharingPolicy::SharedFrontier,
        };
        let (shards, execution) = match execution_pick {
            0 => (1, ExecutionPolicy::Sequential),
            _ => (3, ExecutionPolicy::WorkerPool { threads: 3 }),
        };
        let partition = match partition_pick {
            0 => PartitionPolicy::RoundRobin,
            _ => PartitionPolicy::RegionOwned { halo: 1 },
        };
        let cache = match cache_pick {
            0 => CachePolicy::Off,
            _ => CachePolicy::Lru { trees: 4 },
        };
        let mode = match mode_pick {
            0 => ObfuscationMode::Independent,
            _ => ObfuscationMode::SharedGlobal,
        };
        let comp = Composition { sharing, shards, execution, partition, cache };
        let requests = requests_on(&map, &raw_batch);
        let mut plain = build_service(map.clone(), seed, mode, &comp, SearchHeuristic::None);
        let mut alt = build_service(
            map.clone(), seed, mode, &comp, SearchHeuristic::Alt { landmarks },
        );

        // Repeated rounds: round 1 runs cold caches, later rounds adopt
        // previously recorded (guided vs unguided) traces. The obfuscator
        // RNG advances identically, so both services see the same units.
        for round in 0..3 {
            let ctx = format!(
                "n={} requests={} seed={seed} landmarks={landmarks} sharing={sharing:?} \
                 execution={execution:?} partition={partition:?} cache={cache:?} \
                 mode={mode:?} round={round}",
                map.num_nodes(),
                requests.len()
            );
            match (plain.process_batch(&requests), alt.process_batch(&requests)) {
                (Ok(a), Ok(b)) => assert_answer_identical(&a, &b, &ctx),
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "{}: errors diverged", ctx),
                (a, b) => prop_assert!(
                    false,
                    "{}: one heuristic failed, the other did not: {:?} vs {:?}",
                    ctx,
                    a.map(|r| r.outcomes),
                    b.map(|r| r.outcomes)
                ),
            }
        }
        prop_assert_eq!(
            masked_stats(&plain),
            masked_stats(&alt),
            "non-work fleet counters diverged"
        );
        let (p, a) = (plain.backend().stats(), alt.backend().stats());
        // Settled-work dominance. Per *single-target* tree `settled(Alt)
        // ⊆ settled(None)` is a theorem (the potential is 0 at the goal,
        // so every guided settle key is bounded by the goal's plain
        // distance). With a *multi-goal* max-over-targets potential the
        // bound at a near goal is still positive — its key carries the
        // distance to the far goals — so a guided sweep may settle a few
        // boundary nodes past the plain sweep's last goal. On adversarial
        // tiny random maps that overshoot can exceed the pruning, so the
        // per-case check allows a small bounded margin, while the
        // cumulative totals across the whole proptest run (where pruning
        // dominates) are held to the strict inequality.
        prop_assert!(
            a.search.settled <= p.search.settled + p.search.settled / 4 + 16,
            "guided fleet settled far more than unguided: {} vs {} \
             (sharing={:?} execution={:?} partition={:?} cache={:?} mode={:?} n={})",
            a.search.settled,
            p.search.settled,
            sharing,
            execution,
            partition,
            cache,
            mode,
            map.num_nodes()
        );
        use std::sync::atomic::{AtomicU64, Ordering};
        static PLAIN_TOTAL: AtomicU64 = AtomicU64::new(0);
        static ALT_TOTAL: AtomicU64 = AtomicU64::new(0);
        let plain_total = PLAIN_TOTAL.fetch_add(p.search.settled, Ordering::Relaxed)
            + p.search.settled;
        let alt_total = ALT_TOTAL.fetch_add(a.search.settled, Ordering::Relaxed)
            + a.search.settled;
        if plain_total >= 5_000 {
            prop_assert!(
                alt_total <= plain_total,
                "aggregate: guided settled {} vs unguided {}",
                alt_total,
                plain_total
            );
        }
    }
}

/// The full 2×2×2 composition grid, deterministically, on one fixed map
/// and batch — so every cell of the satellite's matrix is exercised on
/// every test run, not just the sampled ones.
#[test]
fn every_composition_cell_is_answer_identical() {
    use roadnet::generators::{GridConfig, grid_network};
    let map =
        grid_network(&GridConfig { width: 10, height: 10, seed: 4, ..Default::default() }).unwrap();
    let requests: Vec<ClientRequest> = (0..6)
        .map(|i| {
            ClientRequest::new(
                ClientId(i),
                PathQuery::new(NodeId(i * 9), NodeId(99 - i * 11)),
                ProtectionSettings::new(3, 3).unwrap(),
            )
        })
        .collect();
    for (shards, execution) in
        [(1, ExecutionPolicy::Sequential), (2, ExecutionPolicy::WorkerPool { threads: 2 })]
    {
        for partition in [PartitionPolicy::RoundRobin, PartitionPolicy::RegionOwned { halo: 1 }] {
            for cache in [CachePolicy::Off, CachePolicy::Lru { trees: 8 }] {
                let comp = Composition {
                    sharing: SharingPolicy::PerSource,
                    shards,
                    execution,
                    partition,
                    cache,
                };
                let mut plain = build_service(
                    map.clone(),
                    7,
                    ObfuscationMode::Independent,
                    &comp,
                    SearchHeuristic::None,
                );
                let mut alt = build_service(
                    map.clone(),
                    7,
                    ObfuscationMode::Independent,
                    &comp,
                    SearchHeuristic::Alt { landmarks: 8 },
                );
                for round in 0..2 {
                    let ctx = format!(
                        "execution={execution:?} partition={partition:?} cache={cache:?} \
                         round={round}"
                    );
                    let a = plain.process_batch(&requests).unwrap();
                    let b = alt.process_batch(&requests).unwrap();
                    assert_answer_identical(&a, &b, &ctx);
                }
                let (p, a) = (plain.backend().stats(), alt.backend().stats());
                assert!(a.search.settled <= p.search.settled);
                assert!(
                    a.search.settled < p.search.settled,
                    "on spread-out grid queries ALT should actually prune \
                     (settled {} vs {})",
                    a.search.settled,
                    p.search.settled
                );
            }
        }
    }
}
