//! E20 — continent scale: goal-directed obfuscated search on million-node
//! tier road networks (extends the §V server cost model to maps where
//! unguided sweeps are no longer affordable).
//!
//! The paper's experiments stop at city-sized maps, where a Dijkstra sweep
//! per obfuscation-set root is cheap. At continent scale the same MSMD
//! batch settles tens of millions of nodes, almost all of them nowhere
//! near any candidate target. This experiment measures what the PR-9
//! pipeline buys on that tier, end to end:
//!
//! * a synthetic continent ([`roadnet::generators::continent_network`]):
//!   a lattice of jittered street-grid provinces stitched by sparse
//!   highway lanes — ≥10⁵ nodes at the quick tier, 10⁶ at full scale;
//! * the DIMACS loader round trip ([`roadnet::io::read_dimacs`]): the
//!   continent is written to `.gr`/`.co` text and re-loaded, proving the
//!   fixture-free CI path reproduces the network exactly;
//! * chunk-paged storage ([`roadnet::ChunkedCsr`]): the same guided batch
//!   is answered over the spilled arc file with a bounded buffer, the
//!   larger-than-RAM serving mode;
//! * ALT goal-directed pruning ([`pathsearch::AltPreprocessing`] via
//!   `DirectionsServer::with_heuristic`): cross-continent obfuscated
//!   units evaluated guided vs unguided.
//!
//! Claims checked on every run: guided, unguided, and paged-guided
//! evaluations return **identical candidate paths** for every pair of
//! every unit; and on maps ≥10⁵ nodes the guided batch settles **≤ 1/3**
//! of the nodes the unguided batch settles (the `continent_settled_ratio`
//! metric CI trends).

use crate::setup::Scale;
use crate::table::{ExperimentTable, f3};
use opaque::{DirectionsServer, ObfuscatedPathQuery};
use pathsearch::{AltPreprocessing, SearchArena, SharingPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::generators::{ContinentConfig, continent_network};
use roadnet::io::{read_dimacs, write_dimacs_co, write_dimacs_gr};
use roadnet::{ChunkConfig, ChunkedCsr, GraphView, NodeId, RoadNetwork};
use std::sync::Arc;
use std::time::Instant;

const LANDMARKS: usize = 16;
/// Obfuscation-set size per side of each unit (the paper's `f = 3`).
const SET_SIZE: usize = 3;
/// Side length of the block each unit's target set clusters inside —
/// matching the obfuscator's nearby-fake strategies, which pick fakes in
/// the true destination's vicinity. A tight target set keeps the
/// max-over-targets potential's final settle key close to the true trip
/// distance (a widely spread set would pad it by the set's own diameter,
/// admitting every near-tie on a grid-like map).
const TARGET_PATCH: usize = 10;

/// Weight jitter for the continent: per-edge factor in `[1.0, 3.0]` over
/// Euclidean length, modelling the ~3× speed spread between road classes.
/// The spread matters for goal direction: on a near-uniform lattice almost
/// every monotone path between distant nodes is a near-tie, so even a
/// perfect heuristic must settle most of the rectangle between them;
/// diverse weights break that degeneracy and let the ALT bounds separate
/// the corridor from the bulk.
const WEIGHT_FACTOR: (f64, f64) = (1.0, 3.0);
/// Sea gap between provinces (in street-spacing units): wide enough that
/// inter-province travel visibly funnels through the highway lanes.
const SEA_GAP: f64 = 20.0;

/// Map tier for a given experiment scale: ≥10⁵ nodes at the quick tier,
/// 10⁶ at full scale, and a debug-friendly reduction below quick (the
/// embedded test runs the whole pipeline, just on fewer provinces).
fn tier(scale: &Scale) -> (ContinentConfig, usize, usize) {
    let base =
        ContinentConfig { weight_factor: WEIGHT_FACTOR, sea_gap: SEA_GAP, ..Default::default() };
    if scale.network_nodes >= 4_000 {
        let cfg = ContinentConfig {
            provinces_x: 5,
            provinces_y: 5,
            province_width: 200,
            province_height: 200,
            ..base
        };
        (cfg, 12, 2)
    } else if scale.network_nodes >= 400 {
        let cfg = ContinentConfig { province_width: 80, province_height: 80, ..base };
        (cfg, 8, 2)
    } else {
        let cfg = ContinentConfig {
            provinces_x: 2,
            provinces_y: 2,
            province_width: 40,
            province_height: 40,
            ..base
        };
        (cfg, 4, 2)
    }
}

/// Cross-continent obfuscated units: each unit's sources sit anywhere in
/// one corner province, its targets cluster in a [`TARGET_PATCH`]-wide
/// block of the diagonally opposite one — the longest trips the map
/// offers, where goal direction has the most waste to cut.
fn cross_continent_units(cfg: &ContinentConfig, count: usize) -> Vec<ObfuscatedPathQuery> {
    let mut rng = StdRng::seed_from_u64(0xE20);
    let per_province = cfg.province_width * cfg.province_height;
    let patch = TARGET_PATCH.min(cfg.province_width).min(cfg.province_height);
    (0..count)
        .map(|i| {
            // Alternate the diagonal so both sweep directions are measured.
            let (s_px, s_py) = if i % 2 == 0 { (0, 0) } else { (cfg.provinces_x - 1, 0) };
            let (t_px, t_py) = (cfg.provinces_x - 1 - s_px, cfg.provinces_y - 1);
            let s_base = (s_py * cfg.provinces_x + s_px) * per_province;
            let mut sources = Vec::with_capacity(SET_SIZE);
            while sources.len() < SET_SIZE {
                let id = NodeId((s_base + rng.gen_range(0..per_province)) as u32);
                if !sources.contains(&id) {
                    sources.push(id);
                }
            }
            let t_base = (t_py * cfg.provinces_x + t_px) * per_province;
            let cx: usize = rng.gen_range(0..=cfg.province_width - patch);
            let cy: usize = rng.gen_range(0..=cfg.province_height - patch);
            let mut targets = Vec::with_capacity(SET_SIZE);
            while targets.len() < SET_SIZE {
                let (dx, dy): (usize, usize) = (rng.gen_range(0..patch), rng.gen_range(0..patch));
                let id = NodeId((t_base + (cy + dy) * cfg.province_width + cx + dx) as u32);
                if !targets.contains(&id) {
                    targets.push(id);
                }
            }
            ObfuscatedPathQuery::new(sources, targets)
        })
        .collect()
}

/// One engine's measurement: the batch evaluated `reps` times on a fresh
/// server each rep (no tree cache — this experiment isolates the sweeps).
struct Measured {
    paths: Vec<Vec<Vec<Option<pathsearch::Path>>>>,
    settled: u64,
    relaxed: u64,
    ms_per_batch: f64,
}

fn drive<G: GraphView>(
    g: G,
    units: &[ObfuscatedPathQuery],
    heuristic: Option<Arc<AltPreprocessing>>,
    reps: usize,
) -> Measured {
    let nodes = g.num_nodes();
    let mut measured = Measured { paths: Vec::new(), settled: 0, relaxed: 0, ms_per_batch: 0.0 };
    let mut elapsed = 0.0;
    for rep in 0..reps {
        let mut server = DirectionsServer::with_arena(
            &g,
            SharingPolicy::PerSource,
            SearchArena::preallocated(nodes, 1),
        )
        .with_heuristic(heuristic.clone());
        let t0 = Instant::now();
        let results: Vec<_> = units.iter().map(|u| server.process(u)).collect();
        elapsed += t0.elapsed().as_secs_f64();
        if rep == 0 {
            measured.paths = results.iter().map(|r| r.paths.clone()).collect();
            let stats = server.stats();
            measured.settled = stats.search.settled;
            measured.relaxed = stats.search.relaxed;
        }
    }
    measured.ms_per_batch = elapsed * 1e3 / reps as f64;
    measured
}

/// Round-trip the continent through DIMACS text in memory, returning the
/// reloaded network and (megabytes written, load milliseconds).
fn dimacs_round_trip(g: &RoadNetwork) -> (RoadNetwork, f64, f64) {
    let mut gr = Vec::new();
    let mut co = Vec::new();
    write_dimacs_gr(g, &mut gr).expect("in-memory write cannot fail");
    write_dimacs_co(g, &mut co).expect("in-memory write cannot fail");
    let megabytes = (gr.len() + co.len()) as f64 / (1024.0 * 1024.0);
    let t0 = Instant::now();
    let loaded = read_dimacs(&mut gr.as_slice(), &mut co.as_slice()).expect("own output re-loads");
    (loaded, megabytes, t0.elapsed().as_secs_f64() * 1e3)
}

/// Run E20.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E20",
        "continent-scale goal-directed obfuscated search",
        "ALT-guided MSMD answers identically while settling a fraction of the nodes (extends §V)",
        &["engine", "settled", "relaxed", "ms/batch", "paths"],
    );
    let (cfg, unit_count, reps) = tier(scale);
    let g = continent_network(&cfg).expect("tiered configs are valid");
    let nodes = g.num_nodes();
    t.note(format!(
        "synthetic continent: {}x{} provinces of {}x{}, {} nodes, {} edges, {} highway lanes/border",
        cfg.provinces_x,
        cfg.provinces_y,
        cfg.province_width,
        cfg.province_height,
        nodes,
        g.num_edges(),
        cfg.highway_lanes,
    ));

    // Loader leg: the CI path to real DIMACS maps, proven lossless on the
    // synthetic stand-in (skipped above 200k nodes — the text form of a
    // full-tier continent is hundreds of MB of `{:.17e}` floats).
    if nodes <= 200_000 {
        let (loaded, megabytes, load_ms) = dimacs_round_trip(&g);
        assert_eq!(loaded.num_nodes(), g.num_nodes(), "DIMACS round trip lost nodes");
        assert_eq!(loaded.edges(), g.edges(), "DIMACS round trip changed an edge");
        t.note(format!(
            "DIMACS round trip: {megabytes:.1} MB of .gr/.co text re-loaded losslessly in {load_ms:.0} ms"
        ));
    }

    let units = cross_continent_units(&cfg, unit_count);
    let pairs: usize = units.iter().map(|u| u.num_pairs()).sum();
    t.note(format!(
        "{unit_count} cross-continent units ({SET_SIZE}x{SET_SIZE} obfuscation sets, {pairs} pairs), \
         {LANDMARKS} farthest-point landmarks, PerSource sharing, {reps} reps"
    ));

    let t0 = Instant::now();
    let pre = Arc::new(AltPreprocessing::try_build(&g, LANDMARKS).expect("symmetric continent"));
    let preprocess_ms = t0.elapsed().as_secs_f64() * 1e3;
    t.note(format!(
        "ALT preprocessing: {preprocess_ms:.0} ms for {} table entries",
        pre.table_entries()
    ));

    let plain = drive(&g, &units, None, reps);
    let guided = drive(&g, &units, Some(Arc::clone(&pre)), reps);

    // Paged leg: the identical guided batch over the spilled CSR with a
    // bounded chunk buffer — the serving mode for maps larger than RAM.
    let csr = ChunkedCsr::spill_temp(&g, ChunkConfig::default()).expect("spill to temp");
    let paged = drive(&csr, &units, Some(Arc::clone(&pre)), 1);
    let io = csr.io_stats();

    // The equivalence claims this experiment rides on.
    assert_eq!(plain.paths, guided.paths, "guided candidate paths must be identical to plain");
    assert_eq!(plain.paths, paged.paths, "paged-guided candidate paths must be identical to plain");
    let ratio = guided.settled as f64 / plain.settled as f64;
    if nodes >= 100_000 {
        assert!(
            ratio <= 1.0 / 3.0,
            "at continent scale ALT must settle <= 1/3 of plain Dijkstra's nodes, got {ratio:.3}"
        );
    } else {
        assert!(ratio < 0.9, "even the reduced tier must show real pruning, got {ratio:.3}");
    }

    let row = |t: &mut ExperimentTable, name: &str, m: &Measured| {
        let paths: usize = m.paths.iter().flatten().flatten().filter(|p| p.is_some()).count();
        t.row(vec![
            name.to_string(),
            m.settled.to_string(),
            m.relaxed.to_string(),
            f3(m.ms_per_batch),
            paths.to_string(),
        ]);
    };
    row(&mut t, "plain dijkstra", &plain);
    row(&mut t, "alt-guided", &guided);
    row(&mut t, "alt-guided, paged csr", &paged);
    t.note(format!(
        "settled ratio {ratio:.3} (guided/plain); paged leg: {} chunk faults over {} accesses \
         ({} resident bytes cap)",
        io.faults,
        io.accesses,
        csr.resident_bytes(),
    ));

    t.metric("continent_settled_ratio", ratio);
    t.metric("continent_ms_per_batch", guided.ms_per_batch);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_reduced_scale_with_identical_paths_and_real_pruning() {
        // The reduced tier (2x2 provinces of 40x40 = 6,400 nodes) keeps
        // debug-mode CI fast; run() itself asserts path identity across
        // plain/guided/paged and the pruning bound for the tier.
        let t = run(&Scale { network_nodes: 100, queries: 4, trials: 1 });
        assert_eq!(t.rows.len(), 3, "plain + guided + paged rows");
        let ratio = t.metric_value("continent_settled_ratio").unwrap();
        assert!(ratio > 0.0 && ratio < 0.9, "ratio recorded: {ratio}");
        assert!(t.metric_value("continent_ms_per_batch").unwrap() > 0.0);
        // All three engines delivered every pair.
        assert_eq!(t.rows[0][4], t.rows[1][4]);
        assert_eq!(t.rows[0][4], t.rows[2][4]);
    }
}
