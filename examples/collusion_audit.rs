//! Collusion audit: when does shared obfuscation stop being safer?
//!
//! Shared obfuscated queries protect better than independent ones — until
//! other clients embedded in the same query collude (abstract, §I). This
//! example builds a shared query over 8 clients and replays collusion
//! attacks with 0..6 conspirators against client 0, reporting the residual
//! breach probability and the crossover against the independent baseline.
//!
//! ```text
//! cargo run --example collusion_audit
//! ```

use opaque::attack::collusion_attack;
use opaque::{ClientId, FakeSelection, ObfuscationMode, Obfuscator};
use rand::SeedableRng;
use rand::rngs::StdRng;
use roadnet::SpatialIndex;
use roadnet::generators::{GridConfig, grid_network};
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

fn main() {
    let map = grid_network(&GridConfig { width: 28, height: 28, seed: 99, ..Default::default() })
        .expect("valid network");
    let index = SpatialIndex::build(&map);

    let clients = 8;
    let protection = 4u32; // every client asks for f_S = f_T = 4
    let requests = generate_requests(
        &map,
        &index,
        &WorkloadConfig {
            num_requests: clients,
            queries: QueryDistribution::Uniform,
            protection: ProtectionDistribution::Fixed { f_s: protection, f_t: protection },
            seed: 99,
        },
    );

    let mut obfuscator = Obfuscator::new(map, FakeSelection::default_ring(), 99);
    let units = obfuscator
        .obfuscate_batch(&requests, ObfuscationMode::SharedGlobal)
        .expect("batch obfuscation succeeds");
    let unit = &units[0];
    println!(
        "shared query over {clients} clients: |S|={}, |T|={} → breach {:.4}",
        unit.query.sources().len(),
        unit.query.targets().len(),
        unit.query.breach_probability()
    );
    let independent_breach = 1.0 / (protection as f64 * protection as f64);
    println!("independent baseline at f={protection}: breach {independent_breach:.4}\n");

    println!("colluders  residual |S|x|T|  breach (analytic)  breach (simulated)  verdict");
    let victim = ClientId(0);
    let mut rng = StdRng::seed_from_u64(7);
    for colluders in 0..=(clients - 2) {
        let conspirators: Vec<ClientId> = (1..=colluders as u32).map(ClientId).collect();
        let rep = collusion_attack(unit, victim, &conspirators, 100_000, &mut rng);
        let verdict = if rep.analytic <= independent_breach {
            "shared still safer"
        } else {
            "INDEPENDENT would be safer"
        };
        println!(
            "{:>9}  {:>7}x{:<7}  {:>17.4}  {:>18.4}  {verdict}",
            colluders, rep.residual_sources, rep.residual_targets, rep.analytic, rep.empirical
        );
    }

    println!();
    println!("Each colluder removes its own endpoints from the victim's cover.");
    println!("Past the crossover, a client worried about insiders should request");
    println!("independent obfuscation — exactly the trade-off §III-C describes.");
}
