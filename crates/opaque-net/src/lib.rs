//! Network front door for the OPAQUE reproduction.
//!
//! Everything below the gateway in this workspace is in-process; this
//! crate puts the paper's hop 1 and hop 4 on real sockets. It is
//! deliberately dependency-free (no tokio, no mio, no libc): a
//! hand-rolled reactor over the `poll(2)` syscall ([`reactor`]),
//! non-blocking `std::net` sockets, a length-delimited frame codec
//! ([`frame`]), and an explicit per-connection state machine ([`conn`])
//! wired onto [`opaque::OpaqueService`]'s event API ([`server`]).
//!
//! The design invariant inherited from the gateway carries to the wire:
//! **every request frame gets exactly one terminal reply** — a result,
//! an unreachable notice, a typed rejection, or a cancellation ack —
//! and a connection that breaks the protocol gets a typed
//! [`wire::WireReply::Error`] before the close, never a silent reset.
//! The loopback determinism test (`tests/net_loopback.rs` at the
//! workspace root) pins the stronger property that motivates the
//! layering: the wire path's [`opaque::BatchReport`] bytes are
//! identical to the in-process gateway's for the same requests.

#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod error;
pub mod frame;
pub mod reactor;
pub mod server;
pub mod wire;

pub use client::{FleetConfig, FleetOutcome, NetClient, run_fleet};
pub use conn::{ConnPhase, Connection};
pub use error::{NetError, Result};
pub use frame::{DEFAULT_MAX_FRAME, FrameDecoder, PROTOCOL_VERSION};
pub use server::{NetServer, NetStats, ServerConfig};
pub use wire::{WireReply, WireRequest};
