//! E16 — gateway under overload: priority lanes, backpressure, deadline
//! shedding (extends §IV's deployment to admission control).
//!
//! The paper's four-hop loop (§IV, Figs. 5–6) assumes every received
//! request is eventually answered; a production front door cannot — under
//! sustained overload it must *refuse*, *reprioritize*, or *shed*. This
//! experiment drives a Poisson arrival stream faster than the service's
//! drain capacity through the gateway (`submit_with_priority` / `tick` /
//! `flush` on a simulated clock) with a bounded queue, a per-request
//! deadline, and a mixed interactive/bulk population, then tabulates what
//! the admission policy bought:
//!
//! * **lane separation** — interactive requests drain first, so their
//!   p99 queue wait stays pinned near the batch window while bulk
//!   absorbs the backlog (asserted: interactive p99 < bulk p99);
//! * **backpressure** — arrivals beyond the queue depth are refused at
//!   the door with `RejectReason::QueueFull`, and overdue queued
//!   requests are shed with `DeadlineExpired` (asserted: nonzero
//!   rejection rate — overload is visible, not silently buffered);
//! * **conservation** — every ticketed request resolves to exactly one
//!   terminal event; nothing is lost in the queue.
//!
//! The simulated clock makes every number deterministic per seed, so the
//! assertions hold at quick (CI) scale as much as at bench scale.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{
    AdmissionPolicy, BatchPolicy, ObfuscationMode, Priority, RejectReason, ServiceBuilder,
    ServiceEvent, SubmitOutcome, Ticket,
};
use std::collections::HashMap;
use workload::{
    ArrivalConfig, LatencyHistogram, ProtectionDistribution, QueryDistribution, WorkloadConfig,
    poisson_stream,
};

/// Arrivals per simulated second — twice the drain capacity below.
const ARRIVAL_RATE: f64 = 8.0;
/// Drain capacity: at most `MAX_BATCH` requests per `WINDOW` seconds.
const MAX_BATCH: usize = 8;
const WINDOW: f64 = 2.0;
/// Backpressure bound across lanes + deferred.
const QUEUE_DEPTH: usize = 24;
/// Queued requests older than this are shed, not served stale.
const DEADLINE: f64 = 6.0;

/// Queue-wait resolution: 50 ms buckets out to 20 s, plenty for the
/// DEADLINE-bounded waits this experiment can produce.
const WAIT_BUCKET: f64 = 0.05;
const WAIT_BUCKETS: usize = 400;

struct LaneStats {
    submitted: usize,
    served: usize,
    waits: LatencyHistogram,
    shed: usize,
    refused: usize,
}

impl LaneStats {
    fn new() -> Self {
        LaneStats {
            submitted: 0,
            served: 0,
            waits: LatencyHistogram::new(WAIT_BUCKET, WAIT_BUCKETS),
            shed: 0,
            refused: 0,
        }
    }
}

/// Run E16.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E16",
        "gateway under overload: lanes, backpressure, shedding",
        "admission control for §IV's deployment (no paper counterpart)",
        &["lane", "submitted", "served", "shed", "refused", "p50 wait s", "p99 wait s"],
    );
    let (g, idx) = network_with_index(roadnet::generators::NetworkClass::Grid, scale);
    let horizon = (scale.queries as f64 * 3.0).max(24.0);
    let stream = poisson_stream(
        &g,
        &idx,
        &WorkloadConfig {
            num_requests: 0, // governed by the horizon
            queries: QueryDistribution::Hotspot { hotspots: 3, exponent: 1.0, spread: 0.08 },
            protection: ProtectionDistribution::Fixed { f_s: 3, f_t: 3 },
            seed: 0xE16,
        },
        &ArrivalConfig { rate_per_sec: ARRIVAL_RATE, horizon_secs: horizon },
    );
    t.note(format!(
        "poisson stream: {} arrivals at {ARRIVAL_RATE}/s vs {MAX_BATCH} per {WINDOW}s drain \
         capacity; queue depth {QUEUE_DEPTH}, deadline {DEADLINE}s",
        stream.len()
    ));

    let mut svc = ServiceBuilder::new()
        .map(g)
        .seed(0xE16)
        .obfuscation_mode(ObfuscationMode::Independent)
        .batch_policy(BatchPolicy { max_batch: MAX_BATCH, max_delay: WINDOW })
        .admission_policy(AdmissionPolicy { queue_depth: QUEUE_DEPTH, deadline: Some(DEADLINE) })
        .build()
        .expect("valid service configuration");

    let mut lanes: HashMap<Priority, LaneStats> = HashMap::new();
    lanes.insert(Priority::Interactive, LaneStats::new());
    lanes.insert(Priority::Bulk, LaneStats::new());
    let mut ticket_lane: HashMap<Ticket, Priority> = HashMap::new();
    let mut resolved = 0usize;
    fn account(
        events: Vec<ServiceEvent>,
        lanes: &mut HashMap<Priority, LaneStats>,
        ticket_lane: &HashMap<Ticket, Priority>,
        resolved: &mut usize,
    ) {
        for event in events {
            match event {
                ServiceEvent::ResponseReady { ticket, waited, .. }
                | ServiceEvent::Unreachable { ticket, waited, .. } => {
                    let stats = lanes.get_mut(&ticket_lane[&ticket]).expect("known lane");
                    stats.served += 1;
                    stats.waits.record(waited);
                    *resolved += 1;
                }
                ServiceEvent::Rejected { ticket, reason, .. } => {
                    let stats = lanes.get_mut(&ticket_lane[&ticket]).expect("known lane");
                    match reason {
                        RejectReason::DeadlineExpired { .. } => stats.shed += 1,
                        other => panic!("this feasible workload cannot reject with {other}"),
                    }
                    *resolved += 1;
                }
                ServiceEvent::Cancelled { .. } => unreachable!("nothing is cancelled here"),
                ServiceEvent::BatchFlushed(_) => {}
            }
        }
    }

    // Drive the stream on the simulated clock. The drain capacity is
    // modelled by ticking only at fixed window boundaries — one batch of
    // at most MAX_BATCH per WINDOW seconds — while arrivals land between
    // them. At 2× the drain rate the backlog grows until the bounded
    // queue refuses at the door and the deadline sheds the stalest bulk.
    let mut next_window = WINDOW;
    for (i, timed) in stream.iter().enumerate() {
        while timed.arrival >= next_window {
            let events = svc.tick(next_window).expect("pipeline succeeds");
            account(events, &mut lanes, &ticket_lane, &mut resolved);
            next_window += WINDOW;
        }
        // A third of the population is latency-sensitive.
        let priority = if i % 3 == 0 { Priority::Interactive } else { Priority::Bulk };
        let stats = lanes.get_mut(&priority).expect("known lane");
        stats.submitted += 1;
        match svc.submit_with_priority(timed.request, priority, timed.arrival) {
            SubmitOutcome::Accepted(ticket) | SubmitOutcome::Deferred(ticket) => {
                ticket_lane.insert(ticket, priority);
            }
            SubmitOutcome::Rejected(RejectReason::QueueFull { .. }) => {
                stats.refused += 1;
                resolved += 1;
            }
            SubmitOutcome::Rejected(other) => panic!("unexpected refusal: {other}"),
        }
    }
    // Drain the backlog past the horizon, one window per tick (ticks
    // also shed whatever crossed the deadline while queued).
    while svc.pending() > 0 {
        let events = svc.tick(next_window).expect("pipeline succeeds");
        account(events, &mut lanes, &ticket_lane, &mut resolved);
        next_window += WINDOW;
    }

    // Per-lane histograms merge into the population histogram — the
    // composability the ad-hoc sorted-vec percentiles lacked.
    let mut all_waits = LatencyHistogram::new(WAIT_BUCKET, WAIT_BUCKETS);
    let mut total_submitted = 0usize;
    let mut total_rejected = 0usize;
    let mut p99_by_lane: HashMap<Priority, f64> = HashMap::new();
    for priority in [Priority::Interactive, Priority::Bulk] {
        let stats = lanes.get_mut(&priority).expect("known lane");
        let (p50, p99) = (stats.waits.p50(), stats.waits.p99());
        p99_by_lane.insert(priority, p99);
        all_waits.merge(&stats.waits);
        total_submitted += stats.submitted;
        total_rejected += stats.shed + stats.refused;
        t.row(vec![
            priority.name().to_string(),
            stats.submitted.to_string(),
            stats.served.to_string(),
            stats.shed.to_string(),
            stats.refused.to_string(),
            f3(p50),
            f3(p99),
        ]);
    }

    // Conservation: every submission is served, shed, or refused.
    assert_eq!(resolved, total_submitted, "every request must resolve exactly once");
    let interactive_p99 = p99_by_lane[&Priority::Interactive];
    let bulk_p99 = p99_by_lane[&Priority::Bulk];
    assert!(
        interactive_p99 < bulk_p99,
        "interactive must keep its latency under overload: p99 {interactive_p99:.2}s vs bulk \
         {bulk_p99:.2}s"
    );
    let rejection_rate = total_rejected as f64 / total_submitted as f64;
    assert!(rejection_rate > 0.0, "a 2x-overloaded bounded queue must refuse or shed something");
    t.note(format!(
        "lane separation holds: interactive p99 {interactive_p99:.2}s < bulk p99 {bulk_p99:.2}s; \
         rejection rate {:.1}%",
        rejection_rate * 100.0
    ));

    t.metric("queue_wait_p50", all_waits.p50());
    t.metric("queue_wait_p99", all_waits.p99());
    t.metric("rejection_rate", rejection_rate);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_lane_separation_and_rejections_hold_at_quick_scale() {
        // run() itself asserts conservation, interactive p99 < bulk p99,
        // and a nonzero rejection rate — the acceptance criteria — on the
        // deterministic simulated clock.
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 2, "interactive + bulk");
        let interactive_p99: f64 = t.rows[0][6].parse().unwrap();
        let bulk_p99: f64 = t.rows[1][6].parse().unwrap();
        assert!(interactive_p99 < bulk_p99);
        assert!(t.metric_value("rejection_rate").unwrap() > 0.0);
        assert!(
            t.metric_value("queue_wait_p99").unwrap() >= t.metric_value("queue_wait_p50").unwrap()
        );
        // Overload really bites the bulk lane: sheds or refusals land
        // there.
        let bulk_shed: usize = t.rows[1][3].parse().unwrap();
        let bulk_refused: usize = t.rows[1][4].parse().unwrap();
        assert!(bulk_shed + bulk_refused > 0, "{:?}", t.rows);
    }
}
