//! Multiple-source multiple-destination (MSMD) path search — the engine of
//! the obfuscated path query processor (§IV: "a set of efficient multiple
//! source multiple destination path search algorithms have been designed and
//! implemented by OPAQUE").
//!
//! An obfuscated path query `Q(S, T)` stands for the set of path queries
//! `{Q(s,t) : s ∈ S, t ∈ T}` and the server must answer *all* of them
//! (Definition 1 — it cannot know which is real). Three evaluation policies
//! are provided:
//!
//! * [`SharingPolicy::None`] — `|S|·|T|` independent single-pair Dijkstra
//!   runs; the naive baseline whose cost obfuscation must beat;
//! * [`SharingPolicy::PerSource`] — one multi-destination Dijkstra per
//!   source, the strategy behind Lemma 1's
//!   `O(Σ_{s∈S} max_{t∈T} ‖s,t‖²)` bound;
//! * [`SharingPolicy::Auto`] — per-source sharing over the smaller of the
//!   two sides: when `|T| < |S|` and the network is symmetric (undirected),
//!   run one multi-destination search per *target* instead and transpose,
//!   reducing the spanning-tree count from `|S|` to `min(|S|, |T|)`.

use crate::dijkstra::{Goal, Searcher};
use crate::path::Path;
use crate::stats::SearchStats;
use roadnet::{GraphView, NodeId};

/// Evaluation strategy for an MSMD query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SharingPolicy {
    /// Independent Dijkstra per (source, target) pair.
    None,
    /// One multi-destination Dijkstra per source (§III-B).
    PerSource,
    /// Per-source sharing over the smaller side when the graph view reports
    /// itself symmetric ([`GraphView::is_symmetric`]); on directed views it
    /// safely degrades to [`SharingPolicy::PerSource`].
    Auto,
}

impl SharingPolicy {
    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            SharingPolicy::None => "naive",
            SharingPolicy::PerSource => "per-source",
            SharingPolicy::Auto => "auto",
        }
    }
}

/// Result of one MSMD evaluation: `paths[i][j]` answers `Q(sources[i],
/// targets[j])` (`None` when disconnected), with aggregate and per-tree
/// counters.
#[derive(Clone, Debug)]
pub struct MsmdResult {
    pub paths: Vec<Vec<Option<Path>>>,
    pub stats: SearchStats,
    /// Counters per spanning tree actually grown (one per source for
    /// `PerSource`, per pair for `None`, per smaller-side element for
    /// `Auto`).
    pub per_tree: Vec<SearchStats>,
}

impl MsmdResult {
    /// Total number of result paths (excluding unreachable pairs).
    pub fn num_paths(&self) -> usize {
        self.paths.iter().flatten().filter(|p| p.is_some()).count()
    }

    /// Network distance `‖s_i, t_j‖`, if connected.
    pub fn distance(&self, i: usize, j: usize) -> Option<f64> {
        self.paths[i][j].as_ref().map(|p| p.distance())
    }
}

/// Evaluate the MSMD query `(sources × targets)` under `policy`.
///
/// # Panics
/// Panics if `sources` or `targets` is empty or contains an out-of-range
/// node — an obfuscated query always carries at least the true endpoints.
pub fn msmd<G: GraphView>(
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    policy: SharingPolicy,
) -> MsmdResult {
    assert!(!sources.is_empty() && !targets.is_empty(), "S and T must be non-empty");
    let n = g.num_nodes();
    for &x in sources.iter().chain(targets) {
        assert!(x.index() < n, "node {x} out of range");
    }

    match policy {
        SharingPolicy::None => msmd_naive(g, sources, targets),
        SharingPolicy::PerSource => msmd_per_source(g, sources, targets),
        SharingPolicy::Auto => {
            if targets.len() < sources.len() && g.is_symmetric() {
                let transposed = msmd_per_source(g, targets, sources);
                transpose(transposed, sources.len(), targets.len())
            } else {
                msmd_per_source(g, sources, targets)
            }
        }
    }
}

fn msmd_naive<G: GraphView>(g: &G, sources: &[NodeId], targets: &[NodeId]) -> MsmdResult {
    let mut searcher = Searcher::new();
    let mut stats = SearchStats::default();
    let mut per_tree = Vec::with_capacity(sources.len() * targets.len());
    let mut paths = Vec::with_capacity(sources.len());
    for &s in sources {
        let mut row = Vec::with_capacity(targets.len());
        for &t in targets {
            let run = searcher.run(g, s, &Goal::Single(t));
            stats.merge(run);
            per_tree.push(run);
            row.push(searcher.path_to(t));
        }
        paths.push(row);
    }
    MsmdResult { paths, stats, per_tree }
}

fn msmd_per_source<G: GraphView>(g: &G, sources: &[NodeId], targets: &[NodeId]) -> MsmdResult {
    let mut searcher = Searcher::new();
    let mut stats = SearchStats::default();
    let mut per_tree = Vec::with_capacity(sources.len());
    let goal = Goal::Set(targets.to_vec());
    let mut paths = Vec::with_capacity(sources.len());
    for &s in sources {
        let run = searcher.run(g, s, &goal);
        stats.merge(run);
        per_tree.push(run);
        paths.push(targets.iter().map(|&t| searcher.path_to(t)).collect());
    }
    MsmdResult { paths, stats, per_tree }
}

/// Transpose a result computed with sources/targets swapped (undirected
/// networks only; paths are reversed back into `s → t` orientation).
fn transpose(r: MsmdResult, num_sources: usize, num_targets: usize) -> MsmdResult {
    debug_assert_eq!(r.paths.len(), num_targets);
    let mut paths: Vec<Vec<Option<Path>>> =
        (0..num_sources).map(|_| vec![None; num_targets]).collect();
    for (j, row) in r.paths.into_iter().enumerate() {
        for (i, p) in row.into_iter().enumerate() {
            paths[i][j] = p.map(|mut p| {
                p.reverse();
                p
            });
        }
    }
    MsmdResult { paths, stats: r.stats, per_tree: r.per_tree }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // (i, j) index the result matrix and both sets in lockstep
mod tests {
    use super::*;
    use roadnet::generators::{GridConfig, NetworkClass, grid_network};

    fn net() -> roadnet::RoadNetwork {
        grid_network(&GridConfig { width: 16, height: 16, seed: 21, ..Default::default() }).unwrap()
    }

    fn sample_sets(n: u32) -> (Vec<NodeId>, Vec<NodeId>) {
        let sources = vec![NodeId(0), NodeId(n / 5), NodeId(n / 2)];
        let targets = vec![NodeId(n - 1), NodeId(n - n / 4), NodeId(2 * n / 3), NodeId(n / 7)];
        (sources, targets)
    }

    #[test]
    fn all_policies_agree_on_distances() {
        let g = net();
        let (s, t) = sample_sets(256);
        let naive = msmd(&g, &s, &t, SharingPolicy::None);
        let shared = msmd(&g, &s, &t, SharingPolicy::PerSource);
        let auto = msmd(&g, &s, &t, SharingPolicy::Auto);
        for i in 0..s.len() {
            for j in 0..t.len() {
                let d0 = naive.distance(i, j).unwrap();
                let d1 = shared.distance(i, j).unwrap();
                let d2 = auto.distance(i, j).unwrap();
                assert!((d0 - d1).abs() < 1e-9, "naive vs per-source at ({i},{j})");
                assert!((d0 - d2).abs() < 1e-9, "naive vs auto at ({i},{j})");
            }
        }
    }

    #[test]
    fn paths_are_verifiable_and_oriented() {
        let g = net();
        let (s, t) = sample_sets(256);
        for policy in [SharingPolicy::None, SharingPolicy::PerSource, SharingPolicy::Auto] {
            let r = msmd(&g, &s, &t, policy);
            for i in 0..s.len() {
                for j in 0..t.len() {
                    let p = r.paths[i][j].as_ref().unwrap();
                    assert_eq!(p.source(), s[i], "{}", policy.name());
                    assert_eq!(p.destination(), t[j], "{}", policy.name());
                    assert!(p.verify(&g, 1e-9), "{}", policy.name());
                }
            }
        }
    }

    #[test]
    fn sharing_reduces_settled_nodes() {
        let g = net();
        let (s, t) = sample_sets(256);
        let naive = msmd(&g, &s, &t, SharingPolicy::None);
        let shared = msmd(&g, &s, &t, SharingPolicy::PerSource);
        assert!(
            shared.stats.settled < naive.stats.settled,
            "shared {} vs naive {}",
            shared.stats.settled,
            naive.stats.settled
        );
        assert_eq!(shared.per_tree.len(), s.len());
        assert_eq!(naive.per_tree.len(), s.len() * t.len());
    }

    #[test]
    fn auto_picks_smaller_side() {
        let g = net();
        // 5 sources, 2 targets: auto should grow only 2 trees.
        let sources: Vec<NodeId> = (0..5).map(|i| NodeId(i * 40)).collect();
        let targets = vec![NodeId(255), NodeId(17)];
        let auto = msmd(&g, &sources, &targets, SharingPolicy::Auto);
        assert_eq!(auto.per_tree.len(), 2);
        // And still answer all 10 pairs correctly.
        let naive = msmd(&g, &sources, &targets, SharingPolicy::None);
        for i in 0..5 {
            for j in 0..2 {
                assert!(
                    (auto.distance(i, j).unwrap() - naive.distance(i, j).unwrap()).abs() < 1e-9
                );
                let p = auto.paths[i][j].as_ref().unwrap();
                assert_eq!(p.source(), sources[i]);
                assert_eq!(p.destination(), targets[j]);
            }
        }
    }

    #[test]
    fn works_on_all_network_classes() {
        for class in NetworkClass::ALL {
            let g = class.generate(500, 3).unwrap();
            let n = g.num_nodes() as u32;
            let s = vec![NodeId(0), NodeId(n / 2)];
            let t = vec![NodeId(n - 1), NodeId(n / 3), NodeId(2 * n / 5)];
            let r = msmd(&g, &s, &t, SharingPolicy::Auto);
            assert_eq!(r.num_paths(), 6, "{}", class.name());
        }
    }

    #[test]
    fn overlapping_sources_and_targets() {
        let g = net();
        let s = vec![NodeId(10), NodeId(20)];
        let t = vec![NodeId(20), NodeId(10)];
        let r = msmd(&g, &s, &t, SharingPolicy::PerSource);
        // Q(10,10) and Q(20,20) are trivial paths.
        assert!(r.paths[0][1].as_ref().unwrap().is_trivial());
        assert!(r.paths[1][0].as_ref().unwrap().is_trivial());
        assert!(r.paths[0][0].as_ref().unwrap().distance() > 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sources_panic() {
        let g = net();
        let _ = msmd(&g, &[], &[NodeId(0)], SharingPolicy::PerSource);
    }

    #[test]
    fn policy_names() {
        assert_eq!(SharingPolicy::None.name(), "naive");
        assert_eq!(SharingPolicy::PerSource.name(), "per-source");
        assert_eq!(SharingPolicy::Auto.name(), "auto");
    }

    #[test]
    fn auto_does_not_transpose_on_directed_graphs() {
        use roadnet::{GraphBuilder, Point};
        // Directed chain 0 → 1 → 2 with an expensive reverse detour
        // 2 → 3 → 0: transposing roles would compute wrong distances.
        let mut b = GraphBuilder::directed();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 10.0).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 10.0).unwrap();
        let g = b.build().unwrap();
        assert!(!roadnet::GraphView::is_symmetric(&g));

        // 3 sources, 1 target: Auto would love to transpose, but must not.
        let sources = vec![NodeId(0), NodeId(1), NodeId(2)];
        let targets = vec![NodeId(2)];
        let auto = msmd(&g, &sources, &targets, SharingPolicy::Auto);
        let naive = msmd(&g, &sources, &targets, SharingPolicy::None);
        for i in 0..3 {
            assert_eq!(auto.distance(i, 0), naive.distance(i, 0), "source {i}");
        }
        // Directed distances are asymmetric: 0→2 is 2, 2→0 is 20.
        assert!((auto.distance(0, 0).unwrap() - 2.0).abs() < 1e-12);
        // Auto fell back to one tree per source.
        assert_eq!(auto.per_tree.len(), 3);
    }
}
