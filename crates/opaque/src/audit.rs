//! Client-side privacy ledger.
//!
//! The obfuscator discards satisfied requests (§IV), so *clients* are the
//! only party that can track their own cumulative exposure. The ledger
//! operationalizes what the attack experiments (E6, E11) show: privacy is
//! a property of a client's whole query *history*, not of one obfuscated
//! query —
//!
//! * repeating a query under different obfuscations invites the
//!   intersection attack (tracked as [`ExposureReport::intersection_risk`]);
//! * participating in shared queries exposes the client to its co-members
//!   (tracked as the worst-case residual breach if all of them collude).

use crate::obfuscator::ObfuscationUnit;
use crate::query::{ClientId, PathQuery};
use roadnet::NodeId;
use std::collections::{HashMap, HashSet};

/// One client's record for a repeated true query.
#[derive(Clone, Debug)]
struct QueryHistory {
    /// Distinct obfuscations observed for this true query.
    obfuscations: Vec<(Vec<NodeId>, Vec<NodeId>)>,
    /// Times the query was issued.
    issues: u32,
}

/// Tracks everything a single client has revealed across batches.
#[derive(Clone, Debug, Default)]
pub struct PrivacyLedger {
    client: Option<ClientId>,
    histories: HashMap<PathQuery, QueryHistory>,
    /// Worst (largest) single-query breach probability accepted so far.
    worst_breach: f64,
    /// Worst residual breach under full collusion of shared-query
    /// co-members.
    worst_collusion_breach: f64,
    batches: u32,
}

/// Summary of a client's cumulative exposure.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExposureReport {
    /// Batches (obfuscated queries) this client participated in.
    pub batches: u32,
    /// Worst per-query breach probability across the history.
    pub worst_breach: f64,
    /// Worst residual breach if every co-member of a shared query colluded
    /// (1.0 when the client ever appeared alone with all-revealed cover).
    pub worst_collusion_breach: f64,
    /// Breach probability of the most-repeated query under an
    /// intersection attack over its distinct observed obfuscations
    /// (1.0 = already pinpointable).
    pub intersection_risk: f64,
}

impl PrivacyLedger {
    /// A fresh ledger for one client.
    pub fn new(client: ClientId) -> Self {
        PrivacyLedger { client: Some(client), ..Default::default() }
    }

    /// Record the unit that answered one of this client's requests.
    ///
    /// # Panics
    /// Panics if the unit does not carry the ledger's client.
    pub fn record(&mut self, unit: &ObfuscationUnit) {
        let client = self.client.expect("ledger constructed with a client");
        let request = unit
            .requests
            .iter()
            .find(|r| r.client == client)
            .unwrap_or_else(|| panic!("unit does not carry client {client:?}"));
        self.batches += 1;
        self.worst_breach = self.worst_breach.max(unit.query.breach_probability());

        // Full-collusion residual: every other member reveals its pair.
        let mut revealed_s: HashSet<NodeId> = HashSet::new();
        let mut revealed_t: HashSet<NodeId> = HashSet::new();
        for r in &unit.requests {
            if r.client != client {
                revealed_s.insert(r.query.source);
                revealed_t.insert(r.query.destination);
            }
        }
        let residual_s = unit.query.sources().iter().filter(|s| !revealed_s.contains(s)).count();
        let residual_t = unit.query.targets().iter().filter(|t| !revealed_t.contains(t)).count();
        let own_survives = !revealed_s.contains(&request.query.source)
            && !revealed_t.contains(&request.query.destination);
        let collusion = if own_survives && residual_s > 0 && residual_t > 0 {
            1.0 / (residual_s as f64 * residual_t as f64)
        } else if own_survives {
            1.0
        } else {
            // Colluders' reveals would (wrongly) exclude the client's own
            // pair — the attack cannot name it.
            0.0
        };
        self.worst_collusion_breach = self.worst_collusion_breach.max(collusion);

        // Intersection bookkeeping for the repeated-query channel.
        let entry = self
            .histories
            .entry(request.query)
            .or_insert_with(|| QueryHistory { obfuscations: Vec::new(), issues: 0 });
        entry.issues += 1;
        let shape = (unit.query.sources().to_vec(), unit.query.targets().to_vec());
        if !entry.obfuscations.contains(&shape) {
            entry.obfuscations.push(shape);
        }
    }

    /// Current exposure summary.
    pub fn report(&self) -> ExposureReport {
        let mut intersection_risk = 0.0f64;
        // lint: allow(hash-iter) — the loop folds a max over all
        // histories; max is commutative and associative, so visit order
        // cannot reach the report.
        for h in self.histories.values() {
            // Survivors of intersecting all distinct observed obfuscations.
            let mut survivors: Option<HashSet<(NodeId, NodeId)>> = None;
            for (sources, targets) in &h.obfuscations {
                let round: HashSet<(NodeId, NodeId)> =
                    sources.iter().flat_map(|&s| targets.iter().map(move |&t| (s, t))).collect();
                survivors = Some(match survivors {
                    None => round,
                    Some(prev) => prev.intersection(&round).copied().collect(),
                });
            }
            if let Some(s) = survivors {
                if !s.is_empty() {
                    intersection_risk = intersection_risk.max(1.0 / s.len() as f64);
                }
            }
        }
        ExposureReport {
            batches: self.batches,
            worst_breach: self.worst_breach,
            worst_collusion_breach: self.worst_collusion_breach,
            intersection_risk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscator::{FakeSelection, Obfuscator};
    use crate::query::{ClientRequest, ProtectionSettings};
    use roadnet::generators::{GridConfig, grid_network};

    fn obfuscator(consistent: bool) -> Obfuscator {
        let map =
            grid_network(&GridConfig { width: 20, height: 20, seed: 2, ..Default::default() })
                .unwrap();
        Obfuscator::new(map, FakeSelection::Uniform, 77).with_consistent_fakes(consistent)
    }

    fn request(i: u32, s: u32, t: u32, f: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(s), NodeId(t)),
            ProtectionSettings::new(f, f).unwrap(),
        )
    }

    #[test]
    fn single_independent_query_exposure() {
        let mut ob = obfuscator(false);
        let unit = ob.obfuscate_independent(&request(0, 0, 399, 4)).unwrap();
        let mut ledger = PrivacyLedger::new(ClientId(0));
        ledger.record(&unit);
        let rep = ledger.report();
        assert_eq!(rep.batches, 1);
        assert!((rep.worst_breach - 1.0 / 16.0).abs() < 1e-12);
        // No co-members → full collusion leaves everything intact.
        assert!((rep.worst_collusion_breach - 1.0 / 16.0).abs() < 1e-12);
        assert!((rep.intersection_risk - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_fresh_obfuscations_raise_intersection_risk() {
        let mut ob = obfuscator(false);
        let mut ledger = PrivacyLedger::new(ClientId(0));
        for _ in 0..5 {
            ledger.record(&ob.obfuscate_independent(&request(0, 0, 399, 4)).unwrap());
        }
        let rep = ledger.report();
        assert!(
            rep.intersection_risk > 0.5,
            "five fresh 4x4 obfuscations should almost pinpoint: {}",
            rep.intersection_risk
        );
        // Per-query breach looks unchanged — exactly the blind spot the
        // ledger exists to expose.
        assert!((rep.worst_breach - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn consistent_fakes_keep_intersection_risk_nominal() {
        let mut ob = obfuscator(true);
        let mut ledger = PrivacyLedger::new(ClientId(0));
        for _ in 0..5 {
            ledger.record(&ob.obfuscate_independent(&request(0, 0, 399, 4)).unwrap());
        }
        let rep = ledger.report();
        assert!((rep.intersection_risk - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn shared_queries_expose_collusion_risk() {
        let mut ob = obfuscator(false);
        let reqs = vec![request(0, 0, 399, 3), request(1, 21, 378, 3), request(2, 42, 357, 3)];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        let mut ledger = PrivacyLedger::new(ClientId(0));
        ledger.record(&unit);
        let rep = ledger.report();
        // Shared breach is better than independent…
        assert!(rep.worst_breach <= 1.0 / 9.0 + 1e-12);
        // …but full collusion of the two co-members is strictly worse than
        // the nominal shared guarantee.
        assert!(rep.worst_collusion_breach > rep.worst_breach);
    }

    #[test]
    #[should_panic(expected = "does not carry")]
    fn recording_a_foreign_unit_panics() {
        let mut ob = obfuscator(false);
        let unit = ob.obfuscate_independent(&request(3, 0, 399, 2)).unwrap();
        let mut ledger = PrivacyLedger::new(ClientId(0));
        ledger.record(&unit);
    }
}
