//! E15 — shard-local tree cache: hit rate and throughput on the hotspot
//! workload (extends §V / Lemma 1).
//!
//! Lemma 1 makes spanning trees the unit of server work, and the hotspot
//! workload (`workload::QueryDistribution::Hotspot` — everyone drives to
//! a few malls) makes many obfuscated queries share tree roots: under
//! `SharingPolicy::Auto` with `|T| < |S|`, trees grow from the popular
//! *destinations*. This experiment drives identical batch streams through
//! two `OpaqueService`s differing only in
//! [`CachePolicy`] — `Off` vs `Lru` — and reports wall time, hit rate,
//! and speedup.
//!
//! Two claims, checked on every run:
//!
//! * **determinism** — every batch's `BatchReport` is byte-identical
//!   across cache policies, and the cached service delivers identical
//!   paths (the cache-equivalence harness's guarantee, re-proven at bench
//!   scale); the warm cache must also actually *hit* (hit rate > 0 —
//!   otherwise the experiment is vacuous);
//! * **throughput** — at bench scale the cached service clears ≥ 1.3×
//!   the uncached pair throughput on this workload. The assertion is
//!   gated on bench-scale inputs (as in e14): at quick scale fixed
//!   per-batch overheads dwarf the microseconds of search the cache
//!   saves, and no assertion on timing noise is meaningful.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{CachePolicy, DirectionsBackend, FakeSelection, ObfuscationMode, ServiceBuilder};
use pathsearch::SharingPolicy;
use roadnet::generators::NetworkClass;
use std::time::Instant;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

/// Per-policy measurement over one replayed batch stream.
struct Measured {
    elapsed_secs: f64,
    total_pairs: u64,
    trees_grown: u64,
    hit_rate: f64,
    report_json: Vec<String>,
    delivered: Vec<(opaque::ClientId, Vec<roadnet::NodeId>)>,
}

fn drive(
    g: &roadnet::RoadNetwork,
    batches: &[Vec<opaque::ClientRequest>],
    cache: CachePolicy,
) -> Measured {
    let mut svc = ServiceBuilder::new()
        .map(g.clone())
        .seed(0xE15)
        // Auto transposition roots one tree at the (hotspot) destination
        // of each unit — the sharing the cache exploits.
        .sharing_policy(SharingPolicy::Auto)
        // Uniform fakes keep obfuscation cost negligible, so the
        // measurement isolates the server's tree work.
        .fake_selection(FakeSelection::Uniform)
        .obfuscation_mode(ObfuscationMode::Independent)
        .cache_policy(cache)
        .build()
        .expect("valid configuration");

    let mut measured = Measured {
        elapsed_secs: 0.0,
        total_pairs: 0,
        trees_grown: 0,
        hit_rate: 0.0,
        report_json: Vec::with_capacity(batches.len()),
        delivered: Vec::new(),
    };
    for batch in batches {
        let t0 = Instant::now();
        let response = svc.process_batch(batch).expect("batch succeeds");
        measured.elapsed_secs += t0.elapsed().as_secs_f64();
        measured.total_pairs += response.report.total_pairs;
        measured
            .report_json
            .push(serde_json::to_string(&response.report).expect("report serializes"));
        measured
            .delivered
            .extend(response.results.iter().map(|r| (r.client, r.path.nodes().to_vec())));
    }
    let stats = svc.backend().stats();
    measured.trees_grown = stats.trees_grown;
    let consulted = stats.tree_cache_hits + stats.tree_cache_misses;
    measured.hit_rate =
        if consulted == 0 { 0.0 } else { stats.tree_cache_hits as f64 / consulted as f64 };
    measured
}

/// Run E15.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E15",
        "shard-local tree cache on the hotspot workload",
        "reusable spanning trees under the Lemma 1 cost model (extends §V)",
        &["cache", "batches", "pairs", "trees", "ms/batch", "pairs/s", "hit rate", "speedup"],
    );
    let (g, idx) = network_with_index(NetworkClass::Geometric, scale);
    let bench_scale = scale.network_nodes >= 2_000;
    let reps = if bench_scale { 6 } else { 4 };
    t.note(format!("geometric map, {} nodes, {reps} batches, hotspot destinations", g.num_nodes()));

    // A fixed stream of hotspot batches, replayed verbatim for both cache
    // policies. Sources vary per batch (fresh seeds); destinations keep
    // revisiting the same few hotspot nodes — the root sharing the cache
    // exists for. `f_t = 1` (destination unprotected) keeps one tree per
    // unit; `f_s = 4` gives each tree a map-wide goal set so an adopted
    // tree replaces a deep sweep.
    let batches: Vec<Vec<opaque::ClientRequest>> = (0..reps)
        .map(|rep| {
            generate_requests(
                &g,
                &idx,
                &WorkloadConfig {
                    num_requests: scale.queries.max(8),
                    queries: QueryDistribution::Hotspot {
                        hotspots: 2,
                        exponent: 1.0,
                        // A tight spread concentrates destinations onto a
                        // handful of nodes — everyone really is heading to
                        // one of two malls, the regime the cache targets.
                        spread: 0.005,
                    },
                    protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 1 },
                    seed: 0xE150 + rep as u64,
                },
            )
        })
        .collect();

    let off = drive(&g, &batches, CachePolicy::Off);
    let lru = drive(&g, &batches, CachePolicy::Lru { trees: 64 });

    // Determinism, re-proven at this scale: byte-identical reports and
    // identical deliveries, batch by batch.
    assert_eq!(
        lru.report_json, off.report_json,
        "cache policy must not change a single report byte"
    );
    assert_eq!(lru.delivered, off.delivered, "cache policy must not change a delivered path");
    assert_eq!(lru.trees_grown, off.trees_grown, "adopted trees still count as trees");
    assert!(lru.hit_rate > 0.0, "hotspot roots recur: the warm cache must hit");
    assert_eq!(off.hit_rate, 0.0, "no cache, no hits");

    let speedup = off.elapsed_secs / lru.elapsed_secs.max(f64::MIN_POSITIVE);
    let row = |t: &mut ExperimentTable, name: String, m: &Measured, speedup: f64| {
        t.row(vec![
            name,
            m.report_json.len().to_string(),
            m.total_pairs.to_string(),
            m.trees_grown.to_string(),
            f3(m.elapsed_secs * 1e3 / m.report_json.len() as f64),
            f3(m.total_pairs as f64 / m.elapsed_secs.max(f64::MIN_POSITIVE)),
            f3(m.hit_rate),
            f3(speedup),
        ]);
    };
    row(&mut t, CachePolicy::Off.name(), &off, 1.0);
    row(&mut t, CachePolicy::Lru { trees: 64 }.name(), &lru, speedup);

    // The throughput claim, where the scale can express it.
    if bench_scale {
        assert!(
            speedup >= 1.3,
            "the tree cache must clear >= 1.3x uncached throughput on the hotspot \
             workload at bench scale, got {speedup:.2}x"
        );
        t.note(format!(
            "throughput claim holds: {speedup:.2}x >= 1.3x at {:.0}% hit rate",
            lru.hit_rate * 100.0
        ));
    } else {
        t.note(format!(
            "throughput assertion skipped (quick scale); determinism and hit rate \
             ({:.0}%) still verified",
            lru.hit_rate * 100.0
        ));
    }

    t.metric("trees_grown", lru.trees_grown as f64);
    t.metric("cache_hit_rate", lru.hit_rate);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_quick_scale_with_hits_and_identical_reports() {
        // run() itself asserts byte-identical reports, identical
        // deliveries, and a non-zero hit rate; the throughput claim is
        // scale-gated inside.
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 2, "off + lru");
        assert_eq!(t.rows[0][2], t.rows[1][2], "identical pair workload");
        assert!(t.metric_value("cache_hit_rate").unwrap() > 0.0);
        assert!(t.metric_value("trees_grown").unwrap() > 0.0);
        let hit_rate: f64 = t.rows[1][6].parse().unwrap();
        assert!(hit_rate > 0.0, "lru row reports its hit rate");
    }
}
