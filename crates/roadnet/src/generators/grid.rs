//! Manhattan-style grid network generator.
//!
//! Nodes sit on a `width × height` lattice (optionally jittered); edges link
//! 4-neighbours. A random fraction of edges is knocked out to break the
//! perfect symmetry of a pure lattice — real street grids have dead ends and
//! missing links — while a random spanning tree is always preserved so the
//! network stays connected.

use crate::error::Result;
use crate::geo::Point;
use crate::graph::{GraphBuilder, RoadNetwork};
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters for [`grid_network`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct GridConfig {
    /// Number of lattice columns (≥ 2).
    pub width: usize,
    /// Number of lattice rows (≥ 2).
    pub height: usize,
    /// Distance between adjacent lattice points.
    pub spacing: f64,
    /// Coordinates are jittered by up to ± `jitter × spacing / 2` per axis.
    /// 0.0 gives a perfect lattice.
    pub jitter: f64,
    /// Edge weight = Euclidean length × uniform sample from this range.
    /// Lower bound must be ≥ 1 to keep A* admissible.
    pub weight_factor: (f64, f64),
    /// Fraction of non-spanning-tree edges removed (dead ends, missing
    /// links). 0.0 keeps the full lattice.
    pub knockout: f64,
    /// RNG seed; same seed ⇒ same network.
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            width: 32,
            height: 32,
            spacing: 1.0,
            jitter: 0.2,
            weight_factor: (1.0, 1.3),
            knockout: 0.08,
            seed: 0,
        }
    }
}

/// Tiny union-find used to pick a random spanning tree (shared with the
/// continent generator).
pub(super) struct Dsu(Vec<u32>);

impl Dsu {
    pub(super) fn new(n: usize) -> Self {
        Dsu((0..n as u32).collect())
    }
    pub(super) fn find(&mut self, x: u32) -> u32 {
        if self.0[x as usize] != x {
            let r = self.find(self.0[x as usize]);
            self.0[x as usize] = r;
            r
        } else {
            x
        }
    }
    pub(super) fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.0[ra as usize] = rb;
        true
    }
}

/// Generate a grid network per `cfg`.
///
/// # Errors
/// Propagates builder validation errors; with a valid config (dimensions
/// ≥ 2, weight factors ≥ 1) generation always succeeds.
pub fn grid_network(cfg: &GridConfig) -> Result<RoadNetwork> {
    assert!(cfg.width >= 2 && cfg.height >= 2, "grid must be at least 2x2");
    assert!(
        cfg.weight_factor.0 >= 1.0 && cfg.weight_factor.1 >= cfg.weight_factor.0,
        "weight factors must satisfy 1 <= lo <= hi"
    );
    assert!((0.0..=1.0).contains(&cfg.knockout), "knockout must be a fraction");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6772_6964); // "grid"

    let mut b = GraphBuilder::new();
    b.reserve(cfg.width * cfg.height, 2 * cfg.width * cfg.height);
    let id = |x: usize, y: usize| NodeId::from_index(y * cfg.width + x);
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            let jx = if cfg.jitter > 0.0 {
                rng.gen_range(-0.5..0.5) * cfg.jitter * cfg.spacing
            } else {
                0.0
            };
            let jy = if cfg.jitter > 0.0 {
                rng.gen_range(-0.5..0.5) * cfg.jitter * cfg.spacing
            } else {
                0.0
            };
            b.add_node(Point::new(x as f64 * cfg.spacing + jx, y as f64 * cfg.spacing + jy))?;
        }
    }

    // Candidate lattice edges, shuffled; a random spanning tree (union-find
    // over the shuffled order) is kept unconditionally, the rest survive
    // with probability 1 - knockout.
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            if x + 1 < cfg.width {
                candidates.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < cfg.height {
                candidates.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    candidates.shuffle(&mut rng);
    let mut dsu = Dsu::new(cfg.width * cfg.height);
    for (a, c) in candidates {
        let in_tree = dsu.union(a.0, c.0);
        if in_tree || rng.gen::<f64>() >= cfg.knockout {
            let factor = if cfg.weight_factor.0 == cfg.weight_factor.1 {
                cfg.weight_factor.0
            } else {
                rng.gen_range(cfg.weight_factor.0..cfg.weight_factor.1)
            };
            b.add_euclidean_edge(a, c, factor)?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_connected_and_admissible() {
        let g = grid_network(&GridConfig::default()).unwrap();
        assert_eq!(g.num_nodes(), 32 * 32);
        assert!(g.is_connected());
        assert!(g.euclidean_admissible(1e-9));
    }

    #[test]
    fn zero_knockout_keeps_full_lattice() {
        let cfg = GridConfig { width: 5, height: 4, knockout: 0.0, ..GridConfig::default() };
        let g = grid_network(&cfg).unwrap();
        // Full lattice edge count: h*(w-1) + w*(h-1).
        assert_eq!(g.num_edges(), 4 * 4 + 5 * 3);
    }

    #[test]
    fn heavy_knockout_stays_connected() {
        let cfg =
            GridConfig { width: 20, height: 20, knockout: 0.9, seed: 3, ..GridConfig::default() };
        let g = grid_network(&cfg).unwrap();
        assert!(g.is_connected(), "spanning tree must survive knockout");
        // Must have at least the spanning tree.
        assert!(g.num_edges() >= g.num_nodes() - 1);
        // And far fewer than the full lattice.
        assert!(g.num_edges() < 2 * 19 * 20);
    }

    #[test]
    fn no_jitter_gives_exact_lattice_coordinates() {
        let cfg =
            GridConfig { width: 3, height: 3, jitter: 0.0, spacing: 2.0, ..GridConfig::default() };
        let g = grid_network(&cfg).unwrap();
        assert_eq!(g.point(NodeId(4)), Point::new(2.0, 2.0)); // center node
    }

    #[test]
    fn constant_weight_factor_is_exact() {
        let cfg = GridConfig {
            width: 4,
            height: 4,
            jitter: 0.0,
            weight_factor: (1.0, 1.0),
            knockout: 0.0,
            ..GridConfig::default()
        };
        let g = grid_network(&cfg).unwrap();
        for e in g.edges() {
            assert!((e.weight - 1.0).abs() < 1e-12, "unit lattice edges have weight 1");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_grid_panics() {
        let _ = grid_network(&GridConfig { width: 1, height: 5, ..GridConfig::default() });
    }

    #[test]
    #[should_panic(expected = "weight factors")]
    fn inadmissible_weights_panic() {
        let _ = grid_network(&GridConfig { weight_factor: (0.5, 0.8), ..GridConfig::default() });
    }
}
