/root/repo/vendor/serde/target/debug/deps/serde-a669f1578318a988.d: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde-a669f1578318a988.rlib: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde-a669f1578318a988.rmeta: src/lib.rs

src/lib.rs:
