//! E5 — independent vs shared obfuscated path queries (Figures 3 and 4,
//! §III-C).
//!
//! The paper's central trade-off: independent obfuscation gives each client
//! its own fakes (cost grows linearly with clients), shared obfuscation
//! reuses the *other clients'* true endpoints as cover (fewer fakes, fewer
//! pairs, and — because |S| and |T| grow with the batch — a *better* breach
//! probability). Sweeps batch size under both modes plus the clustered
//! middle ground.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{ClusteringConfig, FakeSelection, ObfuscationMode, ServiceBuilder};
use pathsearch::SharingPolicy;
use roadnet::generators::NetworkClass;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

/// Run E5.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E5",
        "independent vs shared obfuscation",
        "Figure 3 vs Figure 4 / §III-C",
        &["clients", "mode", "units", "pairs", "fakes", "settled", "mean breach", "redundancy"],
    );
    let (g, idx) = network_with_index(NetworkClass::Grid, scale);

    for k in [1usize, 2, 4, 8, 16] {
        let cfg = WorkloadConfig {
            num_requests: k,
            queries: QueryDistribution::Hotspot { hotspots: 3, exponent: 1.0, spread: 0.08 },
            protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 4 },
            seed: 0xE5 ^ k as u64,
        };
        let requests = generate_requests(&g, &idx, &cfg);

        for mode in [
            ObfuscationMode::Independent,
            ObfuscationMode::SharedClustered(ClusteringConfig::default()),
            ObfuscationMode::SharedGlobal,
        ] {
            let mut svc = ServiceBuilder::new()
                .map(g.clone())
                .fake_selection(FakeSelection::default_ring())
                .seed(0xE5)
                .sharing_policy(SharingPolicy::PerSource)
                .build()
                .expect("valid service configuration");
            let response = svc.process_batch_with_mode(&requests, mode).expect("pipeline succeeds");
            let report = response.report;
            assert_eq!(response.results.len(), k, "every client must be answered");
            t.row(vec![
                k.to_string(),
                mode.to_string(),
                report.num_units.to_string(),
                report.total_pairs.to_string(),
                report.fakes_added.to_string(),
                report.server_settled.to_string(),
                f3(report.mean_breach()),
                f3(report.redundancy_ratio()),
            ]);
        }
    }
    t.note("shared modes add fewer fakes and reach lower breach probability as the batch grows");
    t.note("redundancy = candidate path volume / delivered path volume (§II's naive-obfuscation waste)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_shared_dominates_independent_at_scale() {
        let t = run(&Scale::quick());
        // Pick the k=8 block.
        let rows: Vec<_> = t.rows.iter().filter(|r| r[0] == "8").collect();
        assert_eq!(rows.len(), 3);
        let indep = rows.iter().find(|r| r[1] == "independent").unwrap();
        let shared = rows.iter().find(|r| r[1] == "shared-global").unwrap();
        let indep_fakes: u64 = indep[4].parse().unwrap();
        let shared_fakes: u64 = shared[4].parse().unwrap();
        assert!(shared_fakes < indep_fakes);
        let indep_breach: f64 = indep[6].parse().unwrap();
        let shared_breach: f64 = shared[6].parse().unwrap();
        assert!(shared_breach <= indep_breach + 1e-12);
    }

    #[test]
    fn e5_single_client_modes_coincide() {
        let t = run(&Scale::quick());
        let rows: Vec<_> = t.rows.iter().filter(|r| r[0] == "1").collect();
        // With one client, shared-global degenerates to independent: same
        // pair count and breach.
        let indep = rows.iter().find(|r| r[1] == "independent").unwrap();
        let shared = rows.iter().find(|r| r[1] == "shared-global").unwrap();
        assert_eq!(indep[3], shared[3]);
        assert_eq!(indep[6], shared[6]);
    }
}
