//! Criterion timings for E5/E8: obfuscator throughput — independent vs
//! shared vs clustered formulation of a 16-client batch.

use criterion::{Criterion, criterion_group, criterion_main};
use opaque::{ClusteringConfig, FakeSelection, ObfuscationMode, Obfuscator};
use roadnet::SpatialIndex;
use roadnet::generators::NetworkClass;
use std::hint::black_box;
use std::time::Duration;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

fn bench(c: &mut Criterion) {
    let g = NetworkClass::Grid.generate(2_500, 0xBE).expect("valid network");
    let idx = SpatialIndex::build(&g);
    let requests = generate_requests(
        &g,
        &idx,
        &WorkloadConfig {
            num_requests: 16,
            queries: QueryDistribution::Hotspot { hotspots: 3, exponent: 1.0, spread: 0.08 },
            protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 4 },
            seed: 0xBE,
        },
    );

    let mut group = c.benchmark_group("e5_obfuscation");
    for mode in [
        ObfuscationMode::Independent,
        ObfuscationMode::SharedGlobal,
        ObfuscationMode::SharedClustered(ClusteringConfig::default()),
    ] {
        group.bench_function(mode.to_string(), |b| {
            // Fresh obfuscator per iteration batch keeps RNG state
            // comparable across modes.
            b.iter_batched(
                || Obfuscator::new(g.clone(), FakeSelection::default_ring(), 0xBE),
                |mut ob| {
                    let units = ob.obfuscate_batch(black_box(&requests), mode).expect("ok");
                    black_box(units.len())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
