//! E8 — query clustering quality (§IV obfuscation pipeline, step 1).
//!
//! Shared obfuscation needs compatible queries: Lemma 1 charges every
//! source a tree reaching the *farthest* target, so a global shared query
//! over spatially scattered clients forces huge trees. Clustering first
//! (the paper's "path query clustering") should recover most of the
//! fake-sharing benefit without the scatter penalty. Measured across
//! workload localities.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{ClusteringConfig, FakeSelection, ObfuscationMode, ServiceBuilder};
use pathsearch::SharingPolicy;
use roadnet::generators::NetworkClass;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

/// Run E8.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E8",
        "query clustering: scattered vs clustered vs global sharing",
        "§IV path query clustering step",
        &["workload", "mode", "units", "pairs", "settled", "settled/client", "mean breach"],
    );
    let (g, idx) = network_with_index(NetworkClass::Grid, scale);
    let k = 24usize;

    let workloads = [
        ("uniform", QueryDistribution::Uniform),
        ("hotspot", QueryDistribution::Hotspot { hotspots: 3, exponent: 1.0, spread: 0.06 }),
        ("commuter", QueryDistribution::Commuter { center_radius: 0.08 }),
    ];

    for (wname, dist) in workloads {
        let cfg = WorkloadConfig {
            num_requests: k,
            queries: dist,
            protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 4 },
            seed: 0xE8,
        };
        let requests = generate_requests(&g, &idx, &cfg);
        for mode in [
            ObfuscationMode::Independent,
            ObfuscationMode::SharedClustered(ClusteringConfig::default()),
            ObfuscationMode::SharedGlobal,
        ] {
            let mut svc = ServiceBuilder::new()
                .map(g.clone())
                .fake_selection(FakeSelection::default_ring())
                .seed(0xE8)
                .sharing_policy(SharingPolicy::PerSource)
                .build()
                .expect("valid service configuration");
            let report =
                svc.process_batch_with_mode(&requests, mode).expect("pipeline succeeds").report;
            t.row(vec![
                wname.into(),
                mode.to_string(),
                report.num_units.to_string(),
                report.total_pairs.to_string(),
                report.server_settled.to_string(),
                f3(report.server_settled as f64 / k as f64),
                f3(report.mean_breach()),
            ]);
        }
    }
    t.note("clustered sharing answers with far fewer pairs than independent on every workload");
    t.note("on localized workloads (hotspot/commuter) clustering recovers most of global sharing's savings with smaller trees");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_clustered_sharing_cuts_cost_on_localized_workloads() {
        let t = run(&Scale::quick());
        let row = |w: &str, m: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == w && r[1] == m)
                .unwrap_or_else(|| panic!("row {w}/{m}"))
                .clone()
        };
        // Clustered sharing always answers with fewer pairs than independent
        // obfuscation (fakes are amortized across cluster members)…
        for w in ["uniform", "hotspot", "commuter"] {
            let ind: f64 = row(w, "independent")[3].parse().unwrap();
            let clu: f64 = row(w, "shared-clustered")[3].parse().unwrap();
            assert!(clu <= ind, "{w}: clustered pairs {clu} vs independent {ind}");
        }
        // …and on a localized (hotspot) workload it also settles fewer nodes
        // than independent obfuscation: fewer trees over the same region.
        let ind: f64 = row("hotspot", "independent")[4].parse().unwrap();
        let clu: f64 = row("hotspot", "shared-clustered")[4].parse().unwrap();
        assert!(clu <= ind, "hotspot: clustered settled {clu} vs independent {ind}");
    }

    #[test]
    fn e8_breach_never_worse_under_sharing() {
        let t = run(&Scale::quick());
        for w in ["uniform", "hotspot", "commuter"] {
            let breach = |m: &str| -> f64 {
                t.rows
                    .iter()
                    .find(|r| r[0] == w && r[1] == m)
                    .unwrap_or_else(|| panic!("row {w}/{m}"))[6]
                    .parse()
                    .unwrap()
            };
            assert!(breach("shared-clustered") <= breach("independent") + 1e-9, "{w}");
            assert!(breach("shared-global") <= breach("shared-clustered") + 1e-9, "{w}");
        }
    }
}
