//! E19 — live-traffic maps: surgical invalidation vs drop-all refresh
//! under rush-hour churn (extends the §IV server cost model to maps whose
//! weights move while the fleet is serving).
//!
//! PR 7 left the fleet with one blunt refresh tool: `swap_map`, which
//! bumps every shard's map epoch and empties every tree cache even when a
//! traffic tick touched a handful of streets. This experiment measures
//! what the surgical path (`OpaqueService::update_weights`, which evicts
//! only traces whose recorded sweep settled an endpoint of an updated
//! edge) buys over that drop-all baseline on an identical stream.
//!
//! The workload is "district errands": each trip starts near one of a few
//! district centres and ends at the district's mall node, so the fleet
//! grows one small, spatially confined tree per mall and re-adopts it
//! batch after batch. Between batches a [`workload::rush_hour_schedule`]
//! round reweights a congestion zone around one epicenter. Districts away
//! from the epicenter never cross the zone, so their trees stay valid —
//! value only the surgical path can keep.
//!
//! Three claims, checked on every run:
//!
//! * **correctness under churn** — both cached services produce
//!   byte-identical serialized `BatchReport`s and identical delivered
//!   paths to an uncached reference driven through the same interleaved
//!   updates (a cache may only skip work, never serve a stale tree);
//! * **surgical retention pays** — the surgical fleet ends the run with a
//!   strictly higher tree-cache hit rate than the drop-all fleet;
//! * **updates agree** — `update_weights` reports the same changed-edge
//!   set to the fleet and to the obfuscator's trust-domain copy.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::{
    CachePolicy, ClientId, ClientRequest, DirectionsBackend, FakeSelection, ObfuscationMode,
    PartitionPolicy, PathQuery, ProtectionSettings, ServiceBuilder,
};
use pathsearch::SharingPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::generators::NetworkClass;
use roadnet::{NodeId, RoadNetwork, SpatialIndex};
use std::time::Instant;
use workload::{ChurnConfig, rush_hour_schedule};

const SHARDS: usize = 4;
const HALO: u32 = 2;
/// District errand pools: each district is the `DISTRICT_SIZE` nodes
/// nearest a random centre; trips run from a district node to its mall.
const DISTRICTS: usize = 6;
const DISTRICT_SIZE: usize = 12;

/// How the service learns about a churn round.
#[derive(Clone, Copy, PartialEq)]
enum Refresh {
    /// `update_weights`: reweight in place, evict only touched traces.
    Surgical,
    /// `swap_map` with the reweighted map: epoch bump, every cache emptied.
    DropAll,
}

/// One service's measurement over the interleaved batch/churn replay.
struct Measured {
    elapsed_secs: f64,
    total_pairs: u64,
    hit_rate: f64,
    report_json: Vec<String>,
    delivered: Vec<(ClientId, Vec<NodeId>)>,
}

fn drive(
    g: &RoadNetwork,
    batches: &[Vec<ClientRequest>],
    schedule: &[Vec<(roadnet::EdgeId, f64)>],
    cache: CachePolicy,
    refresh: Refresh,
) -> Measured {
    let mut svc = ServiceBuilder::new()
        .map(g.clone())
        .seed(0xE19)
        .shards(SHARDS)
        .partition_policy(PartitionPolicy::RegionOwned { halo: HALO })
        // Auto transposition roots one tree at each errand's single mall
        // destination — the root every batch revisits.
        .sharing_policy(SharingPolicy::Auto)
        // Ring fakes stay within a factor of the (short) true trip, so
        // obfuscation never forces a district tree to span the map.
        .fake_selection(FakeSelection::default_ring())
        .obfuscation_mode(ObfuscationMode::Independent)
        .cache_policy(cache)
        .build()
        .expect("valid configuration");

    // The drop-all baseline rebuilds the reweighted map on the side, as a
    // pre-`update_weights` operator would have had to.
    let mut live = g.clone();
    let mut measured = Measured {
        elapsed_secs: 0.0,
        total_pairs: 0,
        hit_rate: 0.0,
        report_json: Vec::with_capacity(batches.len()),
        delivered: Vec::new(),
    };
    for (b, batch) in batches.iter().enumerate() {
        let t0 = Instant::now();
        let response = svc.process_batch(batch).expect("batch succeeds");
        measured.elapsed_secs += t0.elapsed().as_secs_f64();
        measured.total_pairs += response.report.total_pairs;
        measured
            .report_json
            .push(serde_json::to_string(&response.report).expect("report serializes"));
        measured
            .delivered
            .extend(response.results.iter().map(|r| (r.client, r.path.nodes().to_vec())));
        if let Some(round) = schedule.get(b) {
            match refresh {
                Refresh::Surgical => {
                    svc.update_weights(round).expect("schedule updates are valid");
                }
                Refresh::DropAll => {
                    live.update_weights(round).expect("schedule updates are valid");
                    svc.swap_map(live.clone());
                }
            }
        }
    }
    let stats = svc.backend().stats();
    let consulted = stats.tree_cache_hits + stats.tree_cache_misses;
    measured.hit_rate =
        if consulted == 0 { 0.0 } else { stats.tree_cache_hits as f64 / consulted as f64 };
    measured
}

/// District errand batches: every trip ends at its district's mall, so
/// roots repeat across batches while sources vary inside the district.
fn errand_batches(
    g: &RoadNetwork,
    idx: &SpatialIndex,
    batches: usize,
    per_batch: usize,
) -> Vec<Vec<ClientRequest>> {
    let mut rng = StdRng::seed_from_u64(0xE19);
    let districts: Vec<Vec<NodeId>> = (0..DISTRICTS)
        .map(|_| {
            let centre = NodeId(rng.gen_range(0..g.num_nodes() as u32));
            idx.k_nearest(g.point(centre), DISTRICT_SIZE)
        })
        .collect();
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .map(|i| {
                    let pool = &districts[rng.gen_range(0..DISTRICTS)];
                    let mall = pool[0];
                    let home = pool[1 + rng.gen_range(0..pool.len() - 1)];
                    ClientRequest::new(
                        ClientId(i as u32),
                        PathQuery::new(home, mall),
                        // One fake source, one true target: the smallest
                        // protected unit that still exercises obfuscation.
                        ProtectionSettings::new(2, 1).expect("nonzero protection"),
                    )
                })
                .collect()
        })
        .collect()
}

/// Run E19.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E19",
        "surgical invalidation vs drop-all refresh under rush-hour churn",
        "weight updates evict only traces that crossed an updated edge (extends §IV)",
        &["refresh", "batches", "pairs", "ms/batch", "hit rate"],
    );
    let (g, idx) = network_with_index(NetworkClass::Geometric, scale);
    let bench_scale = scale.network_nodes >= 2_000;
    let reps = if bench_scale { 8 } else { 5 };
    let batches = errand_batches(&g, &idx, reps, scale.queries.max(8));
    let churn = ChurnConfig {
        rounds: reps - 1,
        updates_per_round: (g.edges().len() / 50).max(4),
        zone_fraction: 0.10,
        surge: 3.0,
        seed: 0xE19,
    };
    let schedule = rush_hour_schedule(&g, &churn);
    t.note(format!(
        "geometric map, {} nodes, {SHARDS} shards (halo {HALO}), {reps} errand batches, \
         {} churn rounds x {} updates in a {:.0}% congestion zone",
        g.num_nodes(),
        churn.rounds,
        churn.updates_per_round,
        churn.zone_fraction * 100.0
    ));

    let reference = drive(&g, &batches, &schedule, CachePolicy::Off, Refresh::Surgical);
    let surgical =
        drive(&g, &batches, &schedule, CachePolicy::Lru { trees: 64 }, Refresh::Surgical);
    let dropall = drive(&g, &batches, &schedule, CachePolicy::Lru { trees: 64 }, Refresh::DropAll);

    // Correctness under churn: neither refresh strategy may change a
    // report byte or a delivered path relative to the uncached reference.
    for (name, m) in [("surgical", &surgical), ("drop-all", &dropall)] {
        assert_eq!(
            m.report_json, reference.report_json,
            "{name} refresh must not change a single report byte under churn"
        );
        assert_eq!(
            m.delivered, reference.delivered,
            "{name} refresh must not change a delivered path under churn"
        );
    }

    // The payoff: identical stream, identical caches, strictly more
    // retained value when only touched traces are evicted.
    assert!(
        surgical.hit_rate > dropall.hit_rate,
        "surgical hit rate {:.4} must strictly beat drop-all {:.4}",
        surgical.hit_rate,
        dropall.hit_rate
    );

    let row = |t: &mut ExperimentTable, name: &str, m: &Measured| {
        t.row(vec![
            name.to_string(),
            m.report_json.len().to_string(),
            m.total_pairs.to_string(),
            f3(m.elapsed_secs * 1e3 / m.report_json.len() as f64),
            f3(m.hit_rate),
        ]);
    };
    row(&mut t, "uncached reference", &reference);
    row(&mut t, "drop-all (swap_map)", &dropall);
    row(&mut t, "surgical (update_weights)", &surgical);
    t.note(format!(
        "hit rate under churn: drop-all {:.0}% -> surgical {:.0}%",
        dropall.hit_rate * 100.0,
        surgical.hit_rate * 100.0
    ));

    t.metric("churn_hit_rate_surgical", surgical.hit_rate);
    t.metric("churn_hit_rate_dropall", dropall.hit_rate);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_quick_scale_with_identical_reports_and_a_retention_win() {
        // run() itself asserts byte-identical reports and delivered paths
        // across refresh strategies, and the strict hit-rate win.
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 3, "reference + drop-all + surgical");
        assert_eq!(t.rows[0][2], t.rows[1][2], "identical pair workload");
        let surgical = t.metric_value("churn_hit_rate_surgical").unwrap();
        let dropall = t.metric_value("churn_hit_rate_dropall").unwrap();
        assert!(surgical > dropall, "metrics carry the win: {surgical} vs {dropall}");
    }
}
