/root/repo/vendor/proptest/target/debug/deps/proptest-c55fe88f509783af.d: src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/proptest-c55fe88f509783af: src/lib.rs

src/lib.rs:
