//! Temporal request arrivals and batching windows.
//!
//! The paper's obfuscator receives a *stream* of requests and clusters
//! "the received queries" (§IV) — which implicitly requires collecting
//! requests for some window before obfuscating them together. This module
//! models that: Poisson arrivals over a time horizon, and a windowing
//! function turning the stream into batches. Experiment E12 sweeps the
//! window length to expose the deployment trade-off (bigger windows →
//! bigger batches → better sharing and breach probability, but higher
//! answer latency).

use crate::distributions::QuerySampler;
use crate::generator::WorkloadConfig;
use opaque::{ClientId, ClientRequest, PathQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{RoadNetwork, SpatialIndex};

/// A request stamped with its arrival time (seconds from stream start).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimedRequest {
    pub arrival: f64,
    pub request: ClientRequest,
}

/// Parameters for [`poisson_stream`].
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArrivalConfig {
    /// Mean request arrivals per second (λ of the Poisson process).
    pub rate_per_sec: f64,
    /// Length of the generated stream, in seconds.
    pub horizon_secs: f64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig { rate_per_sec: 2.0, horizon_secs: 60.0 }
    }
}

/// Generate a Poisson request stream over `map`. Spatial/protection
/// characteristics come from `workload` (its `num_requests` is ignored —
/// the stream length is governed by the horizon); timing from `arrivals`.
pub fn poisson_stream(
    map: &RoadNetwork,
    index: &SpatialIndex,
    workload: &WorkloadConfig,
    arrivals: &ArrivalConfig,
) -> Vec<TimedRequest> {
    assert!(arrivals.rate_per_sec > 0.0, "arrival rate must be positive");
    assert!(arrivals.horizon_secs > 0.0, "horizon must be positive");
    let mut rng = StdRng::seed_from_u64(workload.seed ^ 0x6172_7276); // "arrv"
    let sampler = QuerySampler::new(map, index, workload.queries, &mut rng);

    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut id = 0u32;
    loop {
        // Exponential inter-arrival times: -ln(U)/λ.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / arrivals.rate_per_sec;
        if t >= arrivals.horizon_secs {
            break;
        }
        let (s, d) = sampler.sample(&mut rng);
        let protection = sample_protection(workload, &mut rng);
        out.push(TimedRequest {
            arrival: t,
            request: ClientRequest::new(ClientId(id), PathQuery::new(s, d), protection),
        });
        id += 1;
    }
    out
}

fn sample_protection(workload: &WorkloadConfig, rng: &mut StdRng) -> opaque::ProtectionSettings {
    use crate::generator::ProtectionDistribution;
    match workload.protection {
        ProtectionDistribution::Fixed { f_s, f_t } => {
            opaque::ProtectionSettings::new(f_s, f_t).expect("validated at construction")
        }
        ProtectionDistribution::UniformRange { lo, hi } => {
            opaque::ProtectionSettings::new(rng.gen_range(lo..=hi), rng.gen_range(lo..=hi))
                .expect("range >= 1")
        }
    }
}

/// One batch cut from the stream, with its latency accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowBatch {
    /// Requests that arrived within the window, in arrival order.
    pub requests: Vec<ClientRequest>,
    /// Time the batch is released to the obfuscator (window close).
    pub release_at: f64,
    /// Mean time the batch's requests waited from arrival to release.
    pub mean_wait: f64,
}

/// Cut a stream into fixed-length windows. Empty windows produce no batch.
///
/// This is the *offline* (whole-stream, fixed-grid) windowing used for
/// workload analysis; a live deployment batches through
/// `opaque::service::Batcher`, whose deadline is measured from each
/// batch's oldest request rather than a global grid. Experiment E12 used
/// this function before the service layer existed and now drives the
/// `Batcher` directly; this one is kept as the pure-function reference for
/// stream post-processing.
pub fn window_batches(stream: &[TimedRequest], window_secs: f64) -> Vec<WindowBatch> {
    assert!(window_secs > 0.0, "window must be positive");
    let mut batches: Vec<WindowBatch> = Vec::new();
    let mut current: Vec<&TimedRequest> = Vec::new();
    let mut window_end = window_secs;

    let flush =
        |current: &mut Vec<&TimedRequest>, window_end: f64, batches: &mut Vec<WindowBatch>| {
            if current.is_empty() {
                return;
            }
            let mean_wait =
                current.iter().map(|r| window_end - r.arrival).sum::<f64>() / current.len() as f64;
            batches.push(WindowBatch {
                requests: current.iter().map(|r| r.request).collect(),
                release_at: window_end,
                mean_wait,
            });
            current.clear();
        };

    for tr in stream {
        while tr.arrival >= window_end {
            flush(&mut current, window_end, &mut batches);
            window_end += window_secs;
        }
        current.push(tr);
    }
    flush(&mut current, window_end, &mut batches);
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ProtectionDistribution;
    use roadnet::generators::{GridConfig, grid_network};

    fn setup() -> (RoadNetwork, SpatialIndex) {
        let g = grid_network(&GridConfig { width: 15, height: 15, seed: 8, ..Default::default() })
            .unwrap();
        let idx = SpatialIndex::build(&g);
        (g, idx)
    }

    fn stream(rate: f64, horizon: f64, seed: u64) -> Vec<TimedRequest> {
        let (g, idx) = setup();
        poisson_stream(
            &g,
            &idx,
            &WorkloadConfig { seed, ..Default::default() },
            &ArrivalConfig { rate_per_sec: rate, horizon_secs: horizon },
        )
    }

    #[test]
    fn poisson_rate_is_approximately_honoured() {
        let s = stream(5.0, 200.0, 1);
        let got = s.len() as f64 / 200.0;
        assert!((got - 5.0).abs() < 0.75, "rate {got} too far from 5.0");
        // Arrival times strictly increasing, within the horizon.
        for w in s.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
        assert!(s.last().unwrap().arrival < 200.0);
        // Client ids dense in arrival order.
        for (i, tr) in s.iter().enumerate() {
            assert_eq!(tr.request.client, ClientId(i as u32));
        }
    }

    #[test]
    fn windowing_partitions_the_stream() {
        let s = stream(3.0, 50.0, 2);
        let batches = window_batches(&s, 5.0);
        let total: usize = batches.iter().map(|b| b.requests.len()).sum();
        assert_eq!(total, s.len(), "every request lands in exactly one batch");
        for b in &batches {
            assert!(b.mean_wait >= 0.0 && b.mean_wait <= 5.0 + 1e-9);
            assert!((b.release_at / 5.0).fract().abs() < 1e-9, "release on window boundary");
        }
    }

    #[test]
    fn bigger_windows_mean_bigger_batches_and_longer_waits() {
        let s = stream(4.0, 100.0, 3);
        let small = window_batches(&s, 1.0);
        let large = window_batches(&s, 10.0);
        let mean_size = |b: &[WindowBatch]| {
            b.iter().map(|x| x.requests.len()).sum::<usize>() as f64 / b.len() as f64
        };
        let mean_wait = |b: &[WindowBatch]| {
            b.iter().map(|x| x.mean_wait * x.requests.len() as f64).sum::<f64>()
                / b.iter().map(|x| x.requests.len()).sum::<usize>() as f64
        };
        assert!(mean_size(&large) > mean_size(&small) * 5.0);
        assert!(mean_wait(&large) > mean_wait(&small));
    }

    #[test]
    fn sparse_stream_skips_empty_windows() {
        let s = stream(0.05, 100.0, 4); // ~5 requests over 100s
        let batches = window_batches(&s, 1.0);
        assert_eq!(batches.iter().map(|b| b.requests.len()).sum::<usize>(), s.len());
        for b in &batches {
            assert!(!b.requests.is_empty(), "no empty batches emitted");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(stream(2.0, 30.0, 9), stream(2.0, 30.0, 9));
        assert_ne!(stream(2.0, 30.0, 9), stream(2.0, 30.0, 10));
    }

    #[test]
    fn protection_range_respected_in_stream() {
        let (g, idx) = setup();
        let s = poisson_stream(
            &g,
            &idx,
            &WorkloadConfig {
                protection: ProtectionDistribution::UniformRange { lo: 2, hi: 4 },
                seed: 5,
                ..Default::default()
            },
            &ArrivalConfig { rate_per_sec: 3.0, horizon_secs: 40.0 },
        );
        for tr in &s {
            assert!((2..=4).contains(&tr.request.protection.f_s));
            assert!((2..=4).contains(&tr.request.protection.f_t));
        }
    }
}
