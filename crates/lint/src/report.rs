//! Rendering a [`LintReport`] for humans and for machines.
//!
//! The human format is one line per finding, `file:line: [rule] message`
//! — the shape editors and CI log scrapers already understand. The JSON
//! format is the whole report verbatim (violations, allowed sites,
//! unsafe census, counters) so downstream tooling never has to parse
//! prose.

use crate::engine::LintReport;

/// Render the editor-friendly line-per-finding form.
pub fn human(report: &LintReport) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("{}:{}: [{}] {}\n", v.file, v.line, v.rule, v.message));
    }
    out.push_str(&format!(
        "{} violation(s) · {} allowed site(s) · {} unsafe site(s) · {} file(s), {} doc(s) scanned\n",
        report.violations.len(),
        report.allowed.len(),
        report.census.len(),
        report.files_scanned,
        report.docs_checked,
    ));
    out
}

/// Render the whole report as pretty JSON.
pub fn json(report: &LintReport) -> String {
    serde_json::to_string_pretty(report).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

/// Render just the unsafe census as pretty JSON (the CI artifact).
pub fn census_json(report: &LintReport) -> String {
    serde_json::to_string_pretty(&report.census)
        .unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LintReport, Violation};
    use crate::rules::unsafety::UnsafeSite;

    fn sample() -> LintReport {
        LintReport {
            violations: vec![Violation {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                rule: "panic-path".into(),
                message: "boom".into(),
            }],
            census: vec![UnsafeSite {
                file: "crates/x/src/r.rs".into(),
                line: 3,
                kind: "block".into(),
                justification: "kernel contract".into(),
            }],
            allowed: Vec::new(),
            files_scanned: 2,
            docs_checked: 1,
        }
    }

    #[test]
    fn human_form_is_file_line_rule_message() {
        let h = human(&sample());
        assert!(h.starts_with("crates/x/src/lib.rs:7: [panic-path] boom\n"), "{h}");
        assert!(h.contains("1 violation(s)"));
    }

    #[test]
    fn json_round_trips_through_the_vendored_serde() {
        let j = json(&sample());
        let back: LintReport = serde_json::from_str(&j).expect("report JSON parses");
        assert_eq!(back.violations.len(), 1);
        assert_eq!(back.census[0].justification, "kernel contract");
        assert_eq!(back.files_scanned, 2);
    }

    #[test]
    fn census_json_is_a_bare_array() {
        let c = census_json(&sample());
        assert!(c.trim_start().starts_with('['), "{c}");
        let back: Vec<UnsafeSite> = serde_json::from_str(&c).expect("census JSON parses");
        assert_eq!(back.len(), 1);
    }
}
