//! Typed accounting for processed batches.
//!
//! [`BatchReport`] records what the experiments need from every batch:
//! server load (pairs, settled nodes), network redundancy (candidate vs
//! delivered path volume), obfuscation overhead (fakes added), per-client
//! breach probability, and measured bytes per hop. The obfuscation mode is
//! carried as the typed [`ObfuscationMode`] (serde-tagged, parameters
//! included) rather than a display string, and every client of a
//! *successfully processed* batch gets an explicit [`ClientOutcome`] —
//! nothing is silently dropped. The exception is a batch-fatal error
//! (verification caught a tampered result, or strict mode hit any
//! failure): processing aborts with the typed error instead of outcomes,
//! and a queue-drained batch is discarded with it (see
//! `OpaqueService::tick`).

use crate::obfuscator::ObfuscationMode;
use crate::protocol::HopTraffic;
use crate::query::ClientId;

/// What happened to one client's request within a processed batch.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ClientOutcome {
    /// The true path was extracted from the candidate set and delivered.
    Delivered,
    /// The true (source, destination) pair is disconnected on the
    /// backend's map — embedded and queried, but no path exists.
    Unreachable,
    /// The request failed admission validation and was never embedded in
    /// an obfuscated query; the reason is the rejecting error's message.
    Rejected {
        /// The rejecting error's message.
        reason: String,
    },
}

/// Accounting for one processed batch.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct BatchReport {
    /// Obfuscation mode used, with its parameters.
    pub mode: ObfuscationMode,
    /// Requests in the batch.
    pub num_requests: usize,
    /// Obfuscated queries sent to the backend.
    pub num_units: usize,
    /// Σ |S|·|T| over all units — the backend's query workload.
    pub total_pairs: u64,
    /// Fake endpoints the obfuscator had to generate.
    pub fakes_added: u64,
    /// Candidate result paths the backend returned (network download at
    /// the obfuscator).
    pub candidate_paths: u64,
    /// Total nodes across all candidate paths (proxy for bytes on the
    /// obfuscator–server link).
    pub candidate_path_nodes: u64,
    /// Total nodes across the paths actually delivered to clients.
    pub delivered_path_nodes: u64,
    /// Nodes the backend settled for this batch.
    pub server_settled: u64,
    /// Arc relaxations performed by the backend for this batch.
    pub server_relaxed: u64,
    /// Spanning trees the backend grew for this batch. Like the other
    /// `server_*` fields this is a per-batch delta of the backend's
    /// cumulative fleet counters ([`crate::ServerStats::delta_since`]),
    /// *not* a cumulative reading — the per-batch accounting tests pin
    /// this distinction.
    pub server_trees_grown: u64,
    /// Per-client breach probability (Definition 2 applied to the unit the
    /// client was embedded in). Clients rejected at admission do not
    /// appear — they were never embedded in a query.
    pub per_client_breach: Vec<(ClientId, f64)>,
    /// Measured bytes per hop of Figure 5 (requests, obfuscated queries,
    /// candidate results, delivered results), in the protocol's wire
    /// encoding.
    pub traffic: HopTraffic,
}

impl BatchReport {
    /// Mean breach probability across the batch's embedded clients.
    pub fn mean_breach(&self) -> f64 {
        if self.per_client_breach.is_empty() {
            return 0.0;
        }
        self.per_client_breach.iter().map(|(_, b)| b).sum::<f64>()
            / self.per_client_breach.len() as f64
    }

    /// Candidate-to-delivered volume ratio — the redundancy §II attributes
    /// to naive obfuscation ("overconsumption of server and network
    /// resources"). 1.0 means nothing wasted.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.delivered_path_nodes == 0 {
            return 0.0;
        }
        self.candidate_path_nodes as f64 / self.delivered_path_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_mean_breach_empty_is_zero() {
        assert_eq!(BatchReport::default().mean_breach(), 0.0);
        assert_eq!(BatchReport::default().redundancy_ratio(), 0.0);
    }

    #[test]
    fn report_serializes_with_typed_mode() {
        let report = BatchReport { mode: ObfuscationMode::SharedGlobal, ..Default::default() };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"mode\":\"SharedGlobal\""), "{json}");
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.mode, ObfuscationMode::SharedGlobal);
    }

    #[test]
    fn outcomes_round_trip() {
        for outcome in [
            ClientOutcome::Delivered,
            ClientOutcome::Unreachable,
            ClientOutcome::Rejected { reason: "node 9999 is not on the map".to_string() },
        ] {
            let json = serde_json::to_string(&outcome).unwrap();
            let back: ClientOutcome = serde_json::from_str(&json).unwrap();
            assert_eq!(back, outcome);
        }
    }
}
