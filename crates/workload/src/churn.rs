//! Rush-hour traffic churn: live weight-update schedules for the
//! dynamic-map experiments.
//!
//! The live-traffic regime interleaves serving with weight updates every
//! few ticks. Real congestion is *spatially localized* — a surge builds
//! around an epicenter (an incident, a stadium emptying) and decays —
//! so the schedule this module generates congests a compact zone of the
//! map rather than sprinkling random edges everywhere. That locality is
//! exactly what surgical cache invalidation
//! (`opaque::service::TreeCache::invalidate_edges`) exploits: cached
//! trees whose sweeps stay clear of the zone survive every tick, while
//! a drop-all policy re-cools the whole fleet each time.
//!
//! Schedules are pure data (`Vec` of per-round update batches), fully
//! determined by the seed, and independent of how the consumer
//! interleaves them with queries — the `e19_livemap` experiment replays
//! one batch of queries after each round, and the livemap-equivalence
//! harness threads them through both a cached and an uncached service.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::{EdgeId, RoadNetwork};

/// Configuration of a rush-hour churn schedule.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChurnConfig {
    /// Number of traffic ticks (update rounds) in the schedule.
    pub rounds: usize,
    /// Edges re-weighted per round (drawn from the congestion zone).
    pub updates_per_round: usize,
    /// Fraction of the map's edges forming the congestion zone — the
    /// `zone_fraction·|E|` edges nearest the epicenter. Must be in
    /// `(0, 1]`; small fractions model a localized incident.
    pub zone_fraction: f64,
    /// Peak congestion multiplier (≥ 1). Per-round factors ramp up
    /// towards this peak through the first half of the schedule and decay
    /// back towards free flow through the second half.
    pub surge: f64,
    /// RNG seed; schedules are reproducible per seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig { rounds: 8, updates_per_round: 4, zone_fraction: 0.15, surge: 3.0, seed: 0 }
    }
}

/// Generate a rush-hour schedule over `map`: one weight-update batch per
/// round, every entry a valid input to `RoadNetwork::update_weights`
/// (finite, non-negative, in-range edge ids). Weights are expressed
/// relative to the map's *current* weights at generation time, so apply
/// the rounds in order.
///
/// The epicenter is a seed-chosen node; the congestion zone is the
/// `zone_fraction` of edges whose midpoints lie nearest it (ties broken
/// by edge id, so the zone is deterministic). Each round re-weights
/// `updates_per_round` distinct zone edges to `base · factor`, where the
/// factor follows a tent profile over the schedule — building to `surge`
/// mid-schedule, relaxing after — plus per-edge jitter. The final round
/// restores every previously congested edge to its base weight, so a
/// full replay ends on the original map.
///
/// # Panics
/// Panics on a degenerate configuration: zero rounds or updates, a
/// non-finite or sub-1 surge, or `zone_fraction` outside `(0, 1]`.
pub fn rush_hour_schedule(map: &RoadNetwork, cfg: &ChurnConfig) -> Vec<Vec<(EdgeId, f64)>> {
    assert!(cfg.rounds >= 1, "a schedule needs at least one round");
    assert!(cfg.updates_per_round >= 1, "a round needs at least one update");
    assert!(cfg.surge.is_finite() && cfg.surge >= 1.0, "surge must be a finite factor >= 1");
    assert!(cfg.zone_fraction > 0.0 && cfg.zone_fraction <= 1.0, "zone_fraction must be in (0, 1]");

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6368_7572_6e21); // "churn!"
    let epicenter = map.point(roadnet::NodeId(rng.gen_range(0..map.num_nodes() as u32)));

    // The congestion zone: edges ranked by midpoint distance to the
    // epicenter, nearest first, ties by edge id for determinism.
    let mut ranked: Vec<(f64, usize)> = map
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| (map.point(e.a).midpoint(map.point(e.b)).distance(epicenter), i))
        .collect();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let zone_len =
        ((map.num_edges() as f64 * cfg.zone_fraction).ceil() as usize).clamp(1, map.num_edges());
    let zone: Vec<usize> = ranked[..zone_len].iter().map(|&(_, i)| i).collect();
    let base: Vec<f64> = map.edges().iter().map(|e| e.weight).collect();

    let mut congested: Vec<usize> = Vec::new();
    let mut schedule = Vec::with_capacity(cfg.rounds);
    for round in 0..cfg.rounds {
        if round + 1 == cfg.rounds {
            // Relief: the surge dissipates and every congested edge
            // returns to free flow.
            congested.sort_unstable();
            congested.dedup();
            schedule.push(congested.iter().map(|&i| (EdgeId::from_index(i), base[i])).collect());
            break;
        }
        // Tent profile peaking at surge mid-schedule.
        let peak_at = (cfg.rounds as f64 - 1.0) / 2.0;
        let ramp = 1.0 - ((round as f64 - peak_at).abs() / peak_at.max(1.0));
        let level = 1.0 + (cfg.surge - 1.0) * ramp.max(0.0);
        let mut batch = Vec::with_capacity(cfg.updates_per_round);
        for _ in 0..cfg.updates_per_round {
            let i = zone[rng.gen_range(0..zone.len())];
            // Per-edge jitter keeps rounds from being scalar multiples of
            // each other while staying within [1, level].
            let factor = 1.0 + (level - 1.0) * rng.gen_range(0.5..=1.0);
            batch.push((EdgeId::from_index(i), base[i] * factor));
            congested.push(i);
        }
        schedule.push(batch);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::{GridConfig, grid_network};

    fn grid() -> RoadNetwork {
        grid_network(&GridConfig { width: 16, height: 16, seed: 5, ..Default::default() }).unwrap()
    }

    #[test]
    fn schedule_is_deterministic_and_applies_cleanly() {
        let g = grid();
        let cfg = ChurnConfig { seed: 7, ..Default::default() };
        let a = rush_hour_schedule(&g, &cfg);
        let b = rush_hour_schedule(&g, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), cfg.rounds);
        let mut live = g.clone();
        for batch in &a {
            live.update_weights(batch).expect("every entry must be valid");
        }
        assert_ne!(
            a,
            rush_hour_schedule(&g, &ChurnConfig { seed: 8, ..Default::default() }),
            "different seeds diverge"
        );
    }

    #[test]
    fn final_round_restores_base_weights() {
        let g = grid();
        let cfg = ChurnConfig { rounds: 6, updates_per_round: 5, seed: 11, ..Default::default() };
        let schedule = rush_hour_schedule(&g, &cfg);
        let mut live = g.clone();
        let mut mid_schedule_changed = false;
        for (i, batch) in schedule.iter().enumerate() {
            let changed = live.update_weights(batch).unwrap();
            if i + 1 < schedule.len() && !changed.is_empty() {
                mid_schedule_changed = true;
            }
        }
        assert!(mid_schedule_changed, "the surge must actually move weights");
        for (e, base) in live.edges().iter().zip(g.edges()) {
            assert_eq!(e.weight, base.weight, "full replay ends on the original map");
        }
    }

    #[test]
    fn congestion_stays_inside_the_zone() {
        let g = grid();
        let cfg = ChurnConfig {
            rounds: 8,
            updates_per_round: 6,
            zone_fraction: 0.1,
            seed: 3,
            ..Default::default()
        };
        let schedule = rush_hour_schedule(&g, &cfg);
        // Collect every touched edge and check the spread: a 10% zone on a
        // 16x16 grid must not touch most of the map.
        let mut touched: Vec<u32> = schedule.iter().flatten().map(|&(e, _)| e.0).collect();
        touched.sort_unstable();
        touched.dedup();
        let zone_cap = (g.num_edges() as f64 * cfg.zone_fraction).ceil() as usize;
        assert!(
            touched.len() <= zone_cap,
            "{} distinct edges touched, zone holds {zone_cap}",
            touched.len()
        );
        // Surge factors stay within [base, base·surge].
        for (e, w) in schedule.iter().flatten() {
            let base = g.edge(*e).weight;
            assert!(*w >= base - 1e-12);
            assert!(*w <= base * cfg.surge + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "zone_fraction")]
    fn degenerate_zone_is_rejected() {
        let g = grid();
        rush_hour_schedule(&g, &ChurnConfig { zone_fraction: 0.0, ..Default::default() });
    }
}
