//! Criterion timings for E10: full OPAQUE pipeline (obfuscate → serve →
//! filter) for a 16-client batch under each obfuscation mode.

use criterion::{Criterion, criterion_group, criterion_main};
#[allow(deprecated)] // experiment still on the compat shim; migration tracked in ROADMAP
use opaque::OpaqueSystem;
use opaque::{ClusteringConfig, DirectionsServer, FakeSelection, ObfuscationMode, Obfuscator};
use pathsearch::SharingPolicy;
use roadnet::SpatialIndex;
use roadnet::generators::NetworkClass;
use std::hint::black_box;
use std::time::Duration;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

#[allow(deprecated)] // benchmark still on the compat shim; migration tracked in ROADMAP
fn bench(c: &mut Criterion) {
    let g = NetworkClass::Grid.generate(2_500, 0xBE).expect("valid network");
    let idx = SpatialIndex::build(&g);
    let requests = generate_requests(
        &g,
        &idx,
        &WorkloadConfig {
            num_requests: 16,
            queries: QueryDistribution::Hotspot { hotspots: 3, exponent: 1.0, spread: 0.08 },
            protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 4 },
            seed: 0xBE,
        },
    );

    let mut group = c.benchmark_group("e10_system");
    for mode in [
        ObfuscationMode::Independent,
        ObfuscationMode::SharedGlobal,
        ObfuscationMode::SharedClustered(ClusteringConfig::default()),
    ] {
        group.bench_function(mode.to_string(), |b| {
            b.iter_batched(
                || {
                    OpaqueSystem::new(
                        Obfuscator::new(g.clone(), FakeSelection::default_ring(), 0xBE),
                        DirectionsServer::new(g.clone(), SharingPolicy::PerSource),
                    )
                },
                |mut sys| {
                    let (results, report) =
                        sys.process_batch(black_box(&requests), mode).expect("ok");
                    black_box((results.len(), report.server_settled))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
