//! The Lemma 1 cost model.
//!
//! §III-B estimates the cost of a Dijkstra search "with s as the center and
//! the distance from s to t as the radius of a search area … as
//! `O(‖s,t‖²)`", and Lemma 1 extends this to an obfuscated path query:
//! `O(Σ_{s∈S} max_{t∈T} ‖s,t‖²)`. This module turns the asymptotic claim
//! into a *calibrated, testable* model: fit the constant on sample queries,
//! then predict the cost of arbitrary (obfuscated) queries and compare with
//! measurements (experiment E4).

use crate::dijkstra::{Goal, Searcher};
use rand::Rng;
use roadnet::{GraphView, NodeId};

/// `settled ≈ coeff · ‖s,t‖²`, fitted through the origin by least squares.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct CostModel {
    /// Settled nodes per squared unit of network distance.
    pub coeff: f64,
    /// Coefficient of determination of the fit on the calibration sample.
    pub r_squared: f64,
    /// Number of (distance, settled) observations used.
    pub samples: usize,
}

impl CostModel {
    /// Fit the model on `samples` random single-pair queries over `g`.
    ///
    /// Observations with zero distance (s == t) are skipped. Requires at
    /// least one usable observation.
    pub fn calibrate<G, R>(g: &G, samples: usize, rng: &mut R) -> CostModel
    where
        G: GraphView,
        R: Rng + ?Sized,
    {
        let n = g.num_nodes();
        assert!(n >= 2, "need at least two nodes to calibrate");
        let mut searcher = Searcher::new();
        let mut obs: Vec<(f64, f64)> = Vec::with_capacity(samples);
        while obs.len() < samples {
            let s = NodeId(rng.gen_range(0..n as u32));
            let t = NodeId(rng.gen_range(0..n as u32));
            if s == t {
                continue;
            }
            let stats = searcher.run(g, s, &Goal::Single(t));
            let Some(d) = searcher.distance(t) else { continue };
            if d <= 0.0 {
                continue;
            }
            obs.push((d, stats.settled as f64));
        }
        Self::fit(&obs)
    }

    /// Fit from explicit `(distance, settled)` observations.
    pub fn fit(observations: &[(f64, f64)]) -> CostModel {
        assert!(!observations.is_empty(), "need observations to fit");
        // Least squares through origin for y = c·x with x = d².
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for &(d, y) in observations {
            let x = d * d;
            sxy += x * y;
            sxx += x * x;
        }
        let coeff = if sxx > 0.0 { sxy / sxx } else { 0.0 };

        let mean_y: f64 =
            observations.iter().map(|&(_, y)| y).sum::<f64>() / observations.len() as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for &(d, y) in observations {
            let pred = coeff * d * d;
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - mean_y) * (y - mean_y);
        }
        let r_squared = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
        CostModel { coeff, r_squared, samples: observations.len() }
    }

    /// Predicted settled nodes for a single-pair query of network distance `d`.
    pub fn predict(&self, d: f64) -> f64 {
        self.coeff * d * d
    }

    /// Lemma 1: predicted total settled nodes for an obfuscated query, given
    /// for each source the *maximum* network distance to any target.
    pub fn predict_obfuscated(&self, max_dist_per_source: &[f64]) -> f64 {
        max_dist_per_source.iter().map(|&d| self.predict(d)).sum()
    }
}

/// Measured vs predicted pair, with relative error, as recorded by E4.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct CostObservation {
    /// Settled-node count predicted by the calibrated model.
    pub predicted: f64,
    /// Settled-node count actually measured.
    pub measured: f64,
}

impl CostObservation {
    /// `|measured − predicted| / measured` (0 when both are 0).
    pub fn relative_error(&self) -> f64 {
        if self.measured == 0.0 {
            if self.predicted == 0.0 { 0.0 } else { f64::INFINITY }
        } else {
            (self.measured - self.predicted).abs() / self.measured
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand::rngs::StdRng;
    use roadnet::generators::{GridConfig, grid_network};

    #[test]
    fn fit_recovers_exact_quadratic() {
        let obs: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 3.5 * (i * i) as f64)).collect();
        let m = CostModel::fit(&obs);
        assert!((m.coeff - 3.5).abs() < 1e-9);
        assert!(m.r_squared > 0.999999);
        assert_eq!(m.samples, 19);
    }

    #[test]
    fn fit_tolerates_noise() {
        let obs: Vec<(f64, f64)> = (1..50)
            .map(|i| {
                let d = i as f64 / 2.0;
                // ±10% deterministic "noise".
                let noise = 1.0 + 0.1 * ((i % 5) as f64 - 2.0) / 2.0;
                (d, 2.0 * d * d * noise)
            })
            .collect();
        let m = CostModel::fit(&obs);
        assert!((m.coeff - 2.0).abs() < 0.2, "coeff {}", m.coeff);
        assert!(m.r_squared > 0.9);
    }

    #[test]
    fn calibration_on_grid_explains_cost_well() {
        // On a grid, the settled area of a Dijkstra ball of radius d is
        // genuinely Θ(d²). The fit is only moderately tight, though:
        // uniform pairs include many near-boundary sources whose balls are
        // clipped to a half or quarter, spreading settled counts by up to
        // ~4× at equal d (measured r² across seeds: ≈ 0.34–0.67).
        let g = grid_network(&GridConfig { width: 40, height: 40, seed: 17, ..Default::default() })
            .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let m = CostModel::calibrate(&g, 60, &mut rng);
        assert!(m.coeff > 0.0);
        assert!(m.r_squared > 0.25, "r² {} too low for a grid", m.r_squared);

        // Out-of-sample check on a fresh *interior* query: the quadratic
        // model assumes the Dijkstra ball is not clipped by the network
        // boundary, so corner-to-corner pairs (clipped to a quarter-ball)
        // are exactly where the O(d²) bound is loose.
        let mut searcher = Searcher::new();
        let (s, t) = (NodeId(20 * 40 + 20), NodeId(28 * 40 + 28));
        let stats = searcher.run(&g, s, &Goal::Single(t));
        let d = searcher.distance(t).unwrap();
        let obs = CostObservation { predicted: m.predict(d), measured: stats.settled as f64 };
        assert!(obs.relative_error() < 0.8, "relative error {}", obs.relative_error());
    }

    #[test]
    fn fit_on_unclipped_interior_balls_is_tight() {
        // The regression guard for the fitting machinery itself: search
        // from the grid centre to targets within radius < 20 keeps every
        // Dijkstra ball entirely inside the 40×40 network, the regime the
        // O(d²) model actually describes. A fitting bug that degrades the
        // model shows up here, without the boundary-clipping spread that
        // forces the uniform-pair bound above to be loose.
        let g = grid_network(&GridConfig { width: 40, height: 40, seed: 17, ..Default::default() })
            .unwrap();
        let centre = NodeId(20 * 40 + 20);
        let mut searcher = Searcher::new();
        let mut obs: Vec<(f64, f64)> = Vec::new();
        for (dx, dy) in [
            (3i32, 1i32),
            (0, 5),
            (6, 2),
            (4, 4),
            (8, 1),
            (2, 9),
            (10, 3),
            (7, 7),
            (12, 2),
            (5, 11),
        ] {
            let t = NodeId(((20 + dy) * 40 + 20 + dx) as u32);
            let stats = searcher.run(&g, centre, &Goal::Single(t));
            let d = searcher.distance(t).expect("grid is connected");
            obs.push((d, stats.settled as f64));
        }
        let m = CostModel::fit(&obs);
        assert!(m.coeff > 0.0);
        assert!(m.r_squared > 0.6, "interior r² {} too low", m.r_squared);
    }

    #[test]
    fn obfuscated_prediction_is_sum_over_sources() {
        let m = CostModel { coeff: 2.0, r_squared: 1.0, samples: 0 };
        let pred = m.predict_obfuscated(&[1.0, 2.0, 3.0]);
        assert!((pred - 2.0 * (1.0 + 4.0 + 9.0)).abs() < 1e-12);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(CostObservation { predicted: 0.0, measured: 0.0 }.relative_error(), 0.0);
        assert!(CostObservation { predicted: 1.0, measured: 0.0 }.relative_error().is_infinite());
        let o = CostObservation { predicted: 8.0, measured: 10.0 };
        assert!((o.relative_error() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need observations")]
    fn empty_fit_panics() {
        let _ = CostModel::fit(&[]);
    }
}
