//! Region-restricted graph views with **stable node ids**.
//!
//! A [`RegionView`] exposes an arbitrary node subset of an underlying
//! graph through the same [`GraphView`] trait the search algorithms run
//! on, *without* remapping node ids: the view keeps the full id space
//! `0..num_nodes()` and simply hides every arc that touches a node
//! outside the member set. Stable ids are the point — a partition layer
//! (see `opaque::service::partition`) can hand a shard a view of its
//! owned region plus halo and still compare node ids, cache keys, and
//! query endpoints against whole-map results without any translation
//! table.
//!
//! Hidden nodes keep their coordinates (so spatial reasoning about the
//! cut boundary still works) but have no arcs in either direction: a
//! member's arc into a non-member is filtered, and a non-member has no
//! outgoing arcs at all. This keeps the symmetry claim of the underlying
//! graph intact — an arc `a → b` survives iff both endpoints are members,
//! exactly when its reverse `b → a` does.

use crate::error::{Result, RoadNetError};
use crate::geo::Point;
use crate::graph::GraphView;
use crate::ids::NodeId;

/// A membership-filtered view of a graph, preserving node ids.
///
/// ```
/// use roadnet::generators::{GridConfig, grid_network};
/// use roadnet::{GraphView, NodeId, RegionView};
///
/// let g = grid_network(&GridConfig { width: 4, height: 4, ..Default::default() }).unwrap();
/// // Keep only the left half of the grid.
/// let members: Vec<bool> = (0..g.num_nodes()).map(|i| i % 4 < 2).collect();
/// let view = RegionView::new(&g, members).unwrap();
/// assert_eq!(view.num_nodes(), g.num_nodes()); // same id space
/// let mut out = 0;
/// view.for_each_arc(NodeId(0), &mut |to, _| {
///     assert!(view.contains(to));
///     out += 1;
/// });
/// assert!(out > 0);
/// ```
#[derive(Clone, Debug)]
pub struct RegionView<G> {
    graph: G,
    members: Vec<bool>,
    member_count: usize,
}

impl<G: GraphView> RegionView<G> {
    /// Wrap `graph`, keeping exactly the nodes flagged in `members`.
    ///
    /// # Errors
    /// [`RoadNetError::InvalidRegion`] when `members` does not have one
    /// flag per node of the underlying graph.
    pub fn new(graph: G, members: Vec<bool>) -> Result<Self> {
        if members.len() != graph.num_nodes() {
            return Err(RoadNetError::InvalidRegion {
                reason: format!(
                    "region membership has {} flags for a graph of {} nodes",
                    members.len(),
                    graph.num_nodes()
                ),
            });
        }
        let member_count = members.iter().filter(|&&m| m).count();
        Ok(RegionView { graph, members, member_count })
    }

    /// Wrap `graph`, keeping exactly the listed nodes (duplicates and
    /// out-of-range ids are rejected by the membership length check on
    /// the flags the list produces — out-of-range ids error here).
    ///
    /// # Errors
    /// [`RoadNetError::InvalidRegion`] for a node id outside the graph.
    pub fn from_nodes(graph: G, nodes: &[NodeId]) -> Result<Self> {
        let mut members = vec![false; graph.num_nodes()];
        for &n in nodes {
            let i = n.index();
            if i >= members.len() {
                return Err(RoadNetError::InvalidRegion {
                    reason: format!("region node {i} outside graph of {} nodes", members.len()),
                });
            }
            members[i] = true;
        }
        Self::new(graph, members)
    }

    /// Whether node `n` is a member of the region (out-of-range: no).
    pub fn contains(&self, n: NodeId) -> bool {
        self.members.get(n.index()).copied().unwrap_or(false)
    }

    /// Number of member nodes (not the id-space size — see
    /// [`GraphView::num_nodes`]).
    pub fn member_count(&self) -> usize {
        self.member_count
    }

    /// The membership flags, one per node id.
    pub fn members(&self) -> &[bool] {
        &self.members
    }

    /// The wrapped graph.
    pub fn inner(&self) -> &G {
        &self.graph
    }
}

impl<G: GraphView> GraphView for RegionView<G> {
    fn num_nodes(&self) -> usize {
        // Stable ids: the view keeps the full id space and hides
        // non-members by disconnecting them instead of renumbering.
        self.graph.num_nodes()
    }

    fn point(&self, n: NodeId) -> Point {
        self.graph.point(n)
    }

    fn for_each_arc(&self, n: NodeId, f: &mut dyn FnMut(NodeId, f64)) {
        if !self.contains(n) {
            return;
        }
        self.graph.for_each_arc(n, &mut |to, w| {
            if self.contains(to) {
                f(to, w);
            }
        });
    }

    fn is_symmetric(&self) -> bool {
        // Membership filtering keeps symmetry: `a → b` survives iff both
        // ends are members, which is exactly when `b → a` survives.
        self.graph.is_symmetric()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GridConfig, grid_network};
    use crate::graph::RoadNetwork;

    fn grid() -> RoadNetwork {
        grid_network(&GridConfig { width: 5, height: 5, seed: 1, ..Default::default() }).unwrap()
    }

    #[test]
    fn membership_length_is_validated() {
        let g = grid();
        assert!(matches!(
            RegionView::new(&g, vec![true; 3]),
            Err(RoadNetError::InvalidRegion { .. })
        ));
        assert!(RegionView::new(&g, vec![true; g.num_nodes()]).is_ok());
    }

    #[test]
    fn from_nodes_rejects_out_of_range_ids() {
        let g = grid();
        let bad = NodeId::from_index(g.num_nodes());
        assert!(matches!(
            RegionView::from_nodes(&g, &[NodeId(0), bad]),
            Err(RoadNetError::InvalidRegion { .. })
        ));
        let v = RegionView::from_nodes(&g, &[NodeId(0), NodeId(1), NodeId(1)]).unwrap();
        assert_eq!(v.member_count(), 2); // duplicates collapse
    }

    #[test]
    fn ids_are_stable_and_cut_arcs_are_hidden() {
        let g = grid();
        let n = g.num_nodes();
        // Left three columns of the 5x5 grid.
        let members: Vec<bool> = (0..n).map(|i| i % 5 < 3).collect();
        let view = RegionView::new(&g, members.clone()).unwrap();
        assert_eq!(view.num_nodes(), n);
        assert_eq!(view.member_count(), 15);
        for (i, member) in members.iter().enumerate() {
            let node = NodeId::from_index(i);
            assert_eq!(view.point(node), g.point(node));
            let mut full = 0usize;
            let mut kept = 0usize;
            g.for_each_arc(node, &mut |_, _| full += 1);
            view.for_each_arc(node, &mut |to, w| {
                assert!(view.contains(to), "leaked arc to non-member {to:?}");
                assert!(w > 0.0);
                kept += 1;
            });
            if !member {
                assert_eq!(kept, 0, "non-member {i} still has arcs");
            } else {
                assert!(kept <= full);
            }
        }
        // The column-2/column-3 cut actually removed something.
        let total_kept: usize = (0..n)
            .map(|i| {
                let mut d = 0;
                view.for_each_arc(NodeId::from_index(i), &mut |_, _| d += 1);
                d
            })
            .sum();
        assert!(total_kept < g.num_arcs());
    }

    #[test]
    fn symmetry_claim_passes_through() {
        let g = grid();
        let members = vec![true; g.num_nodes()];
        let view = RegionView::new(&g, members).unwrap();
        assert_eq!(view.is_symmetric(), g.is_symmetric());
        // A full-membership view is arc-for-arc identical.
        for i in 0..g.num_nodes() {
            let mut a = Vec::new();
            let mut b = Vec::new();
            g.for_each_arc(NodeId::from_index(i), &mut |to, w| a.push((to, w)));
            view.for_each_arc(NodeId::from_index(i), &mut |to, w| b.push((to, w)));
            assert_eq!(a, b);
        }
    }
}
