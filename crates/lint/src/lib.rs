//! # opaque-lint — the workspace invariant checker
//!
//! Three of this repository's load-bearing guarantees are social
//! conventions the compiler cannot see: report bytes are a function of
//! (map, batch, seed) alone; every `unsafe` carries its proof
//! obligation in writing; the network hot path degrades per-connection,
//! never per-process. `opaque-lint` turns each convention into a
//! mechanical check over the token stream:
//!
//! | rule | what it enforces | where |
//! |---|---|---|
//! | `hash-iter` | no HashMap/HashSet order-exposing iteration | report-affecting crates |
//! | `wall-clock` | no `Instant::now` / `SystemTime` | report-affecting crates |
//! | `safety-comment` | `// SAFETY:` above every `unsafe`, censused | whole workspace |
//! | `panic-path` | no unwrap/expect/panic!/indexing | reactor, codec, gateway hot path |
//! | `doc-ref` | backticked paths and `module::path`s resolve | design docs |
//! | `allow-marker` | every exception is named and justified | wherever markers appear |
//!
//! The analysis is a hand-rolled lexer ([`lexer`]) plus token-pattern
//! rules ([`rules`]) — no `syn`, no type information, zero new
//! dependencies. That buys false-positive honesty: where the heuristic
//! is wrong, the site carries an allow marker — a `lint: allow`
//! comment naming the rule and the why — so every exception is
//! greppable and argued in place. See
//! `docs/static_analysis.md` for the full catalog and the marker
//! grammar.
//!
//! Run it: `cargo run -p opaque-lint -- --format human`. CI runs the
//! same binary and publishes the unsafe census as an artifact; the
//! workspace test `tests/workspace_clean.rs` pins a clean run, so a new
//! violation fails `cargo test` before it fails CI.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use config::Config;
pub use engine::{AllowedSite, LintReport, Violation, run};
pub use rules::unsafety::UnsafeSite;
