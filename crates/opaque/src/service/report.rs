//! Typed accounting for processed batches.
//!
//! [`BatchReport`] records what the experiments need from every batch:
//! server load (pairs, settled nodes), network redundancy (candidate vs
//! delivered path volume), obfuscation overhead (fakes added), per-client
//! breach probability, and measured bytes per hop. The obfuscation mode is
//! carried as the typed [`ObfuscationMode`] (serde-tagged, parameters
//! included) rather than a display string, and every client of a
//! *successfully processed* batch gets an explicit [`ClientOutcome`] —
//! nothing is silently dropped. The exception is a batch-fatal error
//! (verification caught a tampered result, or strict mode hit any
//! failure): processing aborts with the typed error instead of outcomes,
//! and a queue-drained batch is discarded with it (see
//! `OpaqueService::tick`).

use crate::obfuscator::ObfuscationMode;
use crate::protocol::HopTraffic;
use crate::query::ClientId;

/// What happened to one client's request within a processed batch.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ClientOutcome {
    /// The true path was extracted from the candidate set and delivered.
    Delivered,
    /// The true (source, destination) pair is disconnected on the
    /// backend's map — embedded and queried, but no path exists.
    Unreachable,
    /// The request failed admission validation and was never embedded in
    /// an obfuscated query; the reason is the rejecting error's message.
    Rejected {
        /// The rejecting error's message.
        reason: String,
    },
}

/// Accounting for one processed batch.
///
/// # Serialization and the determinism oracle
///
/// The serialized report is the repository's cross-policy determinism
/// oracle: neither [`crate::ExecutionPolicy`] nor
/// [`crate::service::CachePolicy`] may change a single report byte
/// (`tests/parallel_equivalence.rs`, `tests/cache_equivalence.rs`). Every
/// *logical* counter honors that by construction — cache hits replay the
/// skipped sweep's counters exactly. The two *physical* observability
/// fields ([`BatchReport::tree_cache_hits`] /
/// [`BatchReport::tree_cache_misses`]) necessarily differ across cache
/// policies (and across worker-pool schedules, which move units between
/// shard-local caches), so the hand-written `Serialize` impl below
/// deliberately keeps them **off the wire**; read them from the struct or
/// from the backend's [`crate::ServerStats`]. Deserialized reports carry
/// them as 0.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchReport {
    /// Obfuscation mode used, with its parameters.
    pub mode: ObfuscationMode,
    /// Requests in the batch.
    pub num_requests: usize,
    /// Obfuscated queries sent to the backend.
    pub num_units: usize,
    /// Σ |S|·|T| over all units — the backend's query workload.
    pub total_pairs: u64,
    /// Fake endpoints the obfuscator had to generate.
    pub fakes_added: u64,
    /// Candidate result paths the backend returned (network download at
    /// the obfuscator).
    pub candidate_paths: u64,
    /// Total nodes across all candidate paths (proxy for bytes on the
    /// obfuscator–server link).
    pub candidate_path_nodes: u64,
    /// Total nodes across the paths actually delivered to clients.
    pub delivered_path_nodes: u64,
    /// Nodes the backend settled for this batch.
    pub server_settled: u64,
    /// Arc relaxations performed by the backend for this batch.
    pub server_relaxed: u64,
    /// Spanning trees the backend grew for this batch. Like the other
    /// `server_*` fields this is a per-batch delta of the backend's
    /// cumulative fleet counters ([`crate::ServerStats::delta_since`]),
    /// *not* a cumulative reading — the per-batch accounting tests pin
    /// this distinction.
    pub server_trees_grown: u64,
    /// Backend trees served by cache adoption this batch (a per-batch
    /// delta like the `server_*` fields; 0 under
    /// [`crate::service::CachePolicy::Off`]). **Not serialized** — see the
    /// type-level docs.
    pub tree_cache_hits: u64,
    /// Backend trees grown for real after a cache consultation this batch
    /// (per-batch delta; 0 when no cache is attached). **Not
    /// serialized** — see the type-level docs.
    pub tree_cache_misses: u64,
    /// Per-client breach probability (Definition 2 applied to the unit the
    /// client was embedded in). Clients rejected at admission do not
    /// appear — they were never embedded in a query.
    pub per_client_breach: Vec<(ClientId, f64)>,
    /// Measured bytes per hop of Figure 5 (requests, obfuscated queries,
    /// candidate results, delivered results), in the protocol's wire
    /// encoding.
    pub traffic: HopTraffic,
}

// Hand-written (the vendored serde derive has no `#[serde(skip)]`): the
// wire form carries every logical field in declaration order — matching
// what the derive produced before the cache fields existed — and omits
// the two physical cache counters on purpose (see the type-level docs).
impl serde::Serialize for BatchReport {
    fn to_value(&self) -> serde::Value {
        // Exhaustive destructuring (no `..`): adding a field to
        // BatchReport must fail to compile here, so a new logical counter
        // can never silently fall off the wire; only the two cache
        // counters are consciously discarded.
        let BatchReport {
            mode,
            num_requests,
            num_units,
            total_pairs,
            fakes_added,
            candidate_paths,
            candidate_path_nodes,
            delivered_path_nodes,
            server_settled,
            server_relaxed,
            server_trees_grown,
            tree_cache_hits: _,
            tree_cache_misses: _,
            per_client_breach,
            traffic,
        } = self;
        serde::Value::Object(vec![
            ("mode".to_string(), mode.to_value()),
            ("num_requests".to_string(), num_requests.to_value()),
            ("num_units".to_string(), num_units.to_value()),
            ("total_pairs".to_string(), total_pairs.to_value()),
            ("fakes_added".to_string(), fakes_added.to_value()),
            ("candidate_paths".to_string(), candidate_paths.to_value()),
            ("candidate_path_nodes".to_string(), candidate_path_nodes.to_value()),
            ("delivered_path_nodes".to_string(), delivered_path_nodes.to_value()),
            ("server_settled".to_string(), server_settled.to_value()),
            ("server_relaxed".to_string(), server_relaxed.to_value()),
            ("server_trees_grown".to_string(), server_trees_grown.to_value()),
            ("per_client_breach".to_string(), per_client_breach.to_value()),
            ("traffic".to_string(), traffic.to_value()),
        ])
    }
}

impl serde::Deserialize for BatchReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = match v {
            serde::Value::Object(e) => e.as_slice(),
            _ => return Err(serde::DeError::expected("object for struct BatchReport")),
        };
        let field = |name: &str| serde::__field(entries, name);
        Ok(BatchReport {
            mode: serde::Deserialize::from_value(field("mode"))?,
            num_requests: serde::Deserialize::from_value(field("num_requests"))?,
            num_units: serde::Deserialize::from_value(field("num_units"))?,
            total_pairs: serde::Deserialize::from_value(field("total_pairs"))?,
            fakes_added: serde::Deserialize::from_value(field("fakes_added"))?,
            candidate_paths: serde::Deserialize::from_value(field("candidate_paths"))?,
            candidate_path_nodes: serde::Deserialize::from_value(field("candidate_path_nodes"))?,
            delivered_path_nodes: serde::Deserialize::from_value(field("delivered_path_nodes"))?,
            server_settled: serde::Deserialize::from_value(field("server_settled"))?,
            server_relaxed: serde::Deserialize::from_value(field("server_relaxed"))?,
            server_trees_grown: serde::Deserialize::from_value(field("server_trees_grown"))?,
            // Off the wire by design; a deserialized report reads 0.
            tree_cache_hits: 0,
            tree_cache_misses: 0,
            per_client_breach: serde::Deserialize::from_value(field("per_client_breach"))?,
            traffic: serde::Deserialize::from_value(field("traffic"))?,
        })
    }
}

impl BatchReport {
    /// Mean breach probability across the batch's embedded clients.
    pub fn mean_breach(&self) -> f64 {
        if self.per_client_breach.is_empty() {
            return 0.0;
        }
        self.per_client_breach.iter().map(|(_, b)| b).sum::<f64>()
            / self.per_client_breach.len() as f64
    }

    /// Candidate-to-delivered volume ratio — the redundancy §II attributes
    /// to naive obfuscation ("overconsumption of server and network
    /// resources"). 1.0 means nothing wasted.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.delivered_path_nodes == 0 {
            return 0.0;
        }
        self.candidate_path_nodes as f64 / self.delivered_path_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_mean_breach_empty_is_zero() {
        assert_eq!(BatchReport::default().mean_breach(), 0.0);
        assert_eq!(BatchReport::default().redundancy_ratio(), 0.0);
    }

    #[test]
    fn report_serializes_with_typed_mode() {
        let report = BatchReport { mode: ObfuscationMode::SharedGlobal, ..Default::default() };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"mode\":\"SharedGlobal\""), "{json}");
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.mode, ObfuscationMode::SharedGlobal);
    }

    #[test]
    fn cache_counters_stay_off_the_wire() {
        // The physical hit/miss pair must never reach the serialized
        // report — it is the one thing that distinguishes cache policies,
        // and the serialized report is the cross-policy determinism
        // oracle.
        let report = BatchReport {
            server_trees_grown: 7,
            tree_cache_hits: 5,
            tree_cache_misses: 2,
            ..Default::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("tree_cache"), "{json}");
        // Two reports differing only in cache counters serialize
        // byte-identically.
        let other = BatchReport { server_trees_grown: 7, ..Default::default() };
        assert_eq!(json, serde_json::to_string(&other).unwrap());
        // Round-tripping keeps every logical field and zeroes the pair.
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.server_trees_grown, 7);
        assert_eq!((back.tree_cache_hits, back.tree_cache_misses), (0, 0));
    }

    #[test]
    fn wire_field_order_matches_the_historical_derive() {
        // Consumers parse reports positionally in spreadsheets; keep the
        // hand-written impl aligned with the old derive layout.
        let json = serde_json::to_string(&BatchReport::default()).unwrap();
        let mode = json.find("\"mode\"").unwrap();
        let first = json.find("\"num_requests\"").unwrap();
        let last = json.find("\"traffic\"").unwrap();
        assert!(mode < first && first < last, "{json}");
    }

    #[test]
    fn outcomes_round_trip() {
        for outcome in [
            ClientOutcome::Delivered,
            ClientOutcome::Unreachable,
            ClientOutcome::Rejected { reason: "node 9999 is not on the map".to_string() },
        ] {
            let json = serde_json::to_string(&outcome).unwrap();
            let back: ClientOutcome = serde_json::from_str(&json).unwrap();
            assert_eq!(back, outcome);
        }
    }
}
