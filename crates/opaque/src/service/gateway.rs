//! The gateway vocabulary: typed admission, per-client delivery events.
//!
//! The paper's deployment (§IV, Figures 5–6) is a four-hop message loop —
//! client → obfuscator → server → obfuscator → one [`ResultMsg`] back to
//! *each* client. The service's front door models that last hop
//! explicitly: instead of answering a whole batch with one monolithic
//! report, [`crate::OpaqueService::tick`] / [`crate::OpaqueService::flush`]
//! emit an ordered stream of [`ServiceEvent`]s — one per-client terminal
//! event per request, then a trailing [`ServiceEvent::BatchFlushed`]
//! carrying the batch's [`BatchReport`] (which remains the repository's
//! byte-level determinism oracle).
//!
//! Admission is typed too: [`crate::OpaqueService::submit`] returns a
//! [`SubmitOutcome`] — accepted with a ticket, deferred to the next batch
//! window (duplicate [`ClientId`]s no longer fail the submit), or refused
//! outright with a [`RejectReason`] — under a builder-configured
//! [`AdmissionPolicy`]: a bounded queue depth (backpressure), an optional
//! per-request deadline (requests that wait too long are shed, not
//! served stale), and two [`Priority`] lanes with interactive draining
//! first.
//!
//! [`ResultMsg`]: crate::protocol::ResultMsg
//! [`ClientId`]: crate::query::ClientId

use crate::error::{OpaqueError, Result};
use crate::protocol::ResultMsg;
use crate::query::ClientId;
use crate::service::batcher::Ticket;
use crate::service::report::BatchReport;
use std::fmt;

/// Which admission lane a request rides in.
///
/// The gateway drains the interactive lane first when a batch forms, so
/// under overload bulk requests absorb the queueing delay (and the
/// deadline shedding) while interactive requests keep their latency —
/// experiment `e16` measures exactly this separation.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Priority {
    /// Latency-sensitive traffic; drained before any bulk request.
    #[default]
    Interactive,
    /// Throughput traffic; waits behind the interactive lane.
    Bulk,
}

impl Priority {
    /// Stable lowercase name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Admission-control knobs of the gateway, configured on
/// [`crate::ServiceConfig`] / [`crate::ServiceBuilder::admission_policy`].
///
/// Orthogonal to [`crate::BatchPolicy`]: the batch policy decides *when a
/// pending window flushes*; the admission policy decides *which requests
/// are allowed to wait for one* — how many may queue at once, and how
/// long any of them may wait before being shed.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdmissionPolicy {
    /// Maximum requests queued at once, across both lanes and the
    /// deferred set. Submissions beyond this depth are refused with
    /// [`RejectReason::QueueFull`] — backpressure, not silent buffering.
    pub queue_depth: usize,
    /// Per-request deadline in queue seconds. A request that has waited
    /// longer than this when the gateway next ticks is shed with a
    /// [`ServiceEvent::Rejected`] ([`RejectReason::DeadlineExpired`])
    /// instead of being served stale. `None` disables shedding.
    pub deadline: Option<f64>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy { queue_depth: 1024, deadline: None }
    }
}

impl AdmissionPolicy {
    /// Check the policy is satisfiable.
    pub fn validate(&self) -> Result<()> {
        if self.queue_depth == 0 {
            return Err(OpaqueError::InvalidConfig {
                reason: "admission policy: queue_depth must be >= 1".to_string(),
            });
        }
        if let Some(d) = self.deadline {
            if !d.is_finite() || d <= 0.0 {
                return Err(OpaqueError::InvalidConfig {
                    reason: format!("admission policy: deadline must be finite and > 0, got {d}"),
                });
            }
        }
        Ok(())
    }
}

/// Why the gateway refused (or shed) a request.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum RejectReason {
    /// The admission queue is at [`AdmissionPolicy::queue_depth`]; the
    /// request was refused at the door and never ticketed.
    QueueFull {
        /// The configured depth the queue was at.
        depth: usize,
    },
    /// A zero protection size — malformed before any map is consulted.
    InvalidProtection {
        /// Requested source-set size.
        f_s: u32,
        /// Requested target-set size.
        f_t: u32,
    },
    /// The request waited past [`AdmissionPolicy::deadline`] and was shed
    /// from the queue instead of being served stale.
    DeadlineExpired {
        /// Seconds the request had waited when it was shed.
        waited: f64,
    },
    /// The pipeline could not serve the request (validation or
    /// obfuscation infeasibility) — the event form of
    /// [`crate::ClientOutcome::Rejected`], carrying the same message.
    Infeasible {
        /// The rejecting error's message.
        reason: String,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { depth } => {
                write!(f, "admission queue full ({depth} requests queued)")
            }
            RejectReason::InvalidProtection { f_s, f_t } => {
                write!(f, "invalid protection settings (f_S={f_s}, f_T={f_t}); both must be >= 1")
            }
            RejectReason::DeadlineExpired { waited } => {
                write!(f, "request deadline expired after waiting {waited:.3}s")
            }
            RejectReason::Infeasible { reason } => f.write_str(reason),
        }
    }
}

/// What [`crate::OpaqueService::submit`] decided about one request.
///
/// Submission is total — it never returns an `Err` — because every
/// admission verdict is a legitimate, typed answer the caller must
/// handle, not an exceptional condition.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
#[must_use = "the gateway may have refused or deferred the request"]
pub enum SubmitOutcome {
    /// Queued in its lane for the current batch window.
    Accepted(Ticket),
    /// The client already has a request in the current window; this one
    /// is held back and joins the *next* window once the blocking request
    /// drains (duplicate [`ClientId`]s no longer fail the submit).
    ///
    /// [`ClientId`]: crate::query::ClientId
    Deferred(Ticket),
    /// Refused at the door; no ticket was issued and no event will
    /// follow.
    Rejected(RejectReason),
}

impl SubmitOutcome {
    /// The issued ticket, when one was (accepted or deferred).
    pub fn ticket(&self) -> Option<Ticket> {
        match self {
            SubmitOutcome::Accepted(t) | SubmitOutcome::Deferred(t) => Some(*t),
            SubmitOutcome::Rejected(_) => None,
        }
    }

    /// True for [`SubmitOutcome::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitOutcome::Accepted(_))
    }
}

/// One event of the gateway's ordered output stream.
///
/// [`crate::OpaqueService::tick`] / [`crate::OpaqueService::flush`] emit:
/// pending [`ServiceEvent::Cancelled`] acknowledgements first, then any
/// deadline [`ServiceEvent::Rejected`] sheddings, then — when a batch
/// flushed — one terminal event per request of the batch *in batch
/// request order* (interactive lane before bulk), closed by a trailing
/// [`ServiceEvent::BatchFlushed`]. Every ticketed request resolves to
/// exactly one terminal event — `ResponseReady`, `Unreachable`,
/// `Rejected`, or `Cancelled` — with one exception: a *batch-fatal*
/// processing error (result verification caught tampering, or a strict
/// mode failure) discards the drained window, so its tickets resolve
/// through the returned error instead of events; cancellation and
/// shedding acknowledgements are restored and re-emitted on the next
/// tick even then — and re-restored if that tick fails too, so
/// consecutive failed windows never consume an ack.
///
/// Batch-fatal errors are distinct from **connection-level** failures,
/// which the gateway never sees: when a transport endpoint vanishes
/// after submitting (a closed socket, a departed subscriber), the batch
/// still runs and the terminal event is still emitted in order — it is
/// the transport layer's job to drop and count the undeliverable reply
/// (the `opaque-net` server's `dropped_replies` stat), never to fail
/// the batch or re-route the event. One dead consumer therefore cannot
/// poison a window shared with healthy ones.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ServiceEvent {
    /// The paper's hop 4: the one [`ResultMsg`] delivered back to this
    /// client over the secure channel.
    ResponseReady {
        /// The submit ticket this answers.
        ticket: Ticket,
        /// The client the result is delivered to.
        client: ClientId,
        /// The delivered message — the same bytes
        /// [`crate::HopTraffic::results_bytes`] accounts.
        result: ResultMsg,
        /// Seconds the request waited in the admission queue.
        waited: f64,
    },
    /// The request was embedded and queried, but its true pair is
    /// disconnected on the backend's map (the event form of
    /// [`crate::ClientOutcome::Unreachable`]).
    Unreachable {
        /// The submit ticket this answers.
        ticket: Ticket,
        /// The requesting client.
        client: ClientId,
        /// Seconds the request waited in the admission queue.
        waited: f64,
    },
    /// The request was shed or could not be served; see the reason.
    Rejected {
        /// The submit ticket this answers.
        ticket: Ticket,
        /// The requesting client.
        client: ClientId,
        /// Why it was rejected.
        reason: RejectReason,
        /// Seconds the request waited in the admission queue.
        waited: f64,
    },
    /// Acknowledges a [`crate::OpaqueService::cancel`]: the request left
    /// the queue before any flush and was never processed.
    Cancelled {
        /// The cancelled ticket.
        ticket: Ticket,
        /// The client whose request was cancelled.
        client: ClientId,
    },
    /// A batch window closed: the aggregate [`BatchReport`] for the
    /// per-request events emitted just before this. Byte-identical to the
    /// report the legacy [`crate::OpaqueService::process_batch`] path
    /// produces for the same requests — the determinism oracle
    /// (`tests/gateway_equivalence.rs`).
    BatchFlushed(BatchReport),
}

impl ServiceEvent {
    /// The ticket a per-request event answers (`None` for
    /// [`ServiceEvent::BatchFlushed`]).
    pub fn ticket(&self) -> Option<Ticket> {
        match self {
            ServiceEvent::ResponseReady { ticket, .. }
            | ServiceEvent::Unreachable { ticket, .. }
            | ServiceEvent::Rejected { ticket, .. }
            | ServiceEvent::Cancelled { ticket, .. } => Some(*ticket),
            ServiceEvent::BatchFlushed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_policy_validation() {
        assert!(AdmissionPolicy::default().validate().is_ok());
        assert!(AdmissionPolicy { queue_depth: 0, deadline: None }.validate().is_err());
        assert!(
            AdmissionPolicy { queue_depth: 1, deadline: Some(0.0) }.validate().is_err(),
            "zero deadline would shed every request instantly"
        );
        assert!(AdmissionPolicy { queue_depth: 1, deadline: Some(f64::NAN) }.validate().is_err());
        assert!(AdmissionPolicy { queue_depth: 1, deadline: Some(2.5) }.validate().is_ok());
    }

    #[test]
    fn admission_policy_round_trips_through_serde() {
        for policy in
            [AdmissionPolicy::default(), AdmissionPolicy { queue_depth: 7, deadline: Some(1.25) }]
        {
            let json = serde_json::to_string(&policy).unwrap();
            let back: AdmissionPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, policy, "{json}");
        }
    }

    #[test]
    fn priorities_and_outcomes_round_trip() {
        for p in [Priority::Interactive, Priority::Bulk] {
            let json = serde_json::to_string(&p).unwrap();
            let back: Priority = serde_json::from_str(&json).unwrap();
            assert_eq!(back, p);
        }
        let outcome = SubmitOutcome::Rejected(RejectReason::QueueFull { depth: 4 });
        let back: SubmitOutcome =
            serde_json::from_str(&serde_json::to_string(&outcome).unwrap()).unwrap();
        assert_eq!(back, outcome);
        assert_eq!(outcome.ticket(), None);
        assert!(!outcome.is_accepted());
        assert_eq!(SubmitOutcome::Accepted(Ticket(3)).ticket(), Some(Ticket(3)));
        assert_eq!(SubmitOutcome::Deferred(Ticket(9)).ticket(), Some(Ticket(9)));
    }

    #[test]
    fn reject_reasons_render_their_parameters() {
        let r = RejectReason::QueueFull { depth: 16 };
        assert!(r.to_string().contains("16"));
        let r = RejectReason::DeadlineExpired { waited: 3.5 };
        assert!(r.to_string().contains("3.500"));
        let r = RejectReason::Infeasible { reason: "node 9 is not on the map".to_string() };
        assert_eq!(r.to_string(), "node 9 is not on the map");
    }

    #[test]
    fn events_expose_their_tickets() {
        let ev = ServiceEvent::Cancelled { ticket: Ticket(5), client: ClientId(1) };
        assert_eq!(ev.ticket(), Some(Ticket(5)));
        assert_eq!(ServiceEvent::BatchFlushed(BatchReport::default()).ticket(), None);
        // Events serialize (the stream is loggable / replayable).
        let json = serde_json::to_string(&ev).unwrap();
        let back: ServiceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }
}
