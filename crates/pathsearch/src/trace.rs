//! Reusable shortest-path-tree traces — the extraction/adoption layer
//! behind the service's shard-local tree cache.
//!
//! Lemma 1 prices an obfuscated query by the spanning trees the server
//! grows, and hotspot/commuter workloads make many queries share roots:
//! the same tree gets recomputed over and over. A [`SweepTrace`] is the
//! reusable form of one Dijkstra sweep: the settled `(node, dist, parent)`
//! labels **in settle order**, each paired with a snapshot of the sweep's
//! counters at that settle. Adoption ([`SweepTrace::adopt_into`]) replays
//! a recorded sweep into a [`SearchArena`] without touching the heap at
//! all — and, because Dijkstra from a fixed root is deterministic and its
//! goal only ever decides *when to stop*, any two sweeps from the same
//! root are prefixes of one another. That gives the two guarantees the
//! cache needs:
//!
//! * **answers** — adopted labels are settled, hence exact; paths read
//!   back identically to a fresh run;
//! * **accounting** — the per-settle counter snapshots are exactly the
//!   values a fresh sweep would report when stopping there, so a cache
//!   hit is *byte-identical* in every stats field to the sweep it
//!   replaced. Execution strategy and cache policy both stay invisible
//!   to reports (the PR-3 invariant, extended to caching).
//!
//! A trace is only adoptable when the goal is **provably inside** the
//! recorded prefix: every goal node must be settled in the trace (the
//! early-termination rule would have stopped within it), or the trace
//! must be complete (the sweep exhausted the root's component, so absent
//! nodes are proven unreachable). Anything else is a miss — the caller
//! grows a fresh, deeper sweep and should re-store it.
//!
//! [`TreeStore`] is the minimal storage interface the adopt-or-grow entry
//! point ([`crate::multi::msmd_in_cached`]) drives; the capacity-bounded
//! LRU over it lives in the service layer (`opaque::service::cache`),
//! which also owns the `(map_epoch, root, direction, policy-bits)` keying
//! and invalidation story.

use crate::alt::PotentialParams;
use crate::arena::{NIL, SearchArena};
use crate::dijkstra::Goal;
use crate::stats::SearchStats;
use roadnet::NodeId;

/// Arc orientation of a recorded sweep.
///
/// Every sweep the MSMD processor caches today follows forward arcs
/// (`Auto` transposition only happens on symmetric views, where forward
/// and backward sweeps coincide). `Backward` is reserved for reverse-arc
/// sweeps on directed views so cache keys can never alias them onto
/// forward trees.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SweepDirection {
    /// The sweep relaxed forward arcs out of its root.
    Forward,
    /// Reserved: a sweep over reversed arcs (no current producer).
    Backward,
}

/// One settle event of a recorded sweep: the final label plus the sweep's
/// counter snapshot at the moment a goal check could have stopped there.
#[derive(Clone, Copy, Debug)]
pub struct SettleEvent {
    /// The settled node.
    pub node: u32,
    /// Its final (exact) distance from the root.
    pub dist: f64,
    /// Parent node id in the spanning tree (`u32::MAX` for the root).
    pub parent: u32,
    /// Arc relaxations performed *before* this node expanded its arcs —
    /// what a sweep stopping here would report.
    pub relaxed: u64,
    /// Heap pushes before this node expanded its arcs.
    pub heap_pushes: u64,
    /// Heap pops up to and including the pop that settled this node.
    pub heap_pops: u64,
}

/// A recorded Dijkstra sweep: settle-ordered labels with per-event
/// counter snapshots, reusable via [`SweepTrace::adopt_into`].
#[derive(Clone, Debug)]
pub struct SweepTrace {
    root: NodeId,
    nodes: usize,
    events: Vec<SettleEvent>,
    /// `(node, event index)` sorted by node — the settled-set index.
    positions: Vec<(u32, u32)>,
    /// Counters at sweep end (includes trailing stale pops when the heap
    /// drained) — what a fresh exhausting sweep reports.
    final_stats: SearchStats,
    /// Whether the sweep exhausted the root's component (no early stop),
    /// i.e. every reachable node is settled and absence proves
    /// unreachability.
    complete: bool,
    /// The goal-directed potential the sweep ran under (`None` for plain
    /// Dijkstra). Guided sweeps settle in potential-key order, so their
    /// counter snapshots only replay a sweep under the *same* potential;
    /// the cached runners compare this before adopting.
    potential: Option<PotentialParams>,
}

impl SweepTrace {
    /// Assemble a trace from a finished sweep's parts (crate-internal:
    /// only [`crate::dijkstra::run_in_traced`] produces consistent ones).
    pub(crate) fn from_parts(
        root: NodeId,
        nodes: usize,
        mut events: Vec<SettleEvent>,
        final_stats: SearchStats,
        complete: bool,
    ) -> Self {
        // The recorder reserves one slot per node up front; a trace can
        // live in a cache for a long time, so give back the unused tail —
        // an early-stopped sweep must cost memory proportional to what it
        // settled, not to the map.
        events.shrink_to_fit();
        let mut positions: Vec<(u32, u32)> =
            events.iter().enumerate().map(|(i, e)| (e.node, i as u32)).collect();
        positions.sort_unstable();
        SweepTrace { root, nodes, events, positions, final_stats, complete, potential: None }
    }

    /// Stamp the trace with the potential its sweep ran under
    /// (crate-internal: set by the guided traced runner right after
    /// [`SweepTrace::from_parts`]).
    pub(crate) fn with_potential(mut self, potential: Option<PotentialParams>) -> Self {
        self.potential = potential;
        self
    }

    /// The goal-directed potential the recorded sweep ran under, if any.
    /// Adoption is only sound under the identical potential (or `None`
    /// against `None`): the settle *order* — and with it every counter
    /// snapshot — depends on it.
    pub fn potential(&self) -> Option<&PotentialParams> {
        self.potential.as_ref()
    }

    /// The node the sweep grew from.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Node count of the graph the sweep ran on (adoption refuses other
    /// sizes — a different map must be a different cache epoch anyway).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of settled nodes recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty (never — sweeps settle their root — but
    /// the conventional pair to [`SweepTrace::len`]).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether the sweep exhausted its component.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The settled radius: distance of the last (farthest) settled node.
    /// Labels are exact for every node within it.
    pub fn settled_radius(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.dist)
    }

    /// The settled nodes in settle order (nearest-first). Lets callers
    /// measure a sweep's *spatial footprint* — e.g. how much of it falls
    /// inside one shard's region under region-owned placement — without
    /// exposing the per-event counter snapshots.
    pub fn settled(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.events.iter().map(|e| NodeId(e.node))
    }

    /// Settle-order index of `node`, if the sweep settled it.
    pub fn position(&self, node: NodeId) -> Option<usize> {
        self.positions
            .binary_search_by(|&(n, _)| n.cmp(&node.0))
            .ok()
            .map(|i| self.positions[i].1 as usize)
    }

    /// Whether this recorded sweep depends on any of the given edges, each
    /// described by its endpoint pair — the surgical-invalidation predicate
    /// for live-traffic weight updates.
    ///
    /// A sweep is affected by an edge `(a, b)` iff it settled `a` or `b`.
    /// Soundness: every arc a sweep relaxes leaves a settled node, so an
    /// edge with both endpoints unsettled was never relaxed during the
    /// recorded prefix, and every relaxation *into* `a` or `b` came over an
    /// unchanged arc — a fresh sweep on the updated map replays the prefix
    /// (labels and counter snapshots) byte-identically. For complete
    /// traces, both endpoints unsettled means the edge is unreachable from
    /// the root, and finite non-negative reweighting cannot change
    /// reachability, so the exhausted sweep replays too. A trace that
    /// returns `false` here therefore stays exact under the update; one
    /// that returns `true` must be evicted before it can be adopted.
    pub fn touches_any(&self, endpoints: &[(NodeId, NodeId)]) -> bool {
        endpoints.iter().any(|&(a, b)| self.position(a).is_some() || self.position(b).is_some())
    }

    /// Where a fresh sweep with `goal` would stop, if that point is
    /// provably inside this trace; `None` means the trace cannot answer
    /// the goal (some goal node lies beyond the settled radius of an
    /// incomplete sweep).
    fn stop_for(&self, goal: &Goal) -> Option<Stop> {
        match goal {
            Goal::AllNodes => self.complete.then_some(Stop::Exhausted),
            Goal::Single(t) => match self.position(*t) {
                Some(i) => Some(Stop::At(i)),
                None => self.complete.then_some(Stop::Exhausted),
            },
            Goal::Set(ts) => {
                let mut last = None;
                for t in ts {
                    match self.position(*t) {
                        Some(i) => last = Some(last.map_or(i, |l: usize| l.max(i))),
                        // One unsettled target: only a complete sweep can
                        // answer it (by proving it unreachable), and then
                        // the fresh sweep would exhaust too.
                        None => return self.complete.then_some(Stop::Exhausted),
                    }
                }
                match last {
                    Some(i) => Some(Stop::At(i)),
                    // Empty goal set never triggers the stop rule.
                    None => self.complete.then_some(Stop::Exhausted),
                }
            }
        }
    }

    /// Adopt this trace into `arena` (tree 0) as the answer to `goal`,
    /// skipping the Dijkstra sweep entirely. On success the arena reads
    /// exactly like a fresh [`crate::dijkstra::run_in`] from the same
    /// root with the same goal — same settled labels, same paths — and
    /// the returned counters are byte-identical to that run's (stats
    /// replay from the per-settle snapshots). Returns `None` when the
    /// goal is not provably inside the recorded prefix, in which case the
    /// arena is left mid-generation and the caller must run the search
    /// for real (which begins a fresh generation).
    ///
    /// One observable difference to a fresh run is intentional: frontier
    /// nodes beyond the stopping point carry *no* tentative labels after
    /// adoption (a fresh run leaves some), so [`SearchArena::distance`]
    /// returns `None` where a fresh run may return a tentative upper
    /// bound. Settled reads — everything results are built from — are
    /// identical.
    pub fn adopt_into(&self, arena: &mut SearchArena, goal: &Goal) -> Option<SearchStats> {
        let stop = self.stop_for(goal)?;
        arena.begin(self.nodes, 1);
        let (upto, stats) = match stop {
            Stop::At(i) => {
                let e = &self.events[i];
                (
                    i,
                    SearchStats {
                        settled: i as u64 + 1,
                        relaxed: e.relaxed,
                        heap_pushes: e.heap_pushes,
                        heap_pops: e.heap_pops,
                        runs: 1,
                    },
                )
            }
            Stop::Exhausted => (self.events.len() - 1, self.final_stats),
        };
        for e in &self.events[..=upto] {
            let parent = (e.parent != NIL).then_some(NodeId(e.parent));
            arena.label(0, NodeId(e.node), e.dist, parent);
            arena.settle(0, NodeId(e.node));
        }
        Some(stats)
    }
}

/// Where an adopted sweep stops.
enum Stop {
    /// At settle event `i` (the goal's last node settles there).
    At(usize),
    /// Never — the sweep exhausts the component, trailing stale pops
    /// included.
    Exhausted,
}

/// Storage interface the adopt-or-grow entry point
/// ([`crate::multi::msmd_in_cached`]) drives. One implementation lives in
/// the service layer (`opaque::service::cache::TreeCache` — the
/// capacity-bounded, epoch-keyed LRU); tests use ad-hoc map-backed
/// stores.
///
/// Implementations are shard-local by design: the parallel service layer
/// pins one store per worker thread next to its [`SearchArena`], so no
/// locking is ever needed on the hot path.
pub trait TreeStore {
    /// Borrow the stored trace for `root`, if any. Counts as a use for
    /// recency-based eviction.
    fn lookup(&mut self, root: NodeId, direction: SweepDirection) -> Option<&SweepTrace>;

    /// Store `trace` for `root`, replacing any previous entry (stores
    /// should keep the *deeper* of the two — sweeps from one root are
    /// prefixes of each other, so the longer one answers strictly more
    /// goals).
    fn store(&mut self, root: NodeId, direction: SweepDirection, trace: SweepTrace);

    /// A lookup whose trace satisfied the goal (the sweep was skipped).
    fn note_hit(&mut self);

    /// A tree that had to be grown for real (no entry, or the goal lay
    /// beyond the recorded prefix).
    fn note_miss(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{run_in, run_in_traced};
    use roadnet::generators::{GridConfig, grid_network};
    use roadnet::{GraphBuilder, Point};

    fn grid() -> roadnet::RoadNetwork {
        grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() }).unwrap()
    }

    #[test]
    fn adoption_replays_labels_paths_and_stats_exactly() {
        let g = grid();
        let root = NodeId(5);
        // Record a deep sweep, then check adoption against fresh runs for
        // a spread of goals strictly inside it.
        let mut arena = SearchArena::new();
        let (_, trace) = run_in_traced(&mut arena, &g, root, &Goal::AllNodes);
        assert!(trace.is_complete());
        assert_eq!(trace.len(), g.num_nodes());

        for goal in [
            Goal::Single(NodeId(143)),
            Goal::Single(NodeId(6)),
            Goal::Set(vec![NodeId(100), NodeId(37), NodeId(9)]),
            Goal::Set(vec![NodeId(0), NodeId(143)]),
            Goal::AllNodes,
        ] {
            let mut fresh_arena = SearchArena::new();
            let fresh = run_in(&mut fresh_arena, &g, root, &goal);
            let adopted = trace.adopt_into(&mut arena, &goal).expect("goal inside trace");
            assert_eq!(adopted, fresh, "stats must replay byte-identically for {goal:?}");
            let targets: Vec<NodeId> = match &goal {
                Goal::Single(t) => vec![*t],
                Goal::Set(ts) => ts.clone(),
                Goal::AllNodes => (0..g.num_nodes() as u32).map(NodeId).collect(),
            };
            for t in targets {
                assert_eq!(
                    arena.path_to(0, t),
                    fresh_arena.path_to(0, t),
                    "path to {t} diverged for {goal:?}"
                );
            }
        }
    }

    #[test]
    fn partial_trace_is_a_prefix_and_only_answers_inside_its_radius() {
        let g = grid();
        let root = NodeId(0);
        let mut arena = SearchArena::new();
        // A bounded sweep: stops when NodeId(30) settles.
        let (partial_stats, partial) =
            run_in_traced(&mut arena, &g, root, &Goal::Single(NodeId(30)));
        assert!(!partial.is_complete());
        assert_eq!(partial_stats.settled, partial.len() as u64);
        let (_, full) = run_in_traced(&mut arena, &g, root, &Goal::AllNodes);
        // Prefix property: the partial sweep is the full sweep truncated.
        for (i, e) in partial.events.iter().enumerate() {
            assert_eq!(e.node, full.events[i].node, "settle order diverged at {i}");
            assert_eq!(e.dist, full.events[i].dist);
        }
        assert!(partial.settled_radius() <= full.settled_radius());

        // Inside the radius: adoptable, byte-identical to a fresh run.
        let inside = partial.events[partial.len() / 2].node;
        let mut fresh_arena = SearchArena::new();
        let fresh = run_in(&mut fresh_arena, &g, root, &Goal::Single(NodeId(inside)));
        let adopted = partial.adopt_into(&mut arena, &Goal::Single(NodeId(inside))).unwrap();
        assert_eq!(adopted, fresh);

        // Beyond the radius (or any unsettled node): refuse.
        let unsettled =
            (0..g.num_nodes() as u32).map(NodeId).find(|n| partial.position(*n).is_none()).unwrap();
        assert!(partial.adopt_into(&mut arena, &Goal::Single(unsettled)).is_none());
        assert!(
            partial.adopt_into(&mut arena, &Goal::Set(vec![NodeId(inside), unsettled])).is_none(),
            "one goal node beyond the prefix poisons the whole set"
        );
        assert!(partial.adopt_into(&mut arena, &Goal::AllNodes).is_none());
    }

    #[test]
    fn complete_trace_proves_unreachability() {
        // Two components: adoption must answer queries for the far
        // component's nodes with "unreachable" and exhausted stats.
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(4), NodeId(5), 1.0).unwrap();
        let g = b.build().unwrap();

        let mut arena = SearchArena::new();
        // Goal::Single on an unreachable node exhausts the component, so
        // the trace comes out complete.
        let (_, trace) = run_in_traced(&mut arena, &g, NodeId(0), &Goal::Single(NodeId(5)));
        assert!(trace.is_complete());
        assert_eq!(trace.len(), 3);

        let mut fresh_arena = SearchArena::new();
        let fresh = run_in(&mut fresh_arena, &g, NodeId(0), &Goal::Single(NodeId(4)));
        let adopted = trace.adopt_into(&mut arena, &Goal::Single(NodeId(4))).unwrap();
        assert_eq!(adopted, fresh, "exhausted stats replay, trailing stale pops included");
        assert_eq!(arena.path_to(0, NodeId(4)), None);
        assert_eq!(arena.distance(0, NodeId(4)), None);

        // Mixed goal set: reachable + unreachable also exhausts.
        let fresh = run_in(&mut fresh_arena, &g, NodeId(0), &Goal::Set(vec![NodeId(2), NodeId(5)]));
        let adopted = trace.adopt_into(&mut arena, &Goal::Set(vec![NodeId(2), NodeId(5)])).unwrap();
        assert_eq!(adopted, fresh);
        assert!(arena.path_to(0, NodeId(2)).is_some());
    }

    #[test]
    fn duplicate_goal_nodes_match_fresh_runs() {
        let g = grid();
        let mut arena = SearchArena::new();
        let (_, trace) = run_in_traced(&mut arena, &g, NodeId(7), &Goal::AllNodes);
        let goal = Goal::Set(vec![NodeId(100), NodeId(100), NodeId(12)]);
        let mut fresh_arena = SearchArena::new();
        let fresh = run_in(&mut fresh_arena, &g, NodeId(7), &goal);
        assert_eq!(trace.adopt_into(&mut arena, &goal), Some(fresh));
    }

    #[test]
    fn touches_any_tracks_the_settled_set() {
        let g = grid();
        let mut arena = SearchArena::new();
        let (_, partial) = run_in_traced(&mut arena, &g, NodeId(0), &Goal::Single(NodeId(30)));
        assert!(!partial.is_complete());
        let settled = NodeId(partial.events[partial.len() / 2].node);
        let unsettled =
            (0..g.num_nodes() as u32).map(NodeId).find(|n| partial.position(*n).is_none()).unwrap();
        // One settled endpoint is enough; order of the pair is irrelevant.
        assert!(partial.touches_any(&[(settled, unsettled)]));
        assert!(partial.touches_any(&[(unsettled, settled)]));
        // Both endpoints beyond the settled prefix: the sweep never relaxed
        // the edge, so the trace is unaffected.
        let unsettled2 = (0..g.num_nodes() as u32)
            .map(NodeId)
            .filter(|n| partial.position(*n).is_none())
            .nth(1)
            .unwrap();
        assert!(!partial.touches_any(&[(unsettled, unsettled2)]));
        // Any touched pair in a batch flags the whole batch; an empty batch
        // touches nothing.
        assert!(partial.touches_any(&[(unsettled, unsettled2), (settled, settled)]));
        assert!(!partial.touches_any(&[]));
    }

    #[test]
    fn radius_and_positions_are_consistent() {
        let g = grid();
        let mut arena = SearchArena::new();
        let (_, trace) = run_in_traced(&mut arena, &g, NodeId(60), &Goal::Single(NodeId(80)));
        assert_eq!(trace.root(), NodeId(60));
        assert_eq!(trace.nodes(), g.num_nodes());
        assert!(!trace.is_empty());
        assert_eq!(trace.position(NodeId(60)), Some(0), "the root settles first");
        let r = trace.settled_radius();
        for e in &trace.events {
            assert!(e.dist <= r + 1e-12, "settle order is nondecreasing in distance");
            assert_eq!(trace.position(NodeId(e.node)).map(|i| trace.events[i].node), Some(e.node));
        }
        // The public settled-nodes view mirrors the event log exactly.
        let settled: Vec<NodeId> = trace.settled().collect();
        assert_eq!(settled.len(), trace.len());
        assert_eq!(settled[0], NodeId(60));
        for (i, &n) in settled.iter().enumerate() {
            assert_eq!(trace.position(n), Some(i));
        }
    }
}
