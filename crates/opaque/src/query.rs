//! Path queries and obfuscated path queries (Definitions 1 and 2, §III).

use crate::error::{OpaqueError, Result};
use roadnet::NodeId;
use std::fmt;

/// Identifier of a client (user) of the directions-search service.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ClientId(pub u32);

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A path query `Q(s, t)` (§III-A): a request for the shortest path from
/// source `s` to destination `t`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct PathQuery {
    /// The true source `s`.
    pub source: NodeId,
    /// The true destination `t`.
    pub destination: NodeId,
}

impl PathQuery {
    /// Construct `Q(s, t)`.
    pub fn new(source: NodeId, destination: NodeId) -> Self {
        PathQuery { source, destination }
    }
}

impl fmt::Display for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q({}, {})", self.source, self.destination)
    }
}

/// A user's privacy preference (§III-C): the desired sizes of the obfuscated
/// source set `|S| = f_S` and destination set `|T| = f_T`. Larger settings
/// mean stronger protection (lower breach probability) at higher processing
/// cost.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct ProtectionSettings {
    /// Required source-set size `f_S ≥ 1` (true source included).
    pub f_s: u32,
    /// Required target-set size `f_T ≥ 1` (true destination included).
    pub f_t: u32,
}

impl ProtectionSettings {
    /// Validated constructor: both sizes must be ≥ 1 (size 1 means "no
    /// fakes on that side").
    pub fn new(f_s: u32, f_t: u32) -> Result<Self> {
        if f_s == 0 || f_t == 0 {
            return Err(OpaqueError::InvalidProtection { f_s, f_t });
        }
        Ok(ProtectionSettings { f_s, f_t })
    }

    /// The breach probability this setting guarantees under a uniform-prior
    /// adversary: `1 / (f_S × f_T)` (Definition 2).
    pub fn breach_probability(&self) -> f64 {
        1.0 / (self.f_s as f64 * self.f_t as f64)
    }

    /// The smallest *balanced* setting whose breach probability does not
    /// exceed `max_breach`: users think in terms of "at most a 5% chance",
    /// not set sizes. Balanced sizes (`f_S = f_T = ⌈1/√p⌉`) also minimize
    /// `f_S + f_T` — the number of endpoints, and hence fakes, the
    /// obfuscator must produce — for a given product.
    ///
    /// # Panics
    /// Panics unless `0 < max_breach <= 1`.
    pub fn for_breach(max_breach: f64) -> Self {
        assert!(
            max_breach > 0.0 && max_breach <= 1.0,
            "breach bound must be in (0, 1], got {max_breach}"
        );
        let f = (1.0 / max_breach).sqrt().ceil() as u32;
        let mut setting = ProtectionSettings { f_s: f.max(1), f_t: f.max(1) };
        // Ceiling on the square root can overshoot: (f-1)·f may already
        // satisfy the bound, saving one fake.
        if f >= 2 {
            let slim = ProtectionSettings { f_s: f - 1, f_t: f };
            if slim.breach_probability() <= max_breach {
                setting = slim;
            }
        }
        setting
    }
}

/// A client request `⟨u_i, (s_i, t_i), (f_Si, f_Ti)⟩` as sent to the
/// obfuscator over the secure channel (§IV, Figure 6).
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct ClientRequest {
    /// The requesting client `u_i`.
    pub client: ClientId,
    /// The true query `(s_i, t_i)`.
    pub query: PathQuery,
    /// The anonymity requirements `(f_Si, f_Ti)`.
    pub protection: ProtectionSettings,
}

impl ClientRequest {
    /// Construct a request.
    pub fn new(client: ClientId, query: PathQuery, protection: ProtectionSettings) -> Self {
        ClientRequest { client, query, protection }
    }
}

/// An obfuscated path query `Q(S, T)` (Definition 1): the true query's
/// endpoints mixed with fakes. Represents the query set
/// `⋃_{s∈S, t∈T} {Q(s,t)}` — the server must answer all `|S| × |T|` pairs.
///
/// Invariants (enforced by [`ObfuscatedPathQuery::new`]): both sets are
/// non-empty and duplicate-free. Sets are kept in *sorted* order so the
/// wire form leaks nothing about which member is the true endpoint.
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct ObfuscatedPathQuery {
    sources: Vec<NodeId>,
    targets: Vec<NodeId>,
}

impl ObfuscatedPathQuery {
    /// Build from endpoint sets; deduplicates and sorts.
    ///
    /// # Panics
    /// Panics if either set is empty after deduplication — an obfuscated
    /// query always carries at least one (true) endpoint per side.
    pub fn new(mut sources: Vec<NodeId>, mut targets: Vec<NodeId>) -> Self {
        sources.sort_unstable();
        sources.dedup();
        targets.sort_unstable();
        targets.dedup();
        assert!(
            !sources.is_empty() && !targets.is_empty(),
            "obfuscated query needs non-empty S and T"
        );
        ObfuscatedPathQuery { sources, targets }
    }

    /// The source set `S`.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The destination set `T`.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// `|S| × |T|`, the number of path queries the server evaluates.
    pub fn num_pairs(&self) -> usize {
        self.sources.len() * self.targets.len()
    }

    /// Definition 2: the probability a uniform-prior adversary reveals any
    /// one embedded true query, `1 / (|S| × |T|)`.
    pub fn breach_probability(&self) -> f64 {
        1.0 / self.num_pairs() as f64
    }

    /// True if this obfuscated query covers `q` (Definition 1's requirement
    /// `s ∈ S ∧ t ∈ T`).
    pub fn covers(&self, q: &PathQuery) -> bool {
        self.sources.binary_search(&q.source).is_ok()
            && self.targets.binary_search(&q.destination).is_ok()
    }

    /// Index of a source within the sorted set.
    pub fn source_index(&self, s: NodeId) -> Option<usize> {
        self.sources.binary_search(&s).ok()
    }

    /// Index of a target within the sorted set.
    pub fn target_index(&self, t: NodeId) -> Option<usize> {
        self.targets.binary_search(&t).ok()
    }

    /// Enumerate all `|S|×|T|` represented path queries, in (source-major)
    /// sorted order.
    pub fn represented_queries(&self) -> impl Iterator<Item = PathQuery> + '_ {
        self.sources
            .iter()
            .flat_map(move |&s| self.targets.iter().map(move |&t| PathQuery::new(s, t)))
    }

    /// Whether `(f_s, f_t)` protection is satisfied by this query's sizes.
    pub fn satisfies(&self, p: &ProtectionSettings) -> bool {
        self.sources.len() >= p.f_s as usize && self.targets.len() >= p.f_t as usize
    }
}

impl fmt::Display for ObfuscatedPathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q(|S|={}, |T|={})", self.sources.len(), self.targets.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_settings_validate() {
        assert!(ProtectionSettings::new(2, 3).is_ok());
        assert!(matches!(
            ProtectionSettings::new(0, 3),
            Err(OpaqueError::InvalidProtection { .. })
        ));
        assert!(matches!(
            ProtectionSettings::new(1, 0),
            Err(OpaqueError::InvalidProtection { .. })
        ));
    }

    #[test]
    fn paper_example_breach_probability() {
        // Alice's Q(S_A, T_A) with |S|=2, |T|=3 has breach probability 1/6.
        let q = ObfuscatedPathQuery::new(
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(2), NodeId(3), NodeId(4)],
        );
        assert!((q.breach_probability() - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(q.num_pairs(), 6);
    }

    #[test]
    fn covers_requires_both_endpoints() {
        let q = ObfuscatedPathQuery::new(vec![NodeId(0), NodeId(1)], vec![NodeId(2)]);
        assert!(q.covers(&PathQuery::new(NodeId(0), NodeId(2))));
        assert!(q.covers(&PathQuery::new(NodeId(1), NodeId(2))));
        assert!(!q.covers(&PathQuery::new(NodeId(2), NodeId(0))));
        assert!(!q.covers(&PathQuery::new(NodeId(0), NodeId(1))));
    }

    #[test]
    fn sets_are_sorted_and_deduplicated() {
        let q = ObfuscatedPathQuery::new(
            vec![NodeId(5), NodeId(1), NodeId(5)],
            vec![NodeId(9), NodeId(9)],
        );
        assert_eq!(q.sources(), &[NodeId(1), NodeId(5)]);
        assert_eq!(q.targets(), &[NodeId(9)]);
        assert_eq!(q.num_pairs(), 2);
    }

    #[test]
    fn represented_queries_enumerates_cross_product() {
        let q = ObfuscatedPathQuery::new(vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]);
        let all: Vec<PathQuery> = q.represented_queries().collect();
        assert_eq!(all.len(), 4);
        assert!(all.contains(&PathQuery::new(NodeId(1), NodeId(3))));
    }

    #[test]
    fn satisfies_compares_sizes() {
        let q = ObfuscatedPathQuery::new(vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]);
        assert!(q.satisfies(&ProtectionSettings::new(2, 2).unwrap()));
        assert!(q.satisfies(&ProtectionSettings::new(1, 1).unwrap()));
        assert!(!q.satisfies(&ProtectionSettings::new(3, 2).unwrap()));
    }

    #[test]
    fn settings_breach_matches_query_breach() {
        let p = ProtectionSettings::new(4, 5).unwrap();
        assert!((p.breach_probability() - 1.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn for_breach_meets_the_bound_minimally() {
        for &(bound, f_s, f_t) in
            &[(1.0, 1, 1), (0.5, 1, 2), (0.25, 2, 2), (0.1, 3, 4), (0.05, 4, 5), (0.01, 10, 10)]
        {
            let p = ProtectionSettings::for_breach(bound);
            assert_eq!((p.f_s, p.f_t), (f_s, f_t), "bound {bound}");
            assert!(p.breach_probability() <= bound + 1e-12);
        }
        // Minimality: dropping one from either side must violate the bound
        // (when possible).
        for bound in [0.3, 0.07, 0.02, 0.003] {
            let p = ProtectionSettings::for_breach(bound);
            assert!(p.breach_probability() <= bound);
            if p.f_s > 1 {
                let fewer = ProtectionSettings::new(p.f_s - 1, p.f_t).unwrap();
                assert!(
                    fewer.breach_probability() > bound,
                    "bound {bound}: {:?} not minimal",
                    (p.f_s, p.f_t)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "breach bound")]
    fn for_breach_rejects_zero() {
        let _ = ProtectionSettings::for_breach(0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PathQuery::new(NodeId(1), NodeId(2)).to_string(), "Q(1, 2)");
        let q = ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(1), NodeId(2)]);
        assert_eq!(q.to_string(), "Q(|S|=1, |T|=2)");
        assert_eq!(ClientId(7).to_string(), "7");
        assert_eq!(format!("{:?}", ClientId(7)), "u7");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sets_panic() {
        let _ = ObfuscatedPathQuery::new(vec![], vec![NodeId(1)]);
    }
}
