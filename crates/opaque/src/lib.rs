//! # opaque — the OPAQUE path-privacy system (ICDE 2009)
//!
//! A full reproduction of *OPAQUE: Protecting Path Privacy in Directions
//! Search* (Lee, Lee, Leong & Zheng, ICDE 2009). Directions search exposes
//! users' sources and destinations to a semi-trusted server; OPAQUE hides
//! them by mixing true endpoints with fakes into **obfuscated path queries**
//! `Q(S, T)` (Definition 1), which a trusted obfuscator formulates and the
//! server answers wholesale with multiple-source multiple-destination
//! search. The breach probability of a protected query is `1/(|S|·|T|)`
//! (Definition 2); the processing cost is `O(Σ_{s∈S} max_{t∈T} ‖s,t‖²)`
//! (Lemma 1).
//!
//! ## Crate layout (mirrors Figure 6)
//!
//! * [`query`] — path queries, protection settings, obfuscated path queries;
//! * [`obfuscator`] — the trusted middlebox: fake-endpoint selection
//!   strategies, query clustering, independent & shared obfuscation;
//! * [`server`] — the directions-search server with its obfuscated path
//!   query processor;
//! * [`filter`] — the candidate result path filter;
//! * [`service`] — the deployable pipeline: pluggable
//!   [`DirectionsBackend`]s (single server or a [`ShardedBackend`] fleet),
//!   the event-driven gateway front door ([`OpaqueService::submit`] →
//!   typed [`SubmitOutcome`] under an [`AdmissionPolicy`] with bounded
//!   depth, per-request deadlines, and [`Priority`] lanes;
//!   [`OpaqueService::tick`] → ordered [`ServiceEvent`]s closing the
//!   paper's per-client hop 4), the [`ExecutionPolicy`] batch execution
//!   layer (sequential, or a worker pool with one pinned search arena per
//!   shard — provably answer-identical), the shard-local [`TreeCache`] of
//!   reusable shortest-path trees ([`CachePolicy`] — provably
//!   report-identical to running uncached), and the builder-configured
//!   [`OpaqueService`] with typed accounting;
//! * [`attack`] — uniform, background-knowledge, and collusion adversaries;
//! * [`baselines`] — the §II location-privacy techniques (landmark,
//!   cloaking, naive fakes) for measured comparison;
//! * [`metrics`] — breach probability, entropy, effective anonymity.
//!
//! ## Quick example
//!
//! ```
//! use opaque::{
//!     BatchPolicy, ClientId, ClientRequest, ObfuscationMode, PathQuery, ProtectionSettings,
//!     ServiceBuilder, ServiceEvent,
//! };
//! use roadnet::NodeId;
//! use roadnet::generators::{GridConfig, grid_network};
//!
//! // Assemble a deployment: map, three round-robin server shards, shared
//! // obfuscation, and an admission queue that flushes at 2 requests or
//! // after 5 simulated seconds.
//! let map = grid_network(&GridConfig { width: 12, height: 12, ..Default::default() }).unwrap();
//! let mut service = ServiceBuilder::new()
//!     .map(map)
//!     .seed(7)
//!     .shards(3)
//!     .obfuscation_mode(ObfuscationMode::SharedGlobal)
//!     .batch_policy(BatchPolicy { max_batch: 2, max_delay: 5.0 })
//!     .verify_results(true)
//!     .build()
//!     .unwrap();
//!
//! // Alice and Bob ask for directions with 3×3 anonymity requirements;
//! // the gateway answers each submit with a typed outcome.
//! let request = |id: u32, s: u32, t: u32| {
//!     ClientRequest::new(
//!         ClientId(id),
//!         PathQuery::new(NodeId(s), NodeId(t)),
//!         ProtectionSettings::new(3, 3).unwrap(),
//!     )
//! };
//! let alice = service.submit(request(0, 0, 143), 0.0).ticket().unwrap();
//! let _bob = service.submit(request(1, 11, 132), 0.4).ticket().unwrap();
//!
//! // The size trigger fires: the batch is obfuscated into one shared
//! // query, answered by the shard fleet, filtered, and delivered as an
//! // ordered event stream — one ResultMsg per client (the paper's hop
//! // 4), then the batch's aggregate report.
//! let events = service.tick(0.4).unwrap();
//! assert_eq!(events.len(), 3);
//! match &events[0] {
//!     ServiceEvent::ResponseReady { ticket, client, result, .. } => {
//!         assert_eq!((*ticket, *client, result.client), (alice, ClientId(0), ClientId(0)));
//!     }
//!     other => panic!("expected Alice's delivery, got {other:?}"),
//! }
//! match events.last().unwrap() {
//!     ServiceEvent::BatchFlushed(report) => {
//!         assert_eq!(report.mode, ObfuscationMode::SharedGlobal);
//!         // Both true pairs hide in one ≥3×3 query: breach ≤ 1/9
//!         // (Definition 2).
//!         assert!(report.mean_breach() <= 1.0 / 9.0 + 1e-12);
//!     }
//!     other => panic!("expected the batch report, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod attack;
pub mod audit;
pub mod baselines;
pub mod error;
pub mod filter;
pub mod metrics;
pub mod obfuscator;
pub mod protocol;
pub mod query;
pub mod server;
pub mod service;

pub use attack::{AttackReport, CollusionReport, InformedAttackReport, IntersectionReport};
pub use audit::{ExposureReport, PrivacyLedger};
pub use baselines::{Technique, TechniqueReport, run_technique};
pub use error::{OpaqueError, Result};
pub use filter::{ClientResult, filter_candidates};
pub use obfuscator::{
    Cluster, ClusteringConfig, FakeSelection, ObfuscationMode, ObfuscationUnit, Obfuscator,
    cluster_requests,
};
pub use protocol::{
    CandidateResultsMsg, HopTraffic, ObfuscatedQueryMsg, RequestMsg, ResultMsg, wire_size,
};
pub use query::{ClientId, ClientRequest, ObfuscatedPathQuery, PathQuery, ProtectionSettings};
pub use server::{DirectionsServer, ServerStats};
pub use service::{
    AdmissionPolicy, BatchPolicy, BatchReport, Batcher, CachePolicy, ClientOutcome, DefaultBackend,
    DirectionsBackend, DrainedBatch, ExecutionPolicy, ExpiredRequest, OpaqueService, Partition,
    PartitionPolicy, Priority, RejectReason, RouteKind, SearchHeuristic, ServiceBuilder,
    ServiceConfig, ServiceEvent, ServiceResponse, ShardedBackend, SubmitOutcome, Ticket, TreeCache,
};
