//! Multiple-source multiple-destination (MSMD) path search — the engine of
//! the obfuscated path query processor (§IV: "a set of efficient multiple
//! source multiple destination path search algorithms have been designed and
//! implemented by OPAQUE").
//!
//! An obfuscated path query `Q(S, T)` stands for the set of path queries
//! `{Q(s,t) : s ∈ S, t ∈ T}` and the server must answer *all* of them
//! (Definition 1 — it cannot know which is real). Four evaluation policies
//! are provided:
//!
//! * [`SharingPolicy::None`] — `|S|·|T|` independent single-pair Dijkstra
//!   runs; the naive baseline whose cost obfuscation must beat;
//! * [`SharingPolicy::PerSource`] — one multi-destination Dijkstra per
//!   source, the strategy behind Lemma 1's
//!   `O(Σ_{s∈S} max_{t∈T} ‖s,t‖²)` bound;
//! * [`SharingPolicy::Auto`] — per-source sharing over the smaller of the
//!   two sides: when `|T| < |S|` and the network is symmetric (undirected),
//!   run one multi-destination search per *target* instead and transpose,
//!   reducing the spanning-tree count from `|S|` to `min(|S|, |T|)`;
//! * [`SharingPolicy::SharedFrontier`] — all trees grow in **one
//!   interleaved sweep** through one shared heap (`frontier.rs`):
//!   on symmetric views, forward and backward trees resolve each pair by
//!   the bidirectional meeting rule and every tree retires the moment its
//!   last open pair resolves, settling strictly fewer nodes than
//!   `PerSource` on planar maps; on directed views it degrades to the
//!   interleaved forward-only sweep with `PerSource`'s per-tree cost.
//!
//! Every policy can run inside a caller-provided [`SearchArena`] via
//! [`msmd_in`], so a server evaluating a query stream touches no allocator
//! beyond the result paths themselves.

use crate::alt::{AltPreprocessing, GoalPotential};
use crate::arena::SearchArena;
use crate::dijkstra::{Goal, run_in, run_in_cached, run_in_guided, run_in_guided_cached};
use crate::frontier;
use crate::path::Path;
use crate::stats::SearchStats;
use crate::trace::{SweepDirection, SweepTrace, TreeStore};
use roadnet::{GraphView, NodeId};

/// Zero-sized [`TreeStore`] standing in for "no store" on the uncached
/// guided paths (never consulted — it only pins the generic parameter).
struct NoStore;

impl TreeStore for NoStore {
    fn lookup(&mut self, _: NodeId, _: SweepDirection) -> Option<&SweepTrace> {
        None
    }
    fn store(&mut self, _: NodeId, _: SweepDirection, _: SweepTrace) {}
    fn note_hit(&mut self) {}
    fn note_miss(&mut self) {}
}

/// Evaluation strategy for an MSMD query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SharingPolicy {
    /// Independent Dijkstra per (source, target) pair.
    None,
    /// One multi-destination Dijkstra per source (§III-B).
    PerSource,
    /// Per-source sharing over the smaller side when the graph view reports
    /// itself symmetric ([`GraphView::is_symmetric`]); on directed views it
    /// safely degrades to [`SharingPolicy::PerSource`].
    Auto,
    /// One interleaved sweep growing all trees from a shared heap with
    /// per-pair bidirectional termination (symmetric views) or per-source
    /// target termination (directed views).
    SharedFrontier,
}

impl SharingPolicy {
    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            SharingPolicy::None => "naive",
            SharingPolicy::PerSource => "per-source",
            SharingPolicy::Auto => "auto",
            SharingPolicy::SharedFrontier => "shared-frontier",
        }
    }

    /// All policies, in the order experiment tables report them.
    pub const ALL: [SharingPolicy; 4] = [
        SharingPolicy::None,
        SharingPolicy::PerSource,
        SharingPolicy::Auto,
        SharingPolicy::SharedFrontier,
    ];
}

/// Which endpoint set a spanning tree grew from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TreeSide {
    /// Rooted at a source (forward tree).
    Source,
    /// Rooted at a target (backward tree on a symmetric view, or the
    /// smaller side of an [`SharingPolicy::Auto`] transposition).
    Target,
}

/// Counters for one spanning tree actually grown, attributed to its root —
/// so transposed ([`SharingPolicy::Auto`]) and backward
/// ([`SharingPolicy::SharedFrontier`]) trees are never mistaken for
/// source-rooted ones.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TreeStats {
    /// The node the tree grew from.
    pub root: NodeId,
    /// Whether the root is a source or a target of the original query.
    pub side: TreeSide,
    /// The tree's search counters.
    pub stats: SearchStats,
}

/// Result of one MSMD evaluation: `paths[i][j]` answers `Q(sources[i],
/// targets[j])` (`None` when disconnected), with aggregate and per-tree
/// counters.
#[derive(Clone, Debug)]
pub struct MsmdResult {
    /// `paths[i][j]` is the shortest path for pair `(sources[i],
    /// targets[j])`, oriented source → target; `None` when disconnected.
    pub paths: Vec<Vec<Option<Path>>>,
    /// Aggregate counters over every tree grown.
    pub stats: SearchStats,
    /// Counters per spanning tree actually grown, attributed to each
    /// tree's root (one per source for `PerSource`, per pair for `None`,
    /// per smaller-side element for `Auto`, per source *and* target for
    /// `SharedFrontier` on symmetric views).
    pub per_tree: Vec<TreeStats>,
}

impl MsmdResult {
    /// Total number of result paths (excluding unreachable pairs).
    pub fn num_paths(&self) -> usize {
        self.paths.iter().flatten().filter(|p| p.is_some()).count()
    }

    /// Network distance `‖s_i, t_j‖`, if connected.
    pub fn distance(&self, i: usize, j: usize) -> Option<f64> {
        self.paths[i][j].as_ref().map(|p| p.distance())
    }

    /// Number of spanning trees grown.
    pub fn num_trees(&self) -> usize {
        self.per_tree.len()
    }
}

/// Evaluate the MSMD query `(sources × targets)` under `policy` with a
/// throwaway [`SearchArena`]. Prefer [`msmd_in`] on a query stream.
///
/// # Panics
/// Panics if `sources` or `targets` is empty or contains an out-of-range
/// node — an obfuscated query always carries at least the true endpoints.
pub fn msmd<G: GraphView>(
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    policy: SharingPolicy,
) -> MsmdResult {
    let mut arena = SearchArena::new();
    msmd_in(&mut arena, g, sources, targets, policy)
}

/// Evaluate the MSMD query `(sources × targets)` under `policy` inside a
/// caller-provided arena, so repeated queries on the same graph reuse all
/// search buffers (see [`SearchArena`]).
///
/// # Panics
/// Panics if `sources` or `targets` is empty or contains an out-of-range
/// node — an obfuscated query always carries at least the true endpoints.
pub fn msmd_in<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    policy: SharingPolicy,
) -> MsmdResult {
    assert!(!sources.is_empty() && !targets.is_empty(), "S and T must be non-empty");
    let n = g.num_nodes();
    for &x in sources.iter().chain(targets) {
        assert!(x.index() < n, "node {x} out of range");
    }

    match policy {
        SharingPolicy::None => msmd_naive(arena, g, sources, targets),
        SharingPolicy::PerSource => msmd_per_source(arena, g, sources, targets),
        SharingPolicy::Auto => {
            if targets.len() < sources.len() && g.is_symmetric() {
                let transposed = msmd_per_source(arena, g, targets, sources);
                transpose(transposed, sources.len(), targets.len())
            } else {
                msmd_per_source(arena, g, sources, targets)
            }
        }
        SharingPolicy::SharedFrontier => frontier::shared_frontier(arena, g, sources, targets),
    }
}

/// [`msmd_in`] with a shard-local tree store: the **adopt-or-grow** entry
/// point. Before growing a spanning tree, the store is consulted for a
/// recorded sweep from the same root; when the tree's goal is provably
/// inside the recorded prefix (every goal node settled, or the sweep
/// complete — see [`crate::trace::SweepTrace::adopt_into`]) the Dijkstra
/// sweep is skipped entirely and the cached labels and *byte-identical*
/// counters are replayed. Otherwise the tree is grown for real, recorded,
/// and re-stored (the deeper sweep replaces the shallower one).
///
/// The answers and every counter are identical to [`msmd_in`] under the
/// same policy — caching, like execution strategy, must never change a
/// report byte. Only hit/miss counts (reported through
/// [`TreeStore::note_hit`] / [`TreeStore::note_miss`]) reveal that a
/// cache was present.
///
/// [`SharingPolicy::SharedFrontier`] grows all trees in one interleaved
/// sweep that does not decompose into per-root traces; under it the store
/// is not consulted and the call degrades to plain [`msmd_in`].
///
/// # Panics
/// Panics if `sources` or `targets` is empty or contains an out-of-range
/// node — an obfuscated query always carries at least the true endpoints.
pub fn msmd_in_cached<G: GraphView, S: TreeStore>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    policy: SharingPolicy,
    store: &mut S,
) -> MsmdResult {
    assert!(!sources.is_empty() && !targets.is_empty(), "S and T must be non-empty");
    let n = g.num_nodes();
    for &x in sources.iter().chain(targets) {
        assert!(x.index() < n, "node {x} out of range");
    }

    match policy {
        SharingPolicy::None => msmd_naive_cached(arena, g, sources, targets, store),
        SharingPolicy::PerSource => msmd_per_source_cached(arena, g, sources, targets, store),
        SharingPolicy::Auto => {
            if targets.len() < sources.len() && g.is_symmetric() {
                // Transposed trees really grow from the targets, but the
                // sweep itself is an ordinary forward sweep (the view is
                // symmetric), so they share cache entries with
                // source-rooted trees at the same node.
                let transposed = msmd_per_source_cached(arena, g, targets, sources, store);
                transpose(transposed, sources.len(), targets.len())
            } else {
                msmd_per_source_cached(arena, g, sources, targets, store)
            }
        }
        SharingPolicy::SharedFrontier => frontier::shared_frontier(arena, g, sources, targets),
    }
}

/// [`msmd_naive`] through the store: one (possibly adopted) tree per
/// pair. Within one unit, the second pair of a source frequently hits the
/// trace the first pair just stored.
fn msmd_naive_cached<G: GraphView, S: TreeStore>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    store: &mut S,
) -> MsmdResult {
    let mut stats = SearchStats::default();
    let mut per_tree = Vec::with_capacity(sources.len() * targets.len());
    let mut paths = Vec::with_capacity(sources.len());
    for &s in sources {
        let mut row = Vec::with_capacity(targets.len());
        for &t in targets {
            let run = run_in_cached(arena, g, s, &Goal::Single(t), store);
            stats.merge(run);
            per_tree.push(TreeStats { root: s, side: TreeSide::Source, stats: run });
            row.push(arena.path_to(0, t));
        }
        paths.push(row);
    }
    MsmdResult { paths, stats, per_tree }
}

/// [`msmd_per_source`] through the store: one (possibly adopted)
/// multi-destination tree per source.
fn msmd_per_source_cached<G: GraphView, S: TreeStore>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    store: &mut S,
) -> MsmdResult {
    let mut stats = SearchStats::default();
    let mut per_tree = Vec::with_capacity(sources.len());
    let goal = Goal::Set(targets.to_vec());
    let mut paths = Vec::with_capacity(sources.len());
    for &s in sources {
        let run = run_in_cached(arena, g, s, &goal, store);
        stats.merge(run);
        per_tree.push(TreeStats { root: s, side: TreeSide::Source, stats: run });
        paths.push(targets.iter().map(|&t| arena.path_to(0, t)).collect());
    }
    MsmdResult { paths, stats, per_tree }
}

fn msmd_naive<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
) -> MsmdResult {
    let mut stats = SearchStats::default();
    let mut per_tree = Vec::with_capacity(sources.len() * targets.len());
    let mut paths = Vec::with_capacity(sources.len());
    for &s in sources {
        let mut row = Vec::with_capacity(targets.len());
        for &t in targets {
            let run = run_in(arena, g, s, &Goal::Single(t));
            stats.merge(run);
            per_tree.push(TreeStats { root: s, side: TreeSide::Source, stats: run });
            row.push(arena.path_to(0, t));
        }
        paths.push(row);
    }
    MsmdResult { paths, stats, per_tree }
}

fn msmd_per_source<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
) -> MsmdResult {
    let mut stats = SearchStats::default();
    let mut per_tree = Vec::with_capacity(sources.len());
    let goal = Goal::Set(targets.to_vec());
    let mut paths = Vec::with_capacity(sources.len());
    for &s in sources {
        let run = run_in(arena, g, s, &goal);
        stats.merge(run);
        per_tree.push(TreeStats { root: s, side: TreeSide::Source, stats: run });
        paths.push(targets.iter().map(|&t| arena.path_to(0, t)).collect());
    }
    MsmdResult { paths, stats, per_tree }
}

/// [`msmd_in`] with optional goal-directed (ALT) pruning: when `pre` is
/// `Some`, every tree is keyed by a max-over-its-targets landmark
/// potential ([`AltPreprocessing::goal_potential`]; the shared-frontier
/// engine uses the bidirectional pair from
/// [`AltPreprocessing::bi_potential`]). Paths, distances, and per-pair
/// answers are identical to the unguided evaluation whenever shortest
/// paths are unique (relaxation still compares raw distances); only the
/// settle order and the settled/relaxed/heap counters change. With `None`
/// this *is* [`msmd_in`], byte-for-byte.
///
/// The preprocessing must come from this graph — landmark tables built on
/// a symmetric view ([`AltPreprocessing::try_build`] enforces that), which
/// also guarantees the guided shared-frontier sweep never meets the
/// directed fallback.
///
/// # Panics
/// Panics if `sources` or `targets` is empty or contains an out-of-range
/// node — an obfuscated query always carries at least the true endpoints.
pub fn msmd_in_guided<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    policy: SharingPolicy,
    pre: Option<&AltPreprocessing>,
) -> MsmdResult {
    let Some(pre) = pre else {
        return msmd_in(arena, g, sources, targets, policy);
    };
    assert!(!sources.is_empty() && !targets.is_empty(), "S and T must be non-empty");
    let n = g.num_nodes();
    for &x in sources.iter().chain(targets) {
        assert!(x.index() < n, "node {x} out of range");
    }

    match policy {
        SharingPolicy::None => {
            msmd_naive_guided(arena, g, sources, targets, pre, None::<&mut NoStore>)
        }
        SharingPolicy::PerSource => {
            msmd_per_source_guided(arena, g, sources, targets, pre, None::<&mut NoStore>)
        }
        SharingPolicy::Auto => {
            if targets.len() < sources.len() && g.is_symmetric() {
                let transposed =
                    msmd_per_source_guided(arena, g, targets, sources, pre, None::<&mut NoStore>);
                transpose(transposed, sources.len(), targets.len())
            } else {
                msmd_per_source_guided(arena, g, sources, targets, pre, None::<&mut NoStore>)
            }
        }
        SharingPolicy::SharedFrontier => frontier::shared_frontier_guided(
            arena,
            g,
            sources,
            targets,
            Some(&pre.bi_potential(sources, targets)),
        ),
    }
}

/// [`msmd_in_cached`] with optional goal-directed pruning — the guided
/// adopt-or-grow. Stored traces are stamped with the potential they ran
/// under and only adopted on an exact parameter match (see
/// [`crate::dijkstra::run_in_guided_cached`]), so for a fixed heuristic
/// setting the cache stays byte-identical to cache-off, and guided and
/// plain traces sharing a root never alias.
///
/// [`SharingPolicy::SharedFrontier`] bypasses the store exactly as in
/// [`msmd_in_cached`].
///
/// # Panics
/// Panics if `sources` or `targets` is empty or contains an out-of-range
/// node — an obfuscated query always carries at least the true endpoints.
pub fn msmd_in_guided_cached<G: GraphView, S: TreeStore>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    policy: SharingPolicy,
    pre: Option<&AltPreprocessing>,
    store: &mut S,
) -> MsmdResult {
    let Some(pre) = pre else {
        return msmd_in_cached(arena, g, sources, targets, policy, store);
    };
    assert!(!sources.is_empty() && !targets.is_empty(), "S and T must be non-empty");
    let n = g.num_nodes();
    for &x in sources.iter().chain(targets) {
        assert!(x.index() < n, "node {x} out of range");
    }

    match policy {
        SharingPolicy::None => msmd_naive_guided(arena, g, sources, targets, pre, Some(store)),
        SharingPolicy::PerSource => {
            msmd_per_source_guided(arena, g, sources, targets, pre, Some(store))
        }
        SharingPolicy::Auto => {
            if targets.len() < sources.len() && g.is_symmetric() {
                let transposed =
                    msmd_per_source_guided(arena, g, targets, sources, pre, Some(store));
                transpose(transposed, sources.len(), targets.len())
            } else {
                msmd_per_source_guided(arena, g, sources, targets, pre, Some(store))
            }
        }
        SharingPolicy::SharedFrontier => frontier::shared_frontier_guided(
            arena,
            g,
            sources,
            targets,
            Some(&pre.bi_potential(sources, targets)),
        ),
    }
}

/// Run one guided tree: through the store when one is given (adopt-or-
/// grow), directly otherwise.
fn run_tree_guided<G: GraphView, S: TreeStore>(
    arena: &mut SearchArena,
    g: &G,
    s: NodeId,
    goal: &Goal,
    pot: &GoalPotential<'_>,
    store: &mut Option<&mut S>,
) -> SearchStats {
    match store {
        Some(st) => run_in_guided_cached(arena, g, s, goal, Some(pot), &mut **st),
        None => run_in_guided(arena, g, s, goal, Some(pot)),
    }
}

/// Guided [`msmd_naive`]: one single-target potential per target column,
/// shared across the source rows.
fn msmd_naive_guided<G: GraphView, S: TreeStore>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    pre: &AltPreprocessing,
    mut store: Option<&mut S>,
) -> MsmdResult {
    let pots: Vec<GoalPotential<'_>> =
        targets.iter().map(|t| pre.goal_potential(std::slice::from_ref(t))).collect();
    let mut stats = SearchStats::default();
    let mut per_tree = Vec::with_capacity(sources.len() * targets.len());
    let mut paths = Vec::with_capacity(sources.len());
    for &s in sources {
        let mut row = Vec::with_capacity(targets.len());
        for (j, &t) in targets.iter().enumerate() {
            let run = run_tree_guided(arena, g, s, &Goal::Single(t), &pots[j], &mut store);
            stats.merge(run);
            per_tree.push(TreeStats { root: s, side: TreeSide::Source, stats: run });
            row.push(arena.path_to(0, t));
        }
        paths.push(row);
    }
    MsmdResult { paths, stats, per_tree }
}

/// Guided [`msmd_per_source`]: one max-over-targets potential shared by
/// every source tree.
fn msmd_per_source_guided<G: GraphView, S: TreeStore>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    pre: &AltPreprocessing,
    mut store: Option<&mut S>,
) -> MsmdResult {
    let pot = pre.goal_potential(targets);
    let mut stats = SearchStats::default();
    let mut per_tree = Vec::with_capacity(sources.len());
    let goal = Goal::Set(targets.to_vec());
    let mut paths = Vec::with_capacity(sources.len());
    for &s in sources {
        let run = run_tree_guided(arena, g, s, &goal, &pot, &mut store);
        stats.merge(run);
        per_tree.push(TreeStats { root: s, side: TreeSide::Source, stats: run });
        paths.push(targets.iter().map(|&t| arena.path_to(0, t)).collect());
    }
    MsmdResult { paths, stats, per_tree }
}

/// Transpose a result computed with sources/targets swapped (undirected
/// networks only; paths are reversed back into `s → t` orientation, and
/// the per-tree attribution is flipped to [`TreeSide::Target`] — the trees
/// really grew from the original query's *targets*).
fn transpose(r: MsmdResult, num_sources: usize, num_targets: usize) -> MsmdResult {
    debug_assert_eq!(r.paths.len(), num_targets);
    let mut paths: Vec<Vec<Option<Path>>> =
        (0..num_sources).map(|_| vec![None; num_targets]).collect();
    for (j, row) in r.paths.into_iter().enumerate() {
        for (i, p) in row.into_iter().enumerate() {
            paths[i][j] = p.map(|mut p| {
                p.reverse();
                p
            });
        }
    }
    let per_tree =
        r.per_tree.into_iter().map(|t| TreeStats { side: TreeSide::Target, ..t }).collect();
    MsmdResult { paths, stats: r.stats, per_tree }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // (i, j) index the result matrix and both sets in lockstep
mod tests {
    use super::*;
    use crate::trace::{SweepDirection, TreeStore};
    use roadnet::generators::{GridConfig, NetworkClass, grid_network};

    fn net() -> roadnet::RoadNetwork {
        grid_network(&GridConfig { width: 16, height: 16, seed: 21, ..Default::default() }).unwrap()
    }

    fn sample_sets(n: u32) -> (Vec<NodeId>, Vec<NodeId>) {
        let sources = vec![NodeId(0), NodeId(n / 5), NodeId(n / 2)];
        let targets = vec![NodeId(n - 1), NodeId(n - n / 4), NodeId(2 * n / 3), NodeId(n / 7)];
        (sources, targets)
    }

    #[test]
    fn all_policies_agree_on_distances() {
        let g = net();
        let (s, t) = sample_sets(256);
        let naive = msmd(&g, &s, &t, SharingPolicy::None);
        for policy in [SharingPolicy::PerSource, SharingPolicy::Auto, SharingPolicy::SharedFrontier]
        {
            let r = msmd(&g, &s, &t, policy);
            for i in 0..s.len() {
                for j in 0..t.len() {
                    let d0 = naive.distance(i, j).unwrap();
                    let d1 = r.distance(i, j).unwrap();
                    assert!(
                        (d0 - d1).abs() < 1e-9,
                        "naive vs {} at ({i},{j}): {d0} vs {d1}",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn paths_are_verifiable_and_oriented() {
        let g = net();
        let (s, t) = sample_sets(256);
        for policy in SharingPolicy::ALL {
            let r = msmd(&g, &s, &t, policy);
            for i in 0..s.len() {
                for j in 0..t.len() {
                    let p = r.paths[i][j].as_ref().unwrap();
                    assert_eq!(p.source(), s[i], "{}", policy.name());
                    assert_eq!(p.destination(), t[j], "{}", policy.name());
                    assert!(p.verify(&g, 1e-9), "{}", policy.name());
                }
            }
        }
    }

    #[test]
    fn sharing_reduces_settled_nodes() {
        let g = net();
        let (s, t) = sample_sets(256);
        let naive = msmd(&g, &s, &t, SharingPolicy::None);
        let shared = msmd(&g, &s, &t, SharingPolicy::PerSource);
        assert!(
            shared.stats.settled < naive.stats.settled,
            "shared {} vs naive {}",
            shared.stats.settled,
            naive.stats.settled
        );
        assert_eq!(shared.per_tree.len(), s.len());
        assert_eq!(naive.per_tree.len(), s.len() * t.len());
    }

    #[test]
    fn shared_frontier_settles_fewer_than_per_source() {
        let g = net();
        let (s, t) = sample_sets(256);
        let per_source = msmd(&g, &s, &t, SharingPolicy::PerSource);
        let frontier = msmd(&g, &s, &t, SharingPolicy::SharedFrontier);
        assert!(
            frontier.stats.settled < per_source.stats.settled,
            "frontier {} vs per-source {}",
            frontier.stats.settled,
            per_source.stats.settled
        );
        // One tree per source and per target, attributed to its root.
        assert_eq!(frontier.per_tree.len(), s.len() + t.len());
        for (k, tree) in frontier.per_tree.iter().enumerate() {
            if k < s.len() {
                assert_eq!((tree.root, tree.side), (s[k], TreeSide::Source));
            } else {
                assert_eq!((tree.root, tree.side), (t[k - s.len()], TreeSide::Target));
            }
        }
    }

    #[test]
    fn shared_frontier_reuses_one_arena_across_queries() {
        let g = net();
        let (s, t) = sample_sets(256);
        let mut arena = SearchArena::new();
        let first = msmd_in(&mut arena, &g, &s, &t, SharingPolicy::SharedFrontier);
        let cap = arena.capacity();
        for _ in 0..10 {
            let again = msmd_in(&mut arena, &g, &s, &t, SharingPolicy::SharedFrontier);
            assert_eq!(again.stats.settled, first.stats.settled, "runs must be deterministic");
            for i in 0..s.len() {
                for j in 0..t.len() {
                    assert_eq!(again.paths[i][j], first.paths[i][j]);
                }
            }
        }
        assert_eq!(arena.capacity(), cap, "steady-state queries must not regrow the arena");
    }

    #[test]
    fn auto_picks_smaller_side() {
        let g = net();
        // 5 sources, 2 targets: auto should grow only 2 trees.
        let sources: Vec<NodeId> = (0..5).map(|i| NodeId(i * 40)).collect();
        let targets = vec![NodeId(255), NodeId(17)];
        let auto = msmd(&g, &sources, &targets, SharingPolicy::Auto);
        assert_eq!(auto.per_tree.len(), 2);
        // The transposed trees are attributed to the *targets* they grew
        // from, not misread as source trees.
        for (j, tree) in auto.per_tree.iter().enumerate() {
            assert_eq!((tree.root, tree.side), (targets[j], TreeSide::Target));
        }
        // And still answer all 10 pairs correctly.
        let naive = msmd(&g, &sources, &targets, SharingPolicy::None);
        for i in 0..5 {
            for j in 0..2 {
                assert!(
                    (auto.distance(i, j).unwrap() - naive.distance(i, j).unwrap()).abs() < 1e-9
                );
                let p = auto.paths[i][j].as_ref().unwrap();
                assert_eq!(p.source(), sources[i]);
                assert_eq!(p.destination(), targets[j]);
            }
        }
    }

    #[test]
    fn works_on_all_network_classes() {
        for class in NetworkClass::ALL {
            let g = class.generate(500, 3).unwrap();
            let n = g.num_nodes() as u32;
            let s = vec![NodeId(0), NodeId(n / 2)];
            let t = vec![NodeId(n - 1), NodeId(n / 3), NodeId(2 * n / 5)];
            for policy in [SharingPolicy::Auto, SharingPolicy::SharedFrontier] {
                let r = msmd(&g, &s, &t, policy);
                assert_eq!(r.num_paths(), 6, "{} under {}", class.name(), policy.name());
            }
        }
    }

    #[test]
    fn overlapping_sources_and_targets() {
        let g = net();
        let s = vec![NodeId(10), NodeId(20)];
        let t = vec![NodeId(20), NodeId(10)];
        for policy in [SharingPolicy::PerSource, SharingPolicy::SharedFrontier] {
            let r = msmd(&g, &s, &t, policy);
            // Q(10,10) and Q(20,20) are trivial paths.
            assert!(r.paths[0][1].as_ref().unwrap().is_trivial(), "{}", policy.name());
            assert!(r.paths[1][0].as_ref().unwrap().is_trivial(), "{}", policy.name());
            assert!(r.paths[0][0].as_ref().unwrap().distance() > 0.0, "{}", policy.name());
        }
    }

    #[test]
    fn shared_frontier_handles_disconnected_pairs() {
        use roadnet::{GraphBuilder, Point};
        // Two components: a 4-node square and an isolated edge.
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        b.add_edge(NodeId(4), NodeId(5), 1.0).unwrap();
        let g = b.build().unwrap();
        let r = msmd(
            &g,
            &[NodeId(0), NodeId(4)],
            &[NodeId(3), NodeId(5)],
            SharingPolicy::SharedFrontier,
        );
        assert!(r.paths[0][0].is_some());
        assert!(r.paths[0][1].is_none(), "cross-component pair must be None");
        assert!(r.paths[1][0].is_none());
        assert!(r.paths[1][1].is_some());
        let naive = msmd(&g, &[NodeId(0), NodeId(4)], &[NodeId(3), NodeId(5)], SharingPolicy::None);
        assert_eq!(r.distance(0, 0), naive.distance(0, 0));
        assert_eq!(r.distance(1, 1), naive.distance(1, 1));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sources_panic() {
        let g = net();
        let _ = msmd(&g, &[], &[NodeId(0)], SharingPolicy::PerSource);
    }

    #[test]
    fn policy_names() {
        assert_eq!(SharingPolicy::None.name(), "naive");
        assert_eq!(SharingPolicy::PerSource.name(), "per-source");
        assert_eq!(SharingPolicy::Auto.name(), "auto");
        assert_eq!(SharingPolicy::SharedFrontier.name(), "shared-frontier");
        assert_eq!(SharingPolicy::ALL.len(), 4);
    }

    #[test]
    fn auto_does_not_transpose_on_directed_graphs() {
        use roadnet::{GraphBuilder, Point};
        // Directed chain 0 → 1 → 2 with an expensive reverse detour
        // 2 → 3 → 0: transposing roles would compute wrong distances.
        let mut b = GraphBuilder::directed();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 10.0).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 10.0).unwrap();
        let g = b.build().unwrap();
        assert!(!roadnet::GraphView::is_symmetric(&g));

        // 3 sources, 1 target: Auto would love to transpose, but must not.
        let sources = vec![NodeId(0), NodeId(1), NodeId(2)];
        let targets = vec![NodeId(2)];
        let auto = msmd(&g, &sources, &targets, SharingPolicy::Auto);
        let naive = msmd(&g, &sources, &targets, SharingPolicy::None);
        for i in 0..3 {
            assert_eq!(auto.distance(i, 0), naive.distance(i, 0), "source {i}");
        }
        // Directed distances are asymmetric: 0→2 is 2, 2→0 is 20.
        assert!((auto.distance(0, 0).unwrap() - 2.0).abs() < 1e-12);
        // Auto fell back to one tree per source, attributed to sources.
        assert_eq!(auto.per_tree.len(), 3);
        for (i, tree) in auto.per_tree.iter().enumerate() {
            assert_eq!((tree.root, tree.side), (sources[i], TreeSide::Source));
        }
    }

    /// Unbounded map-backed [`TreeStore`] for cache-equivalence tests.
    #[derive(Default)]
    struct MapStore {
        map: std::collections::HashMap<(u32, SweepDirection), crate::trace::SweepTrace>,
        hits: u64,
        misses: u64,
    }

    impl TreeStore for MapStore {
        fn lookup(
            &mut self,
            root: NodeId,
            direction: SweepDirection,
        ) -> Option<&crate::trace::SweepTrace> {
            self.map.get(&(root.0, direction))
        }

        fn store(
            &mut self,
            root: NodeId,
            direction: SweepDirection,
            trace: crate::trace::SweepTrace,
        ) {
            let entry = self.map.entry((root.0, direction));
            match entry {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    if trace.len() >= o.get().len() {
                        o.insert(trace);
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(trace);
                }
            }
        }

        fn note_hit(&mut self) {
            self.hits += 1;
        }

        fn note_miss(&mut self) {
            self.misses += 1;
        }
    }

    #[test]
    fn cached_msmd_is_byte_identical_to_uncached_and_hits_on_reuse() {
        let g = net();
        let (s, t) = sample_sets(256);
        let mut plain_arena = SearchArena::new();
        let mut cached_arena = SearchArena::new();
        for policy in [SharingPolicy::None, SharingPolicy::PerSource, SharingPolicy::Auto] {
            let mut store = MapStore::default();
            // Round 1: cold cache — everything misses but must still
            // match the uncached engine exactly, stats included.
            // Rounds 2..: warm cache — hits replay the same bytes.
            for round in 0..3 {
                let reference = msmd_in(&mut plain_arena, &g, &s, &t, policy);
                let cached = msmd_in_cached(&mut cached_arena, &g, &s, &t, policy, &mut store);
                assert_eq!(cached.stats, reference.stats, "{} round {round}", policy.name());
                assert_eq!(
                    cached.per_tree.len(),
                    reference.per_tree.len(),
                    "{} round {round}",
                    policy.name()
                );
                for (a, b) in cached.per_tree.iter().zip(&reference.per_tree) {
                    assert_eq!(a, b, "{} round {round}: per-tree stats diverged", policy.name());
                }
                for i in 0..s.len() {
                    for j in 0..t.len() {
                        assert_eq!(
                            cached.paths[i][j],
                            reference.paths[i][j],
                            "{} round {round} pair ({i},{j})",
                            policy.name()
                        );
                    }
                }
            }
            assert!(store.hits > 0, "{}: warm rounds must hit", policy.name());
            assert!(store.misses > 0, "{}: the cold round must miss", policy.name());
        }
    }

    #[test]
    fn cached_auto_transposition_shares_roots_with_source_trees() {
        let g = net();
        // 5 sources, 2 targets: Auto transposes, rooting trees at the two
        // targets — which then serve as cache entries for a later query
        // where those nodes appear as *sources* (symmetric view).
        let sources: Vec<NodeId> = (0..5).map(|i| NodeId(i * 40)).collect();
        let targets = vec![NodeId(255), NodeId(17)];
        let mut arena = SearchArena::new();
        let mut store = MapStore::default();
        let auto =
            msmd_in_cached(&mut arena, &g, &sources, &targets, SharingPolicy::Auto, &mut store);
        assert_eq!(auto.per_tree.len(), 2);
        assert_eq!(store.misses, 2);

        // Same roots, now as sources of a PerSource query with nearby
        // goals: both trees adopt (the transposed sweeps covered the whole
        // source spread, which includes these goals).
        let reference = msmd(&g, &targets, &[NodeId(0), NodeId(80)], SharingPolicy::PerSource);
        let cached = msmd_in_cached(
            &mut arena,
            &g,
            &targets,
            &[NodeId(0), NodeId(80)],
            SharingPolicy::PerSource,
            &mut store,
        );
        assert_eq!(store.hits, 2, "transposed trees are reusable as forward trees");
        assert_eq!(cached.stats, reference.stats);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(cached.paths[i][j], reference.paths[i][j]);
            }
        }
    }

    #[test]
    fn cached_shared_frontier_bypasses_the_store() {
        let g = net();
        let (s, t) = sample_sets(256);
        let mut arena = SearchArena::new();
        let mut store = MapStore::default();
        let reference = msmd(&g, &s, &t, SharingPolicy::SharedFrontier);
        let r = msmd_in_cached(&mut arena, &g, &s, &t, SharingPolicy::SharedFrontier, &mut store);
        assert_eq!(r.stats, reference.stats);
        assert_eq!((store.hits, store.misses), (0, 0), "frontier sweeps are not cacheable");
        assert!(store.map.is_empty());
    }

    #[test]
    fn cached_msmd_handles_disconnected_pairs() {
        use roadnet::{GraphBuilder, Point};
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(4), NodeId(5), 1.0).unwrap();
        let g = b.build().unwrap();
        let s = [NodeId(0), NodeId(4)];
        let t = [NodeId(2), NodeId(5)];
        let mut store = MapStore::default();
        let mut arena = SearchArena::new();
        for round in 0..2 {
            let reference = msmd(&g, &s, &t, SharingPolicy::PerSource);
            let cached =
                msmd_in_cached(&mut arena, &g, &s, &t, SharingPolicy::PerSource, &mut store);
            assert_eq!(cached.stats, reference.stats, "round {round}");
            for i in 0..2 {
                for j in 0..2 {
                    assert_eq!(cached.paths[i][j], reference.paths[i][j], "round {round}");
                }
            }
        }
        // Unreachable targets force complete sweeps, which are adoptable:
        // the second round is all hits.
        assert_eq!((store.hits, store.misses), (2, 2));
    }

    #[test]
    fn guided_msmd_matches_plain_paths_and_prunes_settles() {
        let g = net();
        let (s, t) = sample_sets(256);
        let pre = AltPreprocessing::try_build(&g, 6).unwrap();
        let mut arena = SearchArena::new();
        let mut settled_guided = 0u64;
        let mut settled_plain = 0u64;
        for policy in SharingPolicy::ALL {
            let plain = msmd_in(&mut arena, &g, &s, &t, policy);
            let guided = msmd_in_guided(&mut arena, &g, &s, &t, policy, Some(&pre));
            for i in 0..s.len() {
                for j in 0..t.len() {
                    assert_eq!(
                        guided.paths[i][j],
                        plain.paths[i][j],
                        "{} pair ({i},{j}): guided path diverged",
                        policy.name()
                    );
                }
            }
            settled_guided += guided.stats.settled;
            settled_plain += plain.stats.settled;
            // And None-preprocessing is byte-identical to the plain entry.
            let none = msmd_in_guided(&mut arena, &g, &s, &t, policy, None);
            assert_eq!(none.stats, plain.stats, "{}", policy.name());
        }
        assert!(
            settled_guided <= settled_plain,
            "ALT settled {settled_guided} vs plain {settled_plain}"
        );
    }

    #[test]
    fn guided_cached_is_byte_identical_and_never_adopts_plain_traces() {
        let g = net();
        let (s, t) = sample_sets(256);
        let pre = AltPreprocessing::try_build(&g, 5).unwrap();
        let mut arena = SearchArena::new();
        let mut cached_arena = SearchArena::new();
        for policy in [SharingPolicy::None, SharingPolicy::PerSource, SharingPolicy::Auto] {
            let mut store = MapStore::default();
            // Seed the store with PLAIN traces for the same roots: the
            // guided runner must refuse them all (potential mismatch).
            let _ = msmd_in_cached(&mut cached_arena, &g, &s, &t, policy, &mut store);
            let plain_misses = store.misses;
            store.hits = 0;
            for round in 0..2 {
                let reference = msmd_in_guided(&mut arena, &g, &s, &t, policy, Some(&pre));
                let cached = msmd_in_guided_cached(
                    &mut cached_arena,
                    &g,
                    &s,
                    &t,
                    policy,
                    Some(&pre),
                    &mut store,
                );
                assert_eq!(cached.stats, reference.stats, "{} round {round}", policy.name());
                for (a, b) in cached.per_tree.iter().zip(&reference.per_tree) {
                    assert_eq!(a, b, "{} round {round}", policy.name());
                }
                for i in 0..s.len() {
                    for j in 0..t.len() {
                        assert_eq!(cached.paths[i][j], reference.paths[i][j]);
                    }
                }
                if round == 0 {
                    assert_eq!(
                        store.hits,
                        0,
                        "{}: plain traces must never serve guided sweeps",
                        policy.name()
                    );
                }
            }
            // Under None each (root, target) pair carries its own potential
            // params, so a single-slot-per-root store may churn between them
            // and a second round is not guaranteed to hit; set-potential
            // policies share one params value per batch and must hit.
            if policy != SharingPolicy::None {
                assert!(store.hits > 0, "{}: guided round 2 must hit guided traces", policy.name());
            }
            assert!(store.misses > plain_misses, "{}: guided round 1 must miss", policy.name());
        }
    }

    #[test]
    fn shared_frontier_is_exact_on_directed_graphs() {
        use roadnet::{GraphBuilder, Point};
        // Same asymmetric diamond: the frontier engine must fall back to
        // forward-only trees rather than assume symmetric arcs.
        let mut b = GraphBuilder::directed();
        for i in 0..4 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 10.0).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 10.0).unwrap();
        let g = b.build().unwrap();

        let sources = vec![NodeId(0), NodeId(2)];
        let targets = vec![NodeId(2), NodeId(0)];
        let r = msmd(&g, &sources, &targets, SharingPolicy::SharedFrontier);
        let naive = msmd(&g, &sources, &targets, SharingPolicy::None);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(r.distance(i, j), naive.distance(i, j), "({i},{j})");
                if let Some(p) = &r.paths[i][j] {
                    assert_eq!(p.source(), sources[i]);
                    assert_eq!(p.destination(), targets[j]);
                    assert!(p.verify(&g, 1e-9));
                }
            }
        }
        // Forward-only fallback: one tree per source.
        assert_eq!(r.per_tree.len(), 2);
    }
}
