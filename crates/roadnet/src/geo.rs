//! Planar geometry primitives used by the road-network model.
//!
//! The paper models a road network as a weighted graph whose nodes represent
//! geographic locations (§III-A). All obfuscation strategies and the A*
//! heuristic reason about straight-line (Euclidean) distance between node
//! coordinates, so the geometry layer is deliberately simple: points in the
//! plane plus a handful of distance/box helpers.

use std::fmt;

/// A point in the plane. Coordinates are abstract map units (the generators
/// produce networks where one unit is comparable to one "block").
#[derive(Clone, Copy, PartialEq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Point {
    /// Horizontal coordinate in map units.
    pub x: f64,
    /// Vertical coordinate in map units.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only
    /// comparisons are needed).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// True if both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// An axis-aligned bounding box.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct BoundingBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BoundingBox {
    /// An "empty" box that expands to fit the first point added.
    pub fn empty() -> Self {
        BoundingBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Box spanning exactly the given corners.
    pub fn new(min: Point, max: Point) -> Self {
        BoundingBox { min, max }
    }

    /// Compute the bounding box of an iterator of points.
    pub fn of_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut b = Self::empty();
        for p in points {
            b.extend(p);
        }
        b
    }

    /// Grow the box to include `p`.
    pub fn extend(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// True if no point has been added yet.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// Width of the box (0 for empty boxes).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height of the box (0 for empty boxes).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Length of the diagonal. A useful scale for "how far apart can two
    /// locations on this map possibly be".
    pub fn diagonal(&self) -> f64 {
        if self.is_empty() { 0.0 } else { self.min.distance(self.max) }
    }

    /// True if `p` lies inside (or on the border of) the box.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Center of the box.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-3.0, 7.25);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        let m = a.midpoint(b);
        assert_eq!(m, Point::new(1.0, 3.0));
    }

    #[test]
    fn bbox_of_points_covers_all() {
        let pts = vec![Point::new(1.0, 5.0), Point::new(-2.0, 0.5), Point::new(4.0, 2.0)];
        let b = BoundingBox::of_points(pts.iter().copied());
        assert_eq!(b.min, Point::new(-2.0, 0.5));
        assert_eq!(b.max, Point::new(4.0, 5.0));
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn empty_bbox_behaves() {
        let b = BoundingBox::empty();
        assert!(b.is_empty());
        assert_eq!(b.width(), 0.0);
        assert_eq!(b.height(), 0.0);
        assert_eq!(b.diagonal(), 0.0);
        assert!(!b.contains(Point::new(0.0, 0.0)));
    }

    #[test]
    fn bbox_dimensions() {
        let b = BoundingBox::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 4.0);
        assert!((b.diagonal() - 5.0).abs() < 1e-12);
        assert_eq!(b.center(), Point::new(1.5, 2.0));
    }

    #[test]
    fn point_finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
