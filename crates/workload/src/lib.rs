//! # workload — synthetic client workloads for OPAQUE experiments
//!
//! The paper's evaluation needs populations of clients issuing path queries
//! with privacy preferences. Real query logs are unavailable (and would fix
//! the spatial locality experiments sweep over), so this crate generates
//! them synthetically and reproducibly:
//!
//! * [`QueryDistribution`] — uniform trips, hotspot-bound trips, commuter
//!   flows ([`distributions`]);
//! * [`ProtectionDistribution`] / [`WorkloadConfig`] /
//!   [`generate_requests`] — full request batches ([`generator`]);
//! * [`population_weights`] — synthetic population-density surfaces used as
//!   endpoint-plausibility priors by both the obfuscator's weighted
//!   strategy and the background-knowledge adversary ([`plausibility`]);
//! * [`rush_hour_schedule`] — spatially localized live-traffic weight
//!   churn for the dynamic-map experiments ([`churn`]).
//!
//! ## Quick example
//!
//! ```
//! use roadnet::generators::{GridConfig, grid_network};
//! use roadnet::SpatialIndex;
//! use workload::{WorkloadConfig, generate_requests};
//!
//! let map = grid_network(&GridConfig { width: 12, height: 12, ..Default::default() }).unwrap();
//! let index = SpatialIndex::build(&map);
//! let batch = generate_requests(&map, &index, &WorkloadConfig::default());
//! assert_eq!(batch.len(), 32);
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod churn;
pub mod distributions;
pub mod generator;
pub mod histogram;
pub mod plausibility;

pub use arrivals::{
    ArrivalConfig, ArrivalProcess, TimedRequest, WindowBatch, arrival_stream, poisson_stream,
    window_batches,
};
pub use churn::{ChurnConfig, rush_hour_schedule};
pub use distributions::{QueryDistribution, QuerySampler};
pub use generator::{ProtectionDistribution, WorkloadConfig, generate_requests};
pub use histogram::LatencyHistogram;
pub use plausibility::{PopulationConfig, population_weights};
