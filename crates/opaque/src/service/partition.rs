//! Region-owned shard placement: deterministic graph partitioning and
//! query routing.
//!
//! Round-robin placement scatters a spatially clustered workload across
//! the whole fleet, so every shard's tree cache re-learns every popular
//! root. Region ownership fixes that: the map is partitioned into one
//! node region per shard, each region is widened by a k-hop **halo**, and
//! every obfuscated query unit is routed to the shard owning its
//! obfuscation region. Placement is the *only* thing that changes —
//! every shard keeps a view of the whole map (shared behind an `Arc`, so
//! memory stays 1×), every unit is answered by exactly one shard, and the
//! answer is a pure function of `(map, query, sharing policy)`. Batch
//! reports only ever read fleet-merged counters through the commutative
//! [`crate::server::ServerStats::merge`], so routing cannot leak into a
//! single report byte: `RegionOwned ≡ RoundRobin ≡ Sequential`,
//! byte-identical, which `tests/partition_equivalence.rs` holds the
//! module to.
//!
//! ## Partitioning
//!
//! [`Partition::build`] is deterministic by construction — no RNG, no
//! hash-map iteration, only id-ordered scans:
//!
//! 1. **Seeds** by farthest-point sampling over BFS hop distance: the
//!    first seed is node 0; each further seed is the node farthest from
//!    all previous seeds (unreached components count as infinitely far,
//!    so seeds spread across components first; ties break to the lowest
//!    node id).
//! 2. **Regions** by synchronized multi-source BFS flood fill: all seeds
//!    grow one hop per round, a contested node goes to the lowest shard
//!    id that reaches it in that round.
//! 3. **Leftover components** (unreachable from every seed) go whole to
//!    the shard with the fewest owned nodes (ties: lowest shard id).
//! 4. **Halos**: each shard's coverage is its owned region expanded by
//!    `halo` BFS hops into neighboring regions.
//!
//! ## Routing
//!
//! [`Partition::route`] sends a unit to the shard owning its obfuscation
//! region, with two safety nets so no query is ever newly unreachable:
//! prefer the shard that *owns* every endpoint ([`RouteKind::Owner`]);
//! otherwise any shard whose owned-plus-halo coverage spans all endpoints
//! ([`RouteKind::Halo`]); otherwise fall back to the majority owner of
//! the unit's tree-root side ([`RouteKind::Fallback`]) — which is also
//! the cache-optimal choice, since shortest-path trees are keyed by their
//! roots.

use crate::error::{OpaqueError, Result};
use crate::query::ObfuscatedPathQuery;
use roadnet::{GraphView, NodeId};

/// How a [`crate::ShardedBackend`] places query units on shards.
///
/// Serialized in the externally-tagged enum form
/// (`"RoundRobin"` / `{"RegionOwned":{"halo":2}}`); a missing or `null`
/// config field reads as [`PartitionPolicy::RoundRobin`], so configs
/// written before this policy existed keep their meaning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// The historical placement: rotate units across shards.
    #[default]
    RoundRobin,
    /// Partition the map into one region per shard and route each unit
    /// to the shard owning its obfuscation region.
    RegionOwned {
        /// K-hop halo: how far each shard's coverage extends beyond its
        /// owned region into its neighbors. `0` means owned nodes only.
        halo: u32,
    },
}

impl PartitionPolicy {
    /// Short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            PartitionPolicy::RoundRobin => "round-robin".to_string(),
            PartitionPolicy::RegionOwned { halo } => format!("region-owned(halo={halo})"),
        }
    }
}

// Hand-written (instead of derived) for one reason: absent config fields
// deserialize from `Null`, and `Null` must read as the round-robin
// default so pre-partition `ServiceConfig` JSON still parses.
impl serde::Serialize for PartitionPolicy {
    fn to_value(&self) -> serde::Value {
        match self {
            PartitionPolicy::RoundRobin => serde::Value::Str("RoundRobin".to_string()),
            PartitionPolicy::RegionOwned { halo } => serde::Value::Object(vec![(
                "RegionOwned".to_string(),
                serde::Value::Object(vec![("halo".to_string(), halo.to_value())]),
            )]),
        }
    }
}

impl serde::Deserialize for PartitionPolicy {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        match v {
            serde::Value::Null => Ok(PartitionPolicy::RoundRobin),
            serde::Value::Str(s) if s == "RoundRobin" => Ok(PartitionPolicy::RoundRobin),
            serde::Value::Object(entries) => match entries.as_slice() {
                [(tag, inner)] if tag == "RegionOwned" => {
                    let fields = inner.as_object().ok_or_else(|| {
                        serde::DeError::expected("object for variant RegionOwned")
                    })?;
                    let halo = serde::Deserialize::from_value(serde::__field(fields, "halo"))?;
                    Ok(PartitionPolicy::RegionOwned { halo })
                }
                _ => Err(serde::DeError::expected("PartitionPolicy variant")),
            },
            _ => Err(serde::DeError::expected("string or map for enum PartitionPolicy")),
        }
    }
}

/// Why [`Partition::route_explain`] picked the shard it picked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteKind {
    /// One shard owns every endpoint of the unit outright.
    Owner,
    /// No single owner, but a shard's owned-plus-halo coverage spans all
    /// endpoints — the cut-straddling case the halo exists for.
    Halo,
    /// The span exceeds every halo; the unit goes to the majority owner
    /// of its tree-root side. Still answered exactly once (every shard
    /// holds the whole map), just with less locality.
    Fallback,
}

/// A deterministic node-to-shard assignment with halo coverage, plus the
/// router over it.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Owning shard per node id.
    owner: Vec<u32>,
    /// Per shard: owned ∪ halo membership, one flag per node id.
    covers: Vec<Vec<bool>>,
    /// Per shard: number of owned nodes.
    owned_counts: Vec<usize>,
    /// The halo width the coverage was built with.
    halo: u32,
}

impl Partition {
    /// Partition `graph` into `shards` regions with a `halo`-hop overlap.
    ///
    /// Fully deterministic for a given `(graph, shards, halo)`: repeated
    /// builds return identical assignments (pinned by unit tests), so a
    /// restarted service routes exactly like its predecessor.
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] for zero shards or more shards than
    /// the map has nodes (an empty region could never own a query).
    pub fn build<G: GraphView>(graph: &G, shards: usize, halo: u32) -> Result<Self> {
        let n = graph.num_nodes();
        if shards == 0 {
            return Err(OpaqueError::InvalidConfig {
                reason: "partition needs at least one shard".to_string(),
            });
        }
        if shards > n {
            return Err(OpaqueError::InvalidConfig {
                reason: format!("cannot partition {n} nodes into {shards} non-empty regions"),
            });
        }

        let seeds = select_seeds(graph, shards);
        let (owner, owned_counts) = flood_fill(graph, &seeds);
        let covers = (0..shards)
            .map(|s| {
                let owned: Vec<bool> = owner.iter().map(|&o| o as usize == s).collect();
                expand_hops(graph, owned, halo)
            })
            .collect();
        Ok(Partition { owner, covers, owned_counts, halo })
    }

    /// Number of shards the map is partitioned into.
    pub fn shards(&self) -> usize {
        self.covers.len()
    }

    /// The halo width (BFS hops) the coverage was built with.
    pub fn halo(&self) -> u32 {
        self.halo
    }

    /// The shard owning node `n`, or `None` for an out-of-range id.
    pub fn owner_of(&self, n: NodeId) -> Option<usize> {
        self.owner.get(n.index()).map(|&s| s as usize)
    }

    /// Whether shard `s`'s owned-plus-halo coverage includes node `n`.
    pub fn covers(&self, s: usize, n: NodeId) -> bool {
        self.covers.get(s).and_then(|c| c.get(n.index())).copied().unwrap_or(false)
    }

    /// Number of nodes shard `s` owns outright (halo excluded).
    pub fn owned_count(&self, s: usize) -> usize {
        self.owned_counts.get(s).copied().unwrap_or(0)
    }

    /// The owning shard per node id, for inspection and tests.
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// The shard that should serve `query`.
    pub fn route(&self, query: &ObfuscatedPathQuery) -> usize {
        self.route_explain(query).0
    }

    /// The shard that should serve `query`, plus why — the `Owner → Halo
    /// → Fallback` chain described in the module docs.
    pub fn route_explain(&self, query: &ObfuscatedPathQuery) -> (usize, RouteKind) {
        self.route_endpoints(query.sources(), query.targets())
    }

    /// Route an explicit source/target endpoint split (the plain-query
    /// case routes a single pair through this).
    pub fn route_endpoints(&self, sources: &[NodeId], targets: &[NodeId]) -> (usize, RouteKind) {
        // Tree roots grow from the smaller side (the MSMD transposition
        // rule), so that side's owners are the cache-relevant votes.
        // Ties keep the source side, matching the search layer.
        let root_side = if targets.len() < sources.len() { targets } else { sources };
        let votes = self.tally(root_side.iter().copied());
        let preferred = match pick_max(&votes) {
            Some(s) => s,
            // Root side entirely out of range: vote over everything, and
            // fall back to shard 0 if nothing is in range at all.
            None => pick_max(&self.tally(sources.iter().chain(targets).copied())).unwrap_or(0),
        };

        let in_range = |n: &&NodeId| -> bool { n.index() < self.owner.len() };
        // Owner: some shard owns every in-range endpoint outright. Owners
        // are unique per node, so only the preferred shard can qualify.
        let all_owned = sources
            .iter()
            .chain(targets)
            .filter(in_range)
            .all(|&n| self.owner[n.index()] as usize == preferred);
        if all_owned {
            return (preferred, RouteKind::Owner);
        }
        // Halo: the unit straddles a cut but fits inside some shard's
        // widened coverage. Prefer the root-side majority owner when its
        // halo spans the unit; otherwise the most-voted covering shard.
        let covered_by =
            |s: usize| sources.iter().chain(targets).filter(in_range).all(|&n| self.covers(s, n));
        if covered_by(preferred) {
            return (preferred, RouteKind::Halo);
        }
        let mut best: Option<(usize, usize)> = None; // (votes, shard)
        for s in 0..self.shards() {
            if covered_by(s) {
                let v = votes.get(s).copied().unwrap_or(0);
                if best.is_none_or(|(bv, bs)| v > bv || (v == bv && s < bs)) {
                    best = Some((v, s));
                }
            }
        }
        if let Some((_, s)) = best {
            return (s, RouteKind::Halo);
        }
        (preferred, RouteKind::Fallback)
    }

    /// Per-shard vote counts for a set of endpoints (out-of-range ids
    /// cast no vote).
    fn tally(&self, nodes: impl Iterator<Item = NodeId>) -> Vec<usize> {
        let mut votes = vec![0usize; self.shards()];
        for n in nodes {
            if let Some(&s) = self.owner.get(n.index()) {
                votes[s as usize] += 1;
            }
        }
        votes
    }
}

/// Index of the maximum vote count, ties to the lowest shard id; `None`
/// when no shard received a vote.
fn pick_max(votes: &[usize]) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (votes, shard)
    for (s, &v) in votes.iter().enumerate() {
        if v > 0 && best.is_none_or(|(bv, _)| v > bv) {
            best = Some((v, s));
        }
    }
    best.map(|(_, s)| s)
}

/// Farthest-point sampling over BFS hop distance: node 0 first, then
/// repeatedly the node with the greatest hop distance to every already
/// chosen seed (unreached = infinite, ties to the lowest id).
fn select_seeds<G: GraphView>(graph: &G, shards: usize) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut seeds = vec![NodeId::from_index(0)];
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    while seeds.len() < shards {
        // Multi-source BFS from all current seeds (re-run per seed
        // addition; seed counts are shard counts, i.e. small).
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        queue.clear();
        for &s in &seeds {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            graph.for_each_arc(u, &mut |v, _| {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    queue.push_back(v);
                }
            });
        }
        let farthest = (0..n)
            .max_by(|&a, &b| {
                // max distance, ties to the LOWEST id → reverse the id
                // ordering inside the comparator.
                dist[a].cmp(&dist[b]).then(b.cmp(&a))
            })
            .expect("non-empty graph");
        seeds.push(NodeId::from_index(farthest));
    }
    seeds
}

/// Synchronized multi-source BFS flood fill from one seed per shard; ties
/// go to the lowest shard id. Components no seed reaches are attached
/// whole to the smallest shard. Returns `(owner, owned_counts)`.
fn flood_fill<G: GraphView>(graph: &G, seeds: &[NodeId]) -> (Vec<u32>, Vec<usize>) {
    let n = graph.num_nodes();
    const UNOWNED: u32 = u32::MAX;
    let mut owner = vec![UNOWNED; n];
    let mut counts = vec![0usize; seeds.len()];
    // One frontier per shard, advanced in lockstep; iterating shards in
    // id order within a round gives contested nodes to the lowest shard.
    let mut frontiers: Vec<Vec<NodeId>> = seeds
        .iter()
        .enumerate()
        .map(|(s, &seed)| {
            debug_assert_eq!(owner[seed.index()], UNOWNED, "seeds are distinct");
            owner[seed.index()] = s as u32;
            counts[s] += 1;
            vec![seed]
        })
        .collect();
    loop {
        let mut grew = false;
        let mut next: Vec<Vec<NodeId>> = vec![Vec::new(); seeds.len()];
        for (s, frontier) in frontiers.iter().enumerate() {
            for &u in frontier {
                graph.for_each_arc(u, &mut |v, _| {
                    if owner[v.index()] == UNOWNED {
                        owner[v.index()] = s as u32;
                        counts[s] += 1;
                        next[s].push(v);
                    }
                });
            }
            grew |= !next[s].is_empty();
        }
        if !grew {
            break;
        }
        frontiers = next;
    }
    // Leftover components: BFS each in node-id order, assign the whole
    // component to the currently smallest shard.
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if owner[start] != UNOWNED {
            continue;
        }
        let smallest = counts
            .iter()
            .enumerate()
            .min_by_key(|&(s, &c)| (c, s))
            .map(|(s, _)| s as u32)
            .expect("at least one shard");
        owner[start] = smallest;
        counts[smallest as usize] += 1;
        queue.push_back(NodeId::from_index(start));
        while let Some(u) = queue.pop_front() {
            graph.for_each_arc(u, &mut |v, _| {
                if owner[v.index()] == UNOWNED {
                    owner[v.index()] = smallest;
                    counts[smallest as usize] += 1;
                    queue.push_back(v);
                }
            });
        }
    }
    (owner, counts)
}

/// Expand a membership set by `hops` BFS levels (forward arcs).
fn expand_hops<G: GraphView>(graph: &G, mut members: Vec<bool>, hops: u32) -> Vec<bool> {
    let mut frontier: Vec<NodeId> =
        (0..members.len()).filter(|&i| members[i]).map(NodeId::from_index).collect();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &u in &frontier {
            graph.for_each_arc(u, &mut |v, _| {
                if !members[v.index()] {
                    members[v.index()] = true;
                    next.push(v);
                }
            });
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::generators::{GridConfig, grid_network};
    use roadnet::{GraphBuilder, Point, RoadNetwork};

    fn grid(w: usize, h: usize) -> RoadNetwork {
        grid_network(&GridConfig { width: w, height: h, seed: 5, ..Default::default() }).unwrap()
    }

    /// Two disjoint 3-chains plus an isolated pair: 3 components.
    fn disconnected() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..8 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        for (a, c) in [(0u32, 1u32), (1, 2), (3, 4), (4, 5), (6, 7)] {
            b.add_edge(NodeId(a), NodeId(c), 1.0).unwrap();
        }
        b.build().unwrap()
    }

    fn check_invariants(p: &Partition, g: &RoadNetwork) {
        let n = g.num_nodes();
        assert_eq!(p.owners().len(), n);
        // Every node owned exactly once, by a real shard.
        let mut counts = vec![0usize; p.shards()];
        for (i, &o) in p.owners().iter().enumerate() {
            assert!((o as usize) < p.shards(), "node {i} owned by ghost shard {o}");
            counts[o as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), n);
        for (s, &owned) in counts.iter().enumerate() {
            assert_eq!(owned, p.owned_count(s));
            assert!(owned > 0, "shard {s} owns no nodes");
            // Coverage ⊇ owned; the excess is the halo, which must sit in
            // *other* shards' regions (halos ⊆ neighbor regions).
            for i in 0..n {
                let node = NodeId::from_index(i);
                if p.owner_of(node) == Some(s) {
                    assert!(p.covers(s, node), "shard {s} does not cover owned node {i}");
                } else if p.covers(s, node) {
                    assert!(p.halo() > 0, "halo node with zero halo width");
                    let other = p.owner_of(node).unwrap();
                    assert_ne!(other, s);
                }
            }
        }
    }

    #[test]
    fn build_rejects_degenerate_shapes() {
        let g = grid(4, 4);
        assert!(matches!(Partition::build(&g, 0, 1), Err(OpaqueError::InvalidConfig { .. })));
        assert!(matches!(
            Partition::build(&g, g.num_nodes() + 1, 1),
            Err(OpaqueError::InvalidConfig { .. })
        ));
        // One shard owns everything and covers everything.
        let p = Partition::build(&g, 1, 0).unwrap();
        assert_eq!(p.owned_count(0), g.num_nodes());
        check_invariants(&p, &g);
    }

    #[test]
    fn repeated_builds_are_identical() {
        // No RNG and no hash-order dependence: the same (map, shards,
        // halo) must reproduce the same partition, build after build.
        let g = grid(9, 7);
        for shards in [2usize, 3, 5] {
            for halo in [0u32, 1, 3] {
                let a = Partition::build(&g, shards, halo).unwrap();
                let b = Partition::build(&g, shards, halo).unwrap();
                assert_eq!(a.owners(), b.owners(), "shards={shards} halo={halo}");
                for s in 0..shards {
                    for i in 0..g.num_nodes() {
                        let node = NodeId::from_index(i);
                        assert_eq!(a.covers(s, node), b.covers(s, node));
                    }
                }
                check_invariants(&a, &g);
            }
        }
    }

    #[test]
    fn zero_halo_coverage_is_exactly_ownership() {
        let g = grid(6, 6);
        let p = Partition::build(&g, 4, 0).unwrap();
        for i in 0..g.num_nodes() {
            let node = NodeId::from_index(i);
            for s in 0..4 {
                assert_eq!(p.covers(s, node), p.owner_of(node) == Some(s));
            }
        }
    }

    #[test]
    fn halo_grows_coverage_monotonically() {
        let g = grid(8, 8);
        let narrow = Partition::build(&g, 3, 1).unwrap();
        let wide = Partition::build(&g, 3, 2).unwrap();
        assert_eq!(narrow.owners(), wide.owners(), "halo must not change ownership");
        let mut strictly_more = false;
        for s in 0..3 {
            for i in 0..g.num_nodes() {
                let node = NodeId::from_index(i);
                if narrow.covers(s, node) {
                    assert!(wide.covers(s, node), "wider halo lost coverage");
                } else if wide.covers(s, node) {
                    strictly_more = true;
                }
            }
        }
        assert!(strictly_more, "a wider halo should cover more of an 8x8 grid");
    }

    #[test]
    fn disconnected_components_are_all_assigned() {
        let g = disconnected();
        for shards in [1usize, 2, 3] {
            let p = Partition::build(&g, shards, 1).unwrap();
            check_invariants(&p, &g);
        }
        // shards == components: farthest-point seeding lands one seed per
        // component (unreached reads as infinitely far), so no shard is
        // starved even though the components have very different sizes.
        let p = Partition::build(&g, 3, 0).unwrap();
        for s in 0..3 {
            assert!(p.owned_count(s) > 0, "shard {s} empty on a 3-component map");
        }
    }

    #[test]
    fn routing_prefers_owner_then_halo_then_falls_back() {
        // A 10-node path: cuts are obvious.
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        for i in 0..9u32 {
            b.add_edge(NodeId(i), NodeId(i + 1), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let p = Partition::build(&g, 2, 1).unwrap();
        // Both endpoints deep inside one region → Owner.
        let o0 = p.owner_of(NodeId(0)).unwrap();
        let q = ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(1)]);
        let (s, kind) = p.route_explain(&q);
        assert_eq!((s, kind), (o0, RouteKind::Owner));
        // Find the cut on the path and straddle it by one hop → Halo.
        let cut = (0..9)
            .find(|&i| p.owner_of(NodeId(i)) != p.owner_of(NodeId(i + 1)))
            .expect("two regions on a path have a cut");
        let q = ObfuscatedPathQuery::new(vec![NodeId(cut)], vec![NodeId(cut + 1)]);
        let (s, kind) = p.route_explain(&q);
        assert_eq!(kind, RouteKind::Halo, "one-hop straddle fits in a 1-hop halo");
        assert!(p.covers(s, NodeId(cut)) && p.covers(s, NodeId(cut + 1)));
        // End-to-end exceeds any 1-hop halo → Fallback, routed to the
        // majority owner of the root side.
        let q = ObfuscatedPathQuery::new(vec![NodeId(0), NodeId(1)], vec![NodeId(9)]);
        let (s, kind) = p.route_explain(&q);
        assert_eq!(kind, RouteKind::Fallback);
        assert_eq!(s, p.owner_of(NodeId(9)).unwrap(), "targets are the root (smaller) side");
    }

    #[test]
    fn routing_skips_out_of_range_ids_and_defaults_to_shard_zero() {
        let g = grid(4, 4);
        let p = Partition::build(&g, 2, 1).unwrap();
        let far = NodeId::from_index(10_000);
        // In-range endpoints dominate; the ghost id casts no vote.
        let q = ObfuscatedPathQuery::new(vec![NodeId(0), far], vec![NodeId(1)]);
        let (s, _) = p.route_explain(&q);
        assert_eq!(s, p.owner_of(NodeId(1)).unwrap());
        // All endpoints out of range: deterministic default.
        let q = ObfuscatedPathQuery::new(vec![far], vec![far]);
        assert_eq!(p.route(&q), 0);
    }

    #[test]
    fn directed_maps_partition_and_route() {
        let mut b = GraphBuilder::directed();
        for i in 0..6 {
            b.add_node(Point::new(i as f64, 0.0)).unwrap();
        }
        // A one-way ring: 0 → 1 → … → 5 → 0.
        for i in 0..6u32 {
            b.add_edge(NodeId(i), NodeId((i + 1) % 6), 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let p = Partition::build(&g, 2, 1).unwrap();
        check_invariants(&p, &g);
        for s in 0..6u32 {
            for t in 0..6u32 {
                let q = ObfuscatedPathQuery::new(vec![NodeId(s)], vec![NodeId(t)]);
                assert!(p.route(&q) < 2);
            }
        }
    }

    #[test]
    fn policy_names_serde_and_null_back_compat() {
        assert_eq!(PartitionPolicy::default(), PartitionPolicy::RoundRobin);
        assert_eq!(PartitionPolicy::RoundRobin.name(), "round-robin");
        assert_eq!(PartitionPolicy::RegionOwned { halo: 2 }.name(), "region-owned(halo=2)");
        for policy in [PartitionPolicy::RoundRobin, PartitionPolicy::RegionOwned { halo: 3 }] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: PartitionPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, policy, "{json}");
        }
        // The back-compat contract: a config written before the field
        // existed (the field reads as Null) means round-robin.
        let legacy: PartitionPolicy = serde::Deserialize::from_value(&serde::Value::Null).unwrap();
        assert_eq!(legacy, PartitionPolicy::RoundRobin);
        let err = serde_json::from_str::<PartitionPolicy>("42");
        assert!(err.is_err());
    }
}
