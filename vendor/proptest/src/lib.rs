//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use — range/tuple/`Just`/`prop_oneof!` strategies, `prop_map` /
//! `prop_flat_map`, `collection::vec`, `num::*::ANY`, and the `proptest!`
//! test harness with `prop_assert!`-family macros — driven by a seeded
//! deterministic RNG.
//!
//! Differences from the real crate, deliberately accepted offline:
//!
//! * **No shrinking.** A failing case reports the assertion with its
//!   formatted context but is not minimized.
//! * **Deterministic seeds.** Each test function derives its RNG seed from
//!   its own path, so runs are reproducible without a persistence file.
//! * `prop_assume!` skips the current case rather than tracking a global
//!   rejection quota.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let intermediate = self.base.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    trait StrategyDyn<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> StrategyDyn<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (no shrinking, so just a boxed generator).
    pub struct BoxedStrategy<T>(Box<dyn StrategyDyn<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among alternatives — the engine behind `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from type-erased alternatives.
        ///
        /// # Panics
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Bounds on a generated collection's length (`hi` exclusive).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// `Vec` strategy with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    //! Full-range numeric strategies (`proptest::num::u32::ANY`, …).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! any_module {
        ($($mod_name:ident => $t:ty, $struct_name:ident);* $(;)?) => {$(
            pub mod $mod_name {
                use super::*;

                /// Strategy generating any value of the type.
                #[derive(Clone, Copy, Debug)]
                pub struct $struct_name;

                /// Uniform over the type's full range.
                pub const ANY: $struct_name = $struct_name;

                impl Strategy for $struct_name {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    any_module! {
        u8 => u8, AnyU8;
        u16 => u16, AnyU16;
        u32 => u32, AnyU32;
        u64 => u64, AnyU64;
        usize => usize, AnyUsize;
        i8 => i8, AnyI8;
        i16 => i16, AnyI16;
        i32 => i32, AnyI32;
        i64 => i64, AnyI64;
        isize => isize, AnyIsize;
    }
}

pub mod test_runner {
    //! The (much simplified) test runner: a config and a seeded RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Shrink budget — accepted for API parity; this stand-in does not
        /// shrink, so the value is unused.
        pub max_shrink_iters: u32,
        /// Rejection budget for `prop_assume!` — accepted for API parity;
        /// this stand-in skips rejected cases without counting them.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48, max_shrink_iters: 1024, max_global_rejects: 65536 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test's path.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (FNV-1a of the path), so every test
        /// gets a distinct, stable stream.
        pub fn for_test(test_path: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Assert within a property test (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current generated case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 3u32..10, (a, b) in (0.0f64..1.0, 5usize..6)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert_eq!(b, 5);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_vec_and_oneof(
            xs in crate::collection::vec(0u32..5, 2..7),
            pick in prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|v| v)],
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&v| v < 5));
            prop_assert!((1..5).contains(&pick));
        }
    }

    #[test]
    fn flat_map_chains_dependent_strategies() {
        let strat = (2usize..5)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n))
            .prop_map(|v| v.len());
        let mut rng = TestRng::for_test("flat_map");
        for _ in 0..50 {
            let len = Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&len));
        }
    }
}
