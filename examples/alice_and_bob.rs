//! Alice & Bob: independent vs shared obfuscated path queries.
//!
//! Walks through the paper's §III-C running example. Alice submits
//! Q(s_A, t_A) with settings (f_S=2, f_T=3); Bob submits Q(s_B, t_B) with
//! (f_S=2, f_T=2). The example formulates them both ways —
//! two independent obfuscated queries (Figure 3) and one shared obfuscated
//! query (Figure 4) — and compares what the server sees, what it costs,
//! and what each client's breach probability becomes.
//!
//! ```text
//! cargo run --example alice_and_bob
//! ```

use opaque::{
    ClientId, ClientRequest, FakeSelection, ObfuscationMode, PathQuery, ProtectionSettings,
    ServiceBuilder,
};
use pathsearch::SharingPolicy;
use roadnet::generators::{GridConfig, grid_network};
use roadnet::{Point, SpatialIndex};

fn main() {
    let map = grid_network(&GridConfig { width: 24, height: 24, seed: 1271, ..Default::default() })
        .expect("valid network");
    let index = SpatialIndex::build(&map);

    let alice = ClientRequest::new(
        ClientId(0),
        PathQuery::new(
            index.nearest(Point::new(2.0, 3.0)),   // Alice's home
            index.nearest(Point::new(20.0, 18.0)), // the clinic
        ),
        ProtectionSettings::new(2, 3).expect("valid"), // the paper's S_A/T_A sizes
    );
    let bob = ClientRequest::new(
        ClientId(1),
        PathQuery::new(
            index.nearest(Point::new(5.0, 20.0)), // Bob's office
            index.nearest(Point::new(21.0, 4.0)), // the stadium
        ),
        ProtectionSettings::new(2, 2).expect("valid"), // the paper's S_B/T_B sizes
    );
    let requests = [alice, bob];

    for mode in [ObfuscationMode::Independent, ObfuscationMode::SharedGlobal] {
        let mut service = ServiceBuilder::new()
            .map(map.clone())
            .fake_selection(FakeSelection::default_ring())
            .seed(7)
            .sharing_policy(SharingPolicy::PerSource)
            .obfuscation_mode(mode)
            .build()
            .expect("valid configuration");
        let response = service.process_batch(&requests).expect("pipeline ok");
        let (results, report) = (response.results, response.report);

        println!("=== {} obfuscation ===", report.mode);
        println!(
            "server saw {} obfuscated quer{} covering {} pairs ({} fakes added)",
            report.num_units,
            if report.num_units == 1 { "y" } else { "ies" },
            report.total_pairs,
            report.fakes_added
        );
        println!("server settled {} nodes", report.server_settled);
        for (client, breach) in &report.per_client_breach {
            let name = if client.0 == 0 { "Alice" } else { "Bob" };
            println!("  {name}: breach probability {breach:.4}");
        }
        for r in &results {
            let name = if r.client.0 == 0 { "Alice" } else { "Bob" };
            println!(
                "  {name} received the exact path: {} hops, distance {:.2}",
                r.path.num_edges(),
                r.path.distance()
            );
        }
        println!();
    }

    println!("Sharing reuses Alice's and Bob's true endpoints as each other's cover:");
    println!("fewer fakes, fewer pairs — and a lower breach probability for both.");
}
