//! Criterion timings for E10/E14: full OPAQUE pipeline (obfuscate → serve
//! → filter) for a 16-client batch under each obfuscation mode, and the
//! batch execution layer (sequential vs worker pool) over a shard fleet.

use criterion::{Criterion, criterion_group, criterion_main};
use opaque::{ClusteringConfig, ExecutionPolicy, FakeSelection, ObfuscationMode, ServiceBuilder};
use pathsearch::SharingPolicy;
use roadnet::SpatialIndex;
use roadnet::generators::NetworkClass;
use std::hint::black_box;
use std::time::Duration;
use workload::{ProtectionDistribution, QueryDistribution, WorkloadConfig, generate_requests};

fn bench(c: &mut Criterion) {
    let g = NetworkClass::Grid.generate(2_500, 0xBE).expect("valid network");
    let idx = SpatialIndex::build(&g);
    let requests = generate_requests(
        &g,
        &idx,
        &WorkloadConfig {
            num_requests: 16,
            queries: QueryDistribution::Hotspot { hotspots: 3, exponent: 1.0, spread: 0.08 },
            protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 4 },
            seed: 0xBE,
        },
    );

    let mut group = c.benchmark_group("e10_system");
    for mode in [
        ObfuscationMode::Independent,
        ObfuscationMode::SharedGlobal,
        ObfuscationMode::SharedClustered(ClusteringConfig::default()),
    ] {
        group.bench_function(mode.to_string(), |b| {
            b.iter_batched(
                || {
                    ServiceBuilder::new()
                        .map(g.clone())
                        .fake_selection(FakeSelection::default_ring())
                        .seed(0xBE)
                        .sharing_policy(SharingPolicy::PerSource)
                        .obfuscation_mode(mode)
                        .build()
                        .expect("valid configuration")
                },
                |mut svc| {
                    let response = svc.process_batch(black_box(&requests)).expect("ok");
                    black_box((response.results.len(), response.report.server_settled))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// E14's timing companion: the same batch through the builder-configured
/// service under each execution policy. Each iteration rebuilds the
/// service (iter_batched), so obfuscator RNG state and shard arenas start
/// identical across policies and the measured difference is purely the
/// execution layer.
fn bench_execution(c: &mut Criterion) {
    const SHARDS: usize = 4;
    let g = NetworkClass::Geometric.generate(2_500, 0xE14).expect("valid network");
    let idx = SpatialIndex::build(&g);
    let requests = generate_requests(
        &g,
        &idx,
        &WorkloadConfig {
            num_requests: 16,
            queries: QueryDistribution::Uniform,
            protection: ProtectionDistribution::Fixed { f_s: 4, f_t: 4 },
            seed: 0xE14,
        },
    );

    let mut group = c.benchmark_group("e14_execution");
    for execution in [
        ExecutionPolicy::Sequential,
        ExecutionPolicy::WorkerPool { threads: 2 },
        ExecutionPolicy::WorkerPool { threads: 4 },
    ] {
        group.bench_function(execution.name(), |b| {
            b.iter_batched(
                || {
                    ServiceBuilder::new()
                        .map(g.clone())
                        .seed(0xE14)
                        .shards(SHARDS)
                        .obfuscation_mode(ObfuscationMode::Independent)
                        .execution_policy(execution)
                        .build()
                        .expect("valid configuration")
                },
                |mut svc| {
                    let response = svc.process_batch(black_box(&requests)).expect("ok");
                    black_box((response.results.len(), response.report.server_settled))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench, bench_execution
}
criterion_main!(benches);
