//! The wire determinism oracle: the framed TCP path through
//! `opaque-net` reproduces the in-process gateway's `BatchFlushed`
//! report **byte for byte**, and delivers the same hop-4 payloads in the
//! same order — for the sequential backend and the worker pool alike.
//!
//! This holds because the reports carry no timing, the server submits
//! frames in TCP arrival order (one connection ⇒ submission order), and
//! obfuscation is seeded — so the only thing the network layer may add
//! is latency, never different bytes.

use opaque::{
    BatchPolicy, ClientId, ClientRequest, ExecutionPolicy, ObfuscationMode, OpaqueService,
    PathQuery, Priority, ProtectionSettings, RequestMsg, ServiceBuilder, ServiceEvent,
};
use opaque_net::{NetClient, NetServer, ServerConfig, WireReply, WireRequest};
use roadnet::NodeId;
use roadnet::generators::{GridConfig, grid_network};
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, Ordering};

const SEED: u64 = 0x10AD;

fn build_service(
    shards: usize,
    execution: ExecutionPolicy,
    max_batch: usize,
) -> OpaqueService<opaque::DefaultBackend> {
    let map =
        grid_network(&GridConfig { width: 14, height: 14, seed: 3, ..Default::default() }).unwrap();
    ServiceBuilder::new()
        .map(map)
        .seed(SEED)
        .shards(shards)
        .obfuscation_mode(ObfuscationMode::Independent)
        .execution_policy(execution)
        .verify_results(true)
        .batch_policy(BatchPolicy { max_batch, max_delay: 3600.0 })
        .build()
        .expect("valid configuration")
}

/// A mixed-lane request population with unique client ids (duplicates
/// would defer across windows and complicate the single-window oracle).
fn population() -> Vec<(RequestMsg, Priority)> {
    (0..8u32)
        .map(|i| {
            let msg = RequestMsg {
                client: ClientId(i),
                query: PathQuery::new(NodeId(i * 23 % 196), NodeId((i * 41 + 97) % 196)),
                protection: ProtectionSettings::new(1 + i % 3, 1 + (i / 3) % 3).unwrap(),
            };
            let lane = if i % 3 == 0 { Priority::Bulk } else { Priority::Interactive };
            (msg, lane)
        })
        .collect()
}

/// Drive the population through the in-process gateway: the reference
/// report bytes and delivered hop-4 payloads, in emission order.
fn in_process_run(
    shards: usize,
    execution: ExecutionPolicy,
    requests: &[(RequestMsg, Priority)],
) -> (Vec<String>, Vec<String>) {
    let mut svc = build_service(shards, execution, requests.len());
    for (msg, priority) in requests {
        let outcome = svc.submit_with_priority(
            ClientRequest::new(msg.client, msg.query, msg.protection),
            *priority,
            0.0,
        );
        assert!(outcome.ticket().is_some(), "unique ids must all be ticketed");
    }
    let events = svc.flush(1.0).expect("pipeline succeeds");
    let mut reports = Vec::new();
    let mut deliveries = Vec::new();
    for event in events {
        match event {
            ServiceEvent::BatchFlushed(report) => {
                reports.push(serde_json::to_string(&report).unwrap());
            }
            ServiceEvent::ResponseReady { result, .. } => {
                deliveries.push(serde_json::to_string(&result).unwrap());
            }
            other => panic!("this feasible population only delivers: {other:?}"),
        }
    }
    (reports, deliveries)
}

/// Drive the same population over loopback TCP: one client, one
/// connection, frames in submission order.
fn wire_run(
    shards: usize,
    execution: ExecutionPolicy,
    requests: &[(RequestMsg, Priority)],
) -> (Vec<String>, Vec<String>) {
    let service = build_service(shards, execution, requests.len());
    let mut server =
        NetServer::bind("127.0.0.1:0", service, ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        server.run_until(&flag).expect("reactor runs clean");
        server
    });

    let mut client = NetClient::connect(addr).expect("connect");
    for (request, priority) in requests {
        client.send(&WireRequest { request: *request, priority: *priority }).expect("send");
    }
    let mut deliveries = Vec::new();
    for _ in 0..requests.len() {
        match client.recv().expect("terminal reply") {
            WireReply::Result { result, .. } => {
                deliveries.push(serde_json::to_string(&result).unwrap());
            }
            other => panic!("this feasible population only delivers: {other:?}"),
        }
    }
    stop.store(true, Ordering::Release);
    let server = handle.join().expect("server thread joins");
    assert_eq!(server.stats().dropped_replies, 0, "loopback must not drop");
    (server.reports().to_vec(), deliveries)
}

fn assert_wire_matches_in_process(shards: usize, execution: ExecutionPolicy) {
    let requests = population();
    let (ref_reports, ref_deliveries) = in_process_run(shards, execution, &requests);
    let (net_reports, net_deliveries) = wire_run(shards, execution, &requests);

    assert_eq!(ref_reports.len(), 1, "one window: max_batch == population");
    assert_eq!(
        ref_reports, net_reports,
        "{execution:?}: wire BatchReport bytes diverged from in-process"
    );
    assert_eq!(
        ref_deliveries, net_deliveries,
        "{execution:?}: hop-4 payloads or their order diverged over the wire"
    );
}

#[test]
fn wire_report_is_byte_identical_sequential() {
    assert_wire_matches_in_process(1, ExecutionPolicy::Sequential);
}

#[test]
fn wire_report_is_byte_identical_worker_pool() {
    assert_wire_matches_in_process(2, ExecutionPolicy::WorkerPool { threads: 2 });
}

/// The two backends also agree with each other end-to-end over the wire
/// (the sharded determinism oracle survives the network hop).
#[test]
fn wire_reports_agree_across_backends() {
    let requests = population();
    let (seq_reports, seq_deliveries) = wire_run(1, ExecutionPolicy::Sequential, &requests);
    let (pool_reports, pool_deliveries) =
        wire_run(2, ExecutionPolicy::WorkerPool { threads: 2 }, &requests);
    assert_eq!(seq_reports, pool_reports, "backends diverged over the wire");
    assert_eq!(seq_deliveries, pool_deliveries);
}
