//! Request admission and batching: the gateway's queue.
//!
//! The paper's obfuscator operates on batches ("partitions the received
//! queries", §IV), but a live deployment receives a *stream*: requests must
//! be collected for some window before shared obfuscation can help. The
//! [`Batcher`] is that admission path, and it is where the gateway's
//! admission control lives:
//!
//! * **lanes** — each request is submitted with a [`Priority`]; when a
//!   batch forms, the interactive lane drains before the bulk lane
//!   (oldest first within a lane);
//! * **backpressure** — at most [`AdmissionPolicy::queue_depth`] requests
//!   may queue at once; beyond that [`Batcher::submit`] answers
//!   [`SubmitOutcome::Rejected`] with [`RejectReason::QueueFull`];
//! * **deferral** — a client with a request already pending gets
//!   [`SubmitOutcome::Deferred`]: the duplicate is parked and joins the
//!   *next* window once the blocking request drains, instead of failing
//!   the submit (the historical `DuplicateClient` error survives only on
//!   the direct [`crate::OpaqueService::process_batch`] path, where there
//!   is no next window to defer to);
//! * **shedding** — with an [`AdmissionPolicy::deadline`] configured,
//!   requests that have waited longer are dropped from the queue by
//!   [`Batcher::expire`] (the gateway turns them into
//!   [`crate::ServiceEvent::Rejected`] events) rather than served stale;
//! * **cancellation** — [`Batcher::cancel`] removes a queued request by
//!   ticket before it is ever obfuscated.
//!
//! The pending window drains when either [`BatchPolicy`] trigger fires:
//! **size** (the lanes reached [`BatchPolicy::max_batch`]) or **deadline**
//! (the oldest lane request has waited [`BatchPolicy::max_delay`]
//! seconds). Time is explicit (seconds as `f64`, matching `workload`'s
//! arrival clocks): callers pass `now` into [`Batcher::submit`] and
//! [`Batcher::tick`], which keeps the batcher deterministic and testable —
//! and lets experiments replay recorded streams exactly.

use crate::error::{OpaqueError, Result};
use crate::query::{ClientId, ClientRequest};
use crate::service::gateway::{AdmissionPolicy, Priority, RejectReason, SubmitOutcome};
use std::collections::{HashSet, VecDeque};

/// When a pending batch is flushed.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BatchPolicy {
    /// Flush as soon as this many requests are pending in the lanes.
    pub max_batch: usize,
    /// Flush once the oldest pending request has waited this many seconds.
    pub max_delay: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_batch: 32, max_delay: 5.0 }
    }
}

impl BatchPolicy {
    /// Check the policy is satisfiable.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(OpaqueError::InvalidConfig {
                reason: "batch policy: max_batch must be >= 1".to_string(),
            });
        }
        if !self.max_delay.is_finite() || self.max_delay < 0.0 {
            return Err(OpaqueError::InvalidConfig {
                reason: format!(
                    "batch policy: max_delay must be finite and >= 0, got {}",
                    self.max_delay
                ),
            });
        }
        Ok(())
    }
}

/// Receipt for a submitted request; stable for the life of the batcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Ticket(pub u64);

/// One queued request with its admission metadata.
#[derive(Clone, Copy, Debug)]
struct Pending {
    ticket: Ticket,
    request: ClientRequest,
    arrival: f64,
    priority: Priority,
}

/// A request shed from the queue by [`Batcher::expire`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpiredRequest {
    /// The shed request's ticket.
    pub ticket: Ticket,
    /// The client whose request was shed.
    pub client: ClientId,
    /// Seconds it had waited when it was shed.
    pub waited: f64,
}

/// One drained batch: the requests in drain order (interactive lane
/// first, oldest first within a lane), their tickets, and their arrival
/// clocks (for latency accounting).
#[derive(Clone, Debug)]
pub struct DrainedBatch {
    /// Requests in drain order.
    pub requests: Vec<ClientRequest>,
    /// `tickets[i]` was issued for `requests[i]`.
    pub tickets: Vec<Ticket>,
    /// `arrivals[i]` is the submission clock of `requests[i]`.
    pub arrivals: Vec<f64>,
}

impl DrainedBatch {
    /// Mean seconds the batch's requests waited, measured at `flush_time`.
    pub fn mean_wait(&self, flush_time: f64) -> f64 {
        if self.arrivals.is_empty() {
            return 0.0;
        }
        self.arrivals.iter().map(|a| flush_time - a).sum::<f64>() / self.arrivals.len() as f64
    }
}

/// The request queue in front of the obfuscator: two priority lanes, a
/// deferred set for duplicate clients, and a cancellation ledger.
pub struct Batcher {
    policy: BatchPolicy,
    admission: AdmissionPolicy,
    interactive: VecDeque<Pending>,
    bulk: VecDeque<Pending>,
    /// Requests whose client already had one pending; each joins the
    /// window *after* its blocking request drains. Invariant: every
    /// deferred client also appears in `pending_clients` (a lane entry or
    /// an earlier deferred duplicate blocks it), restored by
    /// `promote_deferred` after every removal.
    deferred: Vec<Pending>,
    pending_clients: HashSet<ClientId>,
    /// Cancelled requests awaiting event acknowledgement (drained by
    /// [`Batcher::take_cancelled`], restored by [`Batcher::restore_acks`]
    /// when a batch failure discards the events built from them).
    cancelled: Vec<(Ticket, ClientId)>,
    /// Sheddings whose events a failed tick discarded; re-emitted ahead
    /// of fresh expiries (see [`Batcher::restore_acks`]).
    shed_backlog: Vec<ExpiredRequest>,
    /// Tracked minimum arrival over the two lanes (`INFINITY` when both
    /// are empty): min-updated on insertion, recomputed after removals,
    /// so the per-tick trigger checks stay O(1) even for non-monotonic
    /// submit clocks.
    oldest_lane: f64,
    next_ticket: u64,
}

impl Batcher {
    /// A batcher with the given flush and admission policies.
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] when either policy is unsatisfiable.
    pub fn new(policy: BatchPolicy, admission: AdmissionPolicy) -> Result<Self> {
        policy.validate()?;
        admission.validate()?;
        Ok(Batcher {
            policy,
            admission,
            // max_batch/queue_depth may be huge; don't pre-reserve past a
            // sane floor.
            interactive: VecDeque::with_capacity(policy.max_batch.min(1024)),
            bulk: VecDeque::new(),
            deferred: Vec::new(),
            pending_clients: HashSet::new(),
            cancelled: Vec::new(),
            shed_backlog: Vec::new(),
            oldest_lane: f64::INFINITY,
            next_ticket: 0,
        })
    }

    /// The active flush policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The active admission policy.
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    /// Number of requests queued (both lanes plus the deferred set).
    pub fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len() + self.deferred.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests drainable into the *current* window (lanes only — the
    /// deferred set waits for the next one).
    fn lane_len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }

    /// Admit one request at clock `now` in the given lane.
    ///
    /// Never fails: malformed protections and a full queue are answered
    /// as [`SubmitOutcome::Rejected`] (no ticket issued), and a duplicate
    /// client is answered as [`SubmitOutcome::Deferred`] (ticketed; joins
    /// the next window).
    pub fn submit(
        &mut self,
        request: ClientRequest,
        priority: Priority,
        now: f64,
    ) -> SubmitOutcome {
        if request.protection.f_s == 0 || request.protection.f_t == 0 {
            return SubmitOutcome::Rejected(RejectReason::InvalidProtection {
                f_s: request.protection.f_s,
                f_t: request.protection.f_t,
            });
        }
        if self.len() >= self.admission.queue_depth {
            return SubmitOutcome::Rejected(RejectReason::QueueFull {
                depth: self.admission.queue_depth,
            });
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let pending = Pending { ticket, request, arrival: now, priority };
        if self.pending_clients.insert(request.client) {
            self.oldest_lane = self.oldest_lane.min(now);
            self.lane_mut(priority).push_back(pending);
            SubmitOutcome::Accepted(ticket)
        } else {
            self.deferred.push(pending);
            SubmitOutcome::Deferred(ticket)
        }
    }

    fn lane_mut(&mut self, priority: Priority) -> &mut VecDeque<Pending> {
        match priority {
            Priority::Interactive => &mut self.interactive,
            Priority::Bulk => &mut self.bulk,
        }
    }

    /// Remove a queued request by ticket before it is processed. Returns
    /// the owning client when the ticket was still queued (the gateway
    /// emits the [`crate::ServiceEvent::Cancelled`] acknowledgement on
    /// its next tick), `None` when it was unknown or already drained.
    pub fn cancel(&mut self, ticket: Ticket) -> Option<ClientId> {
        for priority in [Priority::Interactive, Priority::Bulk] {
            let lane = self.lane_mut(priority);
            let pos = lane.iter().position(|p| p.ticket == ticket);
            // The position came from the same lane one line up, so the
            // remove cannot miss — and if it somehow did, the ticket
            // reads as already-drained rather than aborting the tick.
            if let Some(p) = pos.and_then(|pos| lane.remove(pos)) {
                self.pending_clients.remove(&p.request.client);
                self.cancelled.push((ticket, p.request.client));
                self.recompute_oldest_lane();
                // A deferred duplicate of this client may now enter the
                // current window.
                self.promote_deferred();
                return Some(p.request.client);
            }
        }
        if let Some(pos) = self.deferred.iter().position(|p| p.ticket == ticket) {
            let p = self.deferred.remove(pos);
            self.cancelled.push((ticket, p.request.client));
            return Some(p.request.client);
        }
        None
    }

    /// Drain the cancellation ledger (cancelled since the last call), in
    /// cancellation order.
    pub fn take_cancelled(&mut self) -> Vec<(Ticket, ClientId)> {
        std::mem::take(&mut self.cancelled)
    }

    /// Put taken acknowledgements back at the head of their ledgers. The
    /// gateway calls this when a batch-processing error discards a
    /// tick's event list: the cancellations and sheddings taken for that
    /// list are unrelated to the failed batch and must re-emit on the
    /// next tick, or their tickets would never resolve.
    pub fn restore_acks(&mut self, cancelled: Vec<(Ticket, ClientId)>, shed: Vec<ExpiredRequest>) {
        if !cancelled.is_empty() {
            let newer = std::mem::replace(&mut self.cancelled, cancelled);
            self.cancelled.extend(newer);
        }
        if !shed.is_empty() {
            let newer = std::mem::replace(&mut self.shed_backlog, shed);
            self.shed_backlog.extend(newer);
        }
    }

    /// Shed every queued request that has waited past
    /// [`AdmissionPolicy::deadline`] at clock `now`, in both lanes and
    /// the deferred set. Returns restored-then-fresh sheddings in ticket
    /// order; empty when no deadline is configured and nothing was
    /// restored.
    pub fn expire(&mut self, now: f64) -> Vec<ExpiredRequest> {
        let mut shed = std::mem::take(&mut self.shed_backlog);
        let Some(deadline) = self.admission.deadline else {
            return shed;
        };
        // Shedding a lane entry can promote a deferred duplicate which
        // may itself already be overdue, so iterate to a fixpoint (each
        // pass strictly shrinks the queue or stops).
        loop {
            let before = shed.len();
            for lane in [&mut self.interactive, &mut self.bulk] {
                lane.retain(|p| {
                    let waited = now - p.arrival;
                    if waited > deadline {
                        self.pending_clients.remove(&p.request.client);
                        shed.push(ExpiredRequest {
                            ticket: p.ticket,
                            client: p.request.client,
                            waited,
                        });
                        false
                    } else {
                        true
                    }
                });
            }
            self.deferred.retain(|p| {
                let waited = now - p.arrival;
                if waited > deadline {
                    shed.push(ExpiredRequest {
                        ticket: p.ticket,
                        client: p.request.client,
                        waited,
                    });
                    false
                } else {
                    true
                }
            });
            self.promote_deferred();
            if shed.len() == before {
                break;
            }
        }
        self.recompute_oldest_lane();
        shed.sort_by_key(|e| e.ticket.0);
        shed
    }

    /// Move deferred requests whose client no longer has a pending lane
    /// entry into their lanes (in deferral order; later duplicates of the
    /// same client stay deferred behind the promoted one).
    fn promote_deferred(&mut self) {
        let mut i = 0;
        while i < self.deferred.len() {
            // lint: allow(panic-path) — i < deferred.len() is the loop
            // condition, and this arm shrinks the vec while the other
            // advances i, so the bound holds on every iteration.
            if self.pending_clients.insert(self.deferred[i].request.client) {
                let p = self.deferred.remove(i);
                self.oldest_lane = self.oldest_lane.min(p.arrival);
                self.lane_mut(p.priority).push_back(p);
            } else {
                i += 1;
            }
        }
    }

    /// Rescan both lanes for the minimum arrival — called after removals
    /// (drain, cancel, expire), which are already O(lane) operations;
    /// insertions min-update instead, keeping `ready`/`next_deadline`
    /// O(1).
    fn recompute_oldest_lane(&mut self) {
        self.oldest_lane = self
            .interactive
            .iter()
            .chain(self.bulk.iter())
            .map(|p| p.arrival)
            .fold(f64::INFINITY, f64::min);
    }

    /// Replace the flush policy in place (tickets and pending requests
    /// are untouched; the new policy applies from the next trigger
    /// check).
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] when the policy is unsatisfiable.
    pub fn set_policy(&mut self, policy: BatchPolicy) -> Result<()> {
        policy.validate()?;
        self.policy = policy;
        Ok(())
    }

    /// Replace the admission policy in place. Already-queued requests
    /// are kept even if they exceed a newly shrunk depth (the bound
    /// applies to new submissions); a newly set deadline applies from
    /// the next [`Batcher::expire`].
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] when the policy is unsatisfiable.
    pub fn set_admission(&mut self, admission: AdmissionPolicy) -> Result<()> {
        admission.validate()?;
        self.admission = admission;
        Ok(())
    }

    /// Oldest arrival across the drainable lanes (`INFINITY` when both
    /// are empty), read from the tracked minimum. Deferred requests do
    /// not key flush deadlines — they cannot join the current window
    /// anyway.
    fn oldest_lane_arrival(&self) -> f64 {
        self.oldest_lane
    }

    /// Clock at which the *deadline* trigger fires for the current
    /// pending set (oldest lane arrival + `max_delay`); `None` when the
    /// lanes are empty. Lets drivers advance a simulated clock straight
    /// to the next deadline instant instead of shadow-tracking arrivals.
    ///
    /// This reports the deadline trigger only: the *size* trigger needs no
    /// clock and fires on [`Batcher::tick`] at any `now`, so drivers
    /// should tick right after a submission fills the batch rather than
    /// jumping ahead to this deadline.
    pub fn next_deadline(&self) -> Option<f64> {
        if self.lane_len() == 0 {
            None
        } else {
            Some(self.oldest_lane_arrival() + self.policy.max_delay)
        }
    }

    /// Whether a flush trigger has fired at clock `now`.
    pub fn ready(&self, now: f64) -> bool {
        if self.lane_len() == 0 {
            return false;
        }
        if self.lane_len() >= self.policy.max_batch {
            return true;
        }
        // Min over lane arrivals, not insertion order: callers replaying
        // merged or unsorted recorded streams may submit with
        // non-monotonic clocks. Compared as `now >= oldest + delay` — the
        // exact expression `next_deadline` reports — so
        // `tick(next_deadline())` fires by construction, with no rounding
        // gap between the reported and effective trigger instant.
        now >= self.oldest_lane_arrival() + self.policy.max_delay
    }

    /// Drain a batch if a trigger has fired at clock `now`. At most
    /// [`BatchPolicy::max_batch`] requests are taken — the whole
    /// interactive lane first (oldest first), then bulk — so a backlog
    /// that grew past the cap between ticks drains in policy-sized
    /// chunks — `ready` stays true until the backlog is gone.
    pub fn tick(&mut self, now: f64) -> Option<DrainedBatch> {
        if self.ready(now) { self.drain(self.policy.max_batch) } else { None }
    }

    /// Drain everything in the lanes unconditionally, ignoring the size
    /// cap (e.g. at shutdown); `None` when the lanes are empty. Deferred
    /// requests are promoted *after* the drain (they join the next
    /// window — they cannot share a batch with their duplicate), so a
    /// full shutdown drain is a loop: flush until [`Batcher::is_empty`].
    pub fn flush(&mut self) -> Option<DrainedBatch> {
        self.drain(usize::MAX)
    }

    fn drain(&mut self, limit: usize) -> Option<DrainedBatch> {
        let take = self.lane_len().min(limit);
        if take == 0 {
            return None;
        }
        let mut batch = DrainedBatch {
            requests: Vec::with_capacity(take),
            tickets: Vec::with_capacity(take),
            arrivals: Vec::with_capacity(take),
        };
        let from_interactive = self.interactive.len().min(take);
        for p in self
            .interactive
            .drain(..from_interactive)
            .chain(self.bulk.drain(..take - from_interactive))
        {
            self.pending_clients.remove(&p.request.client);
            batch.tickets.push(p.ticket);
            batch.requests.push(p.request);
            batch.arrivals.push(p.arrival);
        }
        // Drained clients unblock their deferred duplicates: those join
        // the (new) current window.
        self.recompute_oldest_lane();
        self.promote_deferred();
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{PathQuery, ProtectionSettings};
    use roadnet::NodeId;

    fn batcher(policy: BatchPolicy) -> Batcher {
        Batcher::new(policy, AdmissionPolicy::default()).unwrap()
    }

    fn request(i: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(i), NodeId(i + 100)),
            ProtectionSettings::new(2, 2).unwrap(),
        )
    }

    fn accept(b: &mut Batcher, r: ClientRequest, now: f64) -> Ticket {
        match b.submit(r, Priority::Interactive, now) {
            SubmitOutcome::Accepted(t) => t,
            other => panic!("expected acceptance, got {other:?}"),
        }
    }

    #[test]
    fn size_trigger_flushes_at_max_batch() {
        let mut b = batcher(BatchPolicy { max_batch: 3, max_delay: 100.0 });
        accept(&mut b, request(0), 0.0);
        accept(&mut b, request(1), 0.1);
        assert!(b.tick(0.2).is_none(), "2 of 3: not ready");
        accept(&mut b, request(2), 0.2);
        let batch = b.tick(0.2).expect("size trigger");
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(batch.tickets, vec![Ticket(0), Ticket(1), Ticket(2)]);
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_trigger_flushes_after_max_delay() {
        let mut b = batcher(BatchPolicy { max_batch: 100, max_delay: 5.0 });
        accept(&mut b, request(0), 10.0);
        accept(&mut b, request(1), 12.0);
        assert!(b.tick(14.9).is_none(), "oldest waited 4.9s < 5s");
        let batch = b.tick(15.0).expect("deadline trigger");
        assert_eq!(batch.requests.len(), 2);
        assert!((batch.mean_wait(15.0) - 4.0).abs() < 1e-12, "waits 5s and 3s");
    }

    #[test]
    fn duplicate_client_is_deferred_not_rejected() {
        // Regression pin for the gateway redesign: a duplicate client id
        // is deferred to the next window — the submit path can no longer
        // produce OpaqueError::DuplicateClient (the error survives only
        // on the direct process_batch path).
        let mut b = batcher(BatchPolicy::default());
        let first = accept(&mut b, request(7), 0.0);
        let second = match b.submit(request(7), Priority::Interactive, 0.1) {
            SubmitOutcome::Deferred(t) => t,
            other => panic!("duplicate must defer, got {other:?}"),
        };
        assert_ne!(first, second);
        assert_eq!(b.len(), 2, "both queued: one pending, one deferred");

        // The first window carries only the first request…
        let batch = b.flush().expect("one drainable request");
        assert_eq!(batch.tickets, vec![first]);
        // …and the deferred duplicate was promoted into the next one.
        let batch = b.flush().expect("promoted deferred request");
        assert_eq!(batch.tickets, vec![second]);
        assert!(b.is_empty());
    }

    #[test]
    fn deferred_duplicates_chain_one_window_each() {
        // Three submissions from one client: windows must carry them one
        // at a time, in submission order.
        let mut b = batcher(BatchPolicy::default());
        let t0 = accept(&mut b, request(3), 0.0);
        let t1 = b.submit(request(3), Priority::Interactive, 0.1).ticket().unwrap();
        let t2 = b.submit(request(3), Priority::Bulk, 0.2).ticket().unwrap();
        for expected in [t0, t1, t2] {
            let batch = b.flush().expect("one request per window");
            assert_eq!(batch.tickets, vec![expected]);
        }
        assert!(b.flush().is_none());
    }

    #[test]
    fn interactive_lane_drains_before_bulk() {
        let mut b = batcher(BatchPolicy { max_batch: 3, max_delay: 100.0 });
        assert!(b.submit(request(0), Priority::Bulk, 0.0).is_accepted());
        assert!(b.submit(request(1), Priority::Bulk, 0.1).is_accepted());
        assert!(b.submit(request(2), Priority::Interactive, 0.2).is_accepted());
        let batch = b.tick(0.2).expect("size trigger");
        // Interactive first despite arriving last; bulk keeps FIFO order.
        assert_eq!(batch.tickets, vec![Ticket(2), Ticket(0), Ticket(1)]);
        // The size cap still limits mixed drains: 1 interactive + 1 bulk.
        assert!(b.submit(request(3), Priority::Bulk, 1.0).is_accepted());
        assert!(b.submit(request(4), Priority::Bulk, 1.1).is_accepted());
        assert!(b.submit(request(5), Priority::Interactive, 1.2).is_accepted());
        b.set_policy(BatchPolicy { max_batch: 2, max_delay: 100.0 }).unwrap();
        let batch = b.tick(1.2).expect("size trigger");
        assert_eq!(batch.tickets, vec![Ticket(5), Ticket(3)]);
    }

    #[test]
    fn queue_depth_bounds_admission() {
        let mut b = Batcher::new(
            BatchPolicy { max_batch: 100, max_delay: 100.0 },
            AdmissionPolicy { queue_depth: 2, deadline: None },
        )
        .unwrap();
        accept(&mut b, request(0), 0.0);
        accept(&mut b, request(1), 0.1);
        match b.submit(request(2), Priority::Interactive, 0.2) {
            SubmitOutcome::Rejected(RejectReason::QueueFull { depth: 2 }) => {}
            other => panic!("expected queue-full rejection, got {other:?}"),
        }
        // Refusals issue no ticket: the next acceptance continues the
        // sequence.
        b.flush().unwrap();
        assert_eq!(accept(&mut b, request(3), 1.0), Ticket(2));
        // Deferred requests count toward the bound too.
        let _ = b.submit(request(3), Priority::Bulk, 1.1);
        match b.submit(request(4), Priority::Bulk, 1.2) {
            SubmitOutcome::Rejected(RejectReason::QueueFull { .. }) => {}
            other => panic!("deferred must count toward depth, got {other:?}"),
        }
    }

    #[test]
    fn cancel_removes_before_flush_and_promotes_deferred() {
        let mut b = batcher(BatchPolicy::default());
        let t0 = accept(&mut b, request(5), 0.0);
        let t1 = b.submit(request(5), Priority::Interactive, 0.1).ticket().unwrap();
        // Cancelling the blocking request promotes the deferred duplicate
        // into the *current* window.
        assert_eq!(b.cancel(t0), Some(ClientId(5)));
        let batch = b.flush().expect("promoted duplicate is drainable");
        assert_eq!(batch.tickets, vec![t1]);
        assert_eq!(b.take_cancelled(), vec![(t0, ClientId(5))]);
        // A drained (or unknown) ticket cannot be cancelled.
        assert_eq!(b.cancel(t1), None);
        assert_eq!(b.cancel(Ticket(999)), None);
        assert!(b.take_cancelled().is_empty());
        // Cancelling a deferred request leaves the pending one alone.
        let t2 = accept(&mut b, request(5), 1.0);
        let t3 = b.submit(request(5), Priority::Bulk, 1.1).ticket().unwrap();
        assert_eq!(b.cancel(t3), Some(ClientId(5)));
        let batch = b.flush().expect("pending request unaffected");
        assert_eq!(batch.tickets, vec![t2]);
        assert!(b.is_empty());
    }

    #[test]
    fn expire_sheds_overdue_requests_and_promotes_their_duplicates() {
        let mut b = Batcher::new(
            BatchPolicy { max_batch: 100, max_delay: 100.0 },
            AdmissionPolicy { queue_depth: 100, deadline: Some(5.0) },
        )
        .unwrap();
        let t0 = accept(&mut b, request(1), 0.0);
        let t1 = b.submit(request(1), Priority::Interactive, 4.0).ticket().unwrap();
        let t2 = accept(&mut b, request(2), 4.5);
        // At t=5 nothing has waited *longer* than 5s (t0 is exactly at
        // the deadline: kept — `waited > deadline` sheds, mirroring the
        // flush trigger's closed boundary).
        assert!(b.expire(5.0).is_empty());
        // At t=6: t0 (waited 6s) is shed; its duplicate t1 (waited 2s)
        // is promoted and survives; t2 (waited 1.5s) survives.
        let shed = b.expire(6.0);
        assert_eq!(shed.len(), 1);
        assert_eq!((shed[0].ticket, shed[0].client), (t0, ClientId(1)));
        assert!((shed[0].waited - 6.0).abs() < 1e-12);
        // Promotion joins the back of the lane, behind the already-queued
        // t2.
        let batch = b.flush().expect("survivors drain");
        assert_eq!(batch.tickets, vec![t2, t1]);
    }

    #[test]
    fn expire_cascades_through_overdue_promotions() {
        // Both the lane entry and its deferred duplicate are overdue: one
        // expire call must shed both (the promotion happens mid-pass).
        let mut b = Batcher::new(
            BatchPolicy::default(),
            AdmissionPolicy { queue_depth: 100, deadline: Some(1.0) },
        )
        .unwrap();
        let t0 = accept(&mut b, request(1), 0.0);
        let t1 = b.submit(request(1), Priority::Bulk, 0.1).ticket().unwrap();
        let shed = b.expire(10.0);
        assert_eq!(shed.iter().map(|e| e.ticket).collect::<Vec<_>>(), vec![t0, t1]);
        assert!(b.is_empty());
        // No deadline configured → expire is a no-op.
        let mut b = batcher(BatchPolicy::default());
        accept(&mut b, request(0), 0.0);
        assert!(b.expire(1e12).is_empty());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn oversized_backlog_drains_in_policy_sized_chunks() {
        // 5 submissions land between ticks; max_batch = 2 must cap every
        // drained batch, not just trigger the flush.
        let mut b = batcher(BatchPolicy { max_batch: 2, max_delay: 100.0 });
        for i in 0..5 {
            accept(&mut b, request(i), 0.0);
        }
        let first = b.tick(0.0).expect("size trigger");
        assert_eq!(first.requests.len(), 2);
        assert_eq!(first.tickets, vec![Ticket(0), Ticket(1)]);
        let second = b.tick(0.0).expect("still over the cap");
        assert_eq!(second.requests.len(), 2);
        // One left: below the size cap, so only deadline or flush drains it.
        assert!(b.tick(0.0).is_none());
        assert_eq!(b.len(), 1);
        // The drained clients may resubmit; the straggler's duplicate is
        // deferred, not rejected.
        assert!(b.submit(request(0), Priority::Interactive, 1.0).is_accepted());
        assert!(matches!(
            b.submit(request(4), Priority::Interactive, 1.0),
            SubmitOutcome::Deferred(_)
        ));
        let rest = b.flush().expect("flush ignores the cap");
        assert_eq!(rest.requests.len(), 2);
        // The deferred duplicate needs one more window.
        assert_eq!(b.flush().expect("deferred window").requests.len(), 1);
    }

    #[test]
    fn deadline_uses_true_oldest_arrival_under_non_monotonic_clocks() {
        // Replayed merged streams may submit out of order: the deadline
        // must key on the minimum arrival, not the first submission.
        let mut b = batcher(BatchPolicy { max_batch: 100, max_delay: 5.0 });
        accept(&mut b, request(0), 10.0);
        accept(&mut b, request(1), 3.0); // older than the first submission
        assert!(b.ready(8.0), "oldest arrival 3.0 has waited 5s by t=8");
        let batch = b.tick(8.0).expect("deadline trigger");
        assert_eq!(batch.requests.len(), 2);
    }

    #[test]
    fn tickets_are_unique_across_batches() {
        let mut b = batcher(BatchPolicy { max_batch: 1, max_delay: 1.0 });
        let t0 = accept(&mut b, request(0), 0.0);
        b.tick(0.0).unwrap();
        let t1 = accept(&mut b, request(0), 1.0);
        assert_ne!(t0, t1);
    }

    #[test]
    fn invalid_policies_and_requests_are_rejected() {
        assert!(matches!(
            Batcher::new(BatchPolicy { max_batch: 0, max_delay: 1.0 }, AdmissionPolicy::default()),
            Err(OpaqueError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Batcher::new(
                BatchPolicy { max_batch: 1, max_delay: f64::NAN },
                AdmissionPolicy::default()
            ),
            Err(OpaqueError::InvalidConfig { .. })
        ));
        assert!(matches!(
            Batcher::new(
                BatchPolicy::default(),
                AdmissionPolicy { queue_depth: 0, deadline: None }
            ),
            Err(OpaqueError::InvalidConfig { .. })
        ));
        let mut b = batcher(BatchPolicy::default());
        let mut bad = request(0);
        bad.protection.f_s = 0;
        assert!(matches!(
            b.submit(bad, Priority::Interactive, 0.0),
            SubmitOutcome::Rejected(RejectReason::InvalidProtection { f_s: 0, f_t: 2 })
        ));
        assert!(b.is_empty(), "refusals must not queue anything");
    }

    #[test]
    fn flush_on_empty_is_none() {
        let mut b = batcher(BatchPolicy::default());
        assert!(b.flush().is_none());
        assert!(!b.ready(1e9));
    }

    #[test]
    fn tick_fires_exactly_at_the_reported_deadline() {
        // The deadline edge: `ready` compares `now >= oldest + delay`, the
        // exact expression `next_deadline` reports — so ticking at that
        // instant (not an epsilon later) must fire, and one representable
        // float below it must not.
        let mut b = batcher(BatchPolicy { max_batch: 100, max_delay: 5.0 });
        accept(&mut b, request(0), 1.5);
        let deadline = b.next_deadline().expect("one pending request");
        assert_eq!(deadline, 6.5);
        let just_before = f64::from_bits(deadline.to_bits() - 1);
        assert!(b.tick(just_before).is_none(), "one ulp early must not fire");
        let batch = b.tick(deadline).expect("exact deadline tick fires");
        assert_eq!(batch.requests.len(), 1);
        assert_eq!(b.next_deadline(), None, "drained queue reports no deadline");
    }

    #[test]
    fn tick_on_empty_never_fires() {
        // The empty-flush branch: no pending requests means no trigger at
        // any clock, before or after activity.
        let mut b = batcher(BatchPolicy { max_batch: 1, max_delay: 0.0 });
        assert!(b.tick(0.0).is_none());
        assert!(b.tick(f64::MAX).is_none());
        accept(&mut b, request(0), 0.0);
        b.tick(0.0).expect("size trigger");
        assert!(b.tick(f64::MAX).is_none());
        assert!(b.flush().is_none());
    }

    #[test]
    fn submit_after_flush_restarts_the_deadline_window() {
        let mut b = batcher(BatchPolicy { max_batch: 100, max_delay: 5.0 });
        accept(&mut b, request(0), 0.0);
        b.flush().expect("forced drain");
        // A request submitted at t=100 keys its deadline on its own
        // arrival, not on the long-gone t=0 one (which would make it
        // instantly overdue).
        let t = accept(&mut b, request(1), 100.0);
        assert_eq!(b.next_deadline(), Some(105.0));
        assert!(b.tick(104.9).is_none(), "not due before its own window");
        let batch = b.tick(105.0).expect("deadline keyed on the new arrival");
        assert_eq!(batch.tickets, vec![t]);
        assert!((batch.mean_wait(105.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn deferred_requests_do_not_key_the_flush_deadline() {
        // Only lane entries can join the current window; a deferred
        // duplicate's (older) arrival must not fire the deadline trigger.
        let mut b = batcher(BatchPolicy { max_batch: 100, max_delay: 5.0 });
        accept(&mut b, request(0), 10.0);
        let _ = b.submit(request(0), Priority::Interactive, 2.0); // deferred, older clock
        assert_eq!(b.next_deadline(), Some(15.0), "keyed on the lane entry");
        assert!(b.tick(14.9).is_none());
        assert_eq!(b.tick(15.0).expect("lane deadline").requests.len(), 1);
    }
}
