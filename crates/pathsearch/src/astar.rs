//! A* search \[2\] with the Euclidean heuristic.
//!
//! The paper lists A* alongside Dijkstra as the server's path-query
//! evaluator (§I). On road networks whose weights dominate straight-line
//! distance (all our generators guarantee this), the Euclidean heuristic is
//! admissible and consistent, so A* returns exact shortest paths while
//! settling a fraction of Dijkstra's search area — a useful baseline when
//! measuring what multi-destination sharing buys (a goal-directed search
//! cannot aim at many destinations at once, which is exactly the trade-off
//! obfuscated query processing faces).

use crate::path::Path;
use crate::stats::SearchStats;
use roadnet::{GraphView, NodeId, Point};
use std::collections::BinaryHeap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    f: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.f.total_cmp(&self.f).then_with(|| other.node.0.cmp(&self.node.0))
    }
}

/// A* from `s` to `t` with an arbitrary heuristic `h(n)` estimating the
/// remaining distance from `n` to `t`.
///
/// Exact iff `h` is admissible (never overestimates); the stale-entry check
/// additionally assumes consistency, which all heuristics in this crate
/// (Euclidean, scaled Euclidean, ALT) satisfy. Returns the path (or `None`
/// if unreachable) and the run's counters.
pub fn astar_with<G, H>(g: &G, s: NodeId, t: NodeId, h: H) -> (Option<Path>, SearchStats)
where
    G: GraphView,
    H: Fn(NodeId) -> f64,
{
    let n = g.num_nodes();
    assert!(s.index() < n && t.index() < n, "endpoint out of range");
    let mut stats = SearchStats::one_run();

    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![NIL; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[s.index()] = 0.0;
    heap.push(HeapEntry { f: h(s), node: s });
    stats.heap_pushes += 1;

    while let Some(HeapEntry { f, node }) = heap.pop() {
        stats.heap_pops += 1;
        if settled[node.index()] {
            continue;
        }
        // Stale check: recomputing f from the current g-value is cheaper
        // than storing g in the heap entry and is exact for consistent h.
        if f > dist[node.index()] + h(node) + 1e-12 {
            continue;
        }
        settled[node.index()] = true;
        stats.settled += 1;
        if node == t {
            let mut nodes = vec![t];
            let mut cur = t;
            while parent[cur.index()] != NIL {
                cur = NodeId(parent[cur.index()]);
                nodes.push(cur);
            }
            nodes.reverse();
            return (Some(Path::new(nodes, dist[t.index()])), stats);
        }
        let d_node = dist[node.index()];
        g.for_each_arc(node, &mut |to, w| {
            stats.relaxed += 1;
            let cand = d_node + w;
            if cand < dist[to.index()] {
                dist[to.index()] = cand;
                parent[to.index()] = node.0;
                heap.push(HeapEntry { f: cand + h(to), node: to });
                stats.heap_pushes += 1;
            }
        });
    }
    (None, stats)
}

/// A* using the Euclidean heuristic scaled by `h_scale`.
///
/// `h_scale = 1.0` is admissible whenever edge weights are at least the
/// Euclidean distance between their endpoints
/// ([`roadnet::RoadNetwork::euclidean_admissible`]); larger scales trade
/// exactness for speed (weighted A*).
pub fn astar_scaled<G: GraphView>(
    g: &G,
    s: NodeId,
    t: NodeId,
    h_scale: f64,
) -> (Option<Path>, SearchStats) {
    assert!(h_scale >= 0.0 && h_scale.is_finite(), "invalid heuristic scale");
    let goal: Point = g.point(t);
    astar_with(g, s, t, |node| g.point(node).distance(goal) * h_scale)
}

/// Exact A* (`h_scale = 1.0`).
pub fn astar<G: GraphView>(g: &G, s: NodeId, t: NodeId) -> (Option<Path>, SearchStats) {
    astar_scaled(g, s, t, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path;
    use roadnet::generators::{GeometricConfig, GridConfig, grid_network, random_geometric};

    #[test]
    fn astar_matches_dijkstra_on_grid() {
        let g = grid_network(&GridConfig { width: 15, height: 15, seed: 4, ..Default::default() })
            .unwrap();
        for (s, t) in [(0u32, 224u32), (7, 120), (200, 3), (50, 50)] {
            let (ap, _) = astar(&g, NodeId(s), NodeId(t));
            let dp = shortest_path(&g, NodeId(s), NodeId(t));
            match (ap, dp) {
                (Some(a), Some(d)) => {
                    assert!((a.distance() - d.distance()).abs() < 1e-9, "({s},{t})");
                    assert!(a.verify(&g, 1e-9));
                }
                (None, None) => {}
                other => panic!("reachability mismatch for ({s},{t}): {other:?}"),
            }
        }
    }

    #[test]
    fn astar_settles_fewer_nodes_than_dijkstra() {
        let g =
            random_geometric(&GeometricConfig { num_nodes: 2000, seed: 8, ..Default::default() })
                .unwrap();
        let s = NodeId(0);
        let t = NodeId(1999);
        let (_, a_stats) = astar(&g, s, t);
        let mut searcher = crate::dijkstra::Searcher::new();
        let d_stats = searcher.run(&g, s, &crate::dijkstra::Goal::Single(t));
        assert!(
            a_stats.settled < d_stats.settled,
            "A* {} vs Dijkstra {}",
            a_stats.settled,
            d_stats.settled
        );
    }

    #[test]
    fn weighted_astar_is_faster_but_bounded_suboptimal() {
        let g = grid_network(&GridConfig { width: 25, height: 25, seed: 6, ..Default::default() })
            .unwrap();
        let (s, t) = (NodeId(0), NodeId(624));
        let (exact, exact_stats) = astar(&g, s, t);
        let (greedy, greedy_stats) = astar_scaled(&g, s, t, 2.0);
        let exact = exact.unwrap();
        let greedy = greedy.unwrap();
        // Weighted A* with scale w is w-suboptimal at worst.
        assert!(greedy.distance() <= exact.distance() * 2.0 + 1e-9);
        assert!(greedy.distance() >= exact.distance() - 1e-9);
        assert!(greedy_stats.settled <= exact_stats.settled);
    }

    #[test]
    fn zero_scale_degenerates_to_dijkstra() {
        let g = grid_network(&GridConfig { width: 10, height: 10, seed: 2, ..Default::default() })
            .unwrap();
        let (p, _) = astar_scaled(&g, NodeId(0), NodeId(99), 0.0);
        let d = shortest_path(&g, NodeId(0), NodeId(99)).unwrap();
        assert!((p.unwrap().distance() - d.distance()).abs() < 1e-9);
    }

    #[test]
    fn trivial_and_unreachable_cases() {
        let g = grid_network(&GridConfig { width: 4, height: 4, ..Default::default() }).unwrap();
        let (p, _) = astar(&g, NodeId(5), NodeId(5));
        assert!(p.unwrap().is_trivial());
    }
}
