//! The shared-frontier MSMD engine behind
//! [`SharingPolicy::SharedFrontier`](crate::multi::SharingPolicy).
//!
//! All spanning trees of an obfuscated query grow in **one interleaved
//! sweep**: every tree's tentative labels live in one [`SearchArena`] and
//! compete in one heap, so the globally closest frontier node settles next
//! regardless of which tree owns it — the multi-tree generalization of
//! balanced bidirectional growth.
//!
//! On **symmetric** (undirected) graph views the engine grows `|S|`
//! forward trees *and* `|T|` backward trees and resolves each pair
//! `(s, t)` by the bidirectional meeting rule: track the best connecting
//! distance `μ(s,t)` seen through any commonly-labelled node, and finalize
//! the pair once the two trees' settled radii sum to at least `μ` (the
//! classic stopping criterion, applied per pair). Each tree retires the
//! moment its last open pair resolves — per-source early termination —
//! so every tree stops near *half* the distance it would have to cover
//! alone, which is why this policy settles strictly fewer nodes than
//! [`SharingPolicy::PerSource`](crate::multi::SharingPolicy) on planar
//! maps (two half-radius balls cover about half the area of one
//! full-radius ball).
//!
//! On **directed** views the backward adjacency is unavailable, so the
//! engine degrades to the same interleaved sweep over forward trees only,
//! with each tree retiring when its last unsettled target settles —
//! exactly `PerSource`'s per-tree cost, still allocation-free and
//! single-pass.

use crate::alt::BiPotential;
use crate::arena::{FrontierScratch, NIL, SearchArena};
use crate::multi::{MsmdResult, TreeSide, TreeStats};
use crate::path::Path;
use crate::stats::SearchStats;
use roadnet::{GraphView, NodeId};

/// Evaluate `sources × targets` with the shared-frontier engine inside
/// `arena`. Inputs are validated by [`crate::multi::msmd_in`].
pub(crate) fn shared_frontier<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
) -> MsmdResult {
    shared_frontier_guided(arena, g, sources, targets, None)
}

/// [`shared_frontier`] with an optional ALT potential pair: forward trees
/// are keyed by `dist + pf(n)`, backward trees by `dist − pf(n)` — a
/// feasible pair (the two tree-side potentials sum to zero), so reduced
/// forward/backward lengths still add up to true path lengths and the
/// per-pair stopping rule is unchanged. With `None` (or the all-zero
/// `pf`) the keys equal the raw distances bit-for-bit and the sweep is
/// byte-identical to the unguided engine.
///
/// The directed fallback ignores the potential: ALT tables require a
/// symmetric graph, and [`crate::alt::AltPreprocessing::try_build`]
/// refuses to produce one for directed views.
pub(crate) fn shared_frontier_guided<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    pot: Option<&BiPotential<'_>>,
) -> MsmdResult {
    if g.is_symmetric() {
        match pot {
            Some(p) => bidirectional_sweep(arena, g, sources, targets, &|n| p.pf(n)),
            None => bidirectional_sweep(arena, g, sources, targets, &|_| 0.0),
        }
    } else {
        forward_sweep(arena, g, sources, targets)
    }
}

/// Symmetric case: `|S|` forward + `|T|` backward trees, one heap,
/// per-pair bidirectional termination. `pf` is the forward-tree potential
/// (backward trees subtract it); keys live in *reduced* space while labels
/// and meeting distances stay raw.
fn bidirectional_sweep<G: GraphView, F: Fn(NodeId) -> f64>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
    pf: &F,
) -> MsmdResult {
    let (ns, nt) = (sources.len(), targets.len());
    let k = ns + nt;
    let n = g.num_nodes();
    arena.begin(n, k);

    let mut fs = arena.take_frontier_scratch();
    fs.mu.clear();
    fs.mu.resize(ns * nt, f64::INFINITY);
    fs.meet.clear();
    fs.meet.resize(ns * nt, NIL);
    fs.done.clear();
    fs.done.resize(ns * nt, false);
    fs.radius.clear();
    fs.radius.resize(k, 0.0);
    fs.open.clear();
    fs.open.resize(k, 0);
    for o in fs.open.iter_mut().take(ns) {
        *o = nt as u32;
    }
    for o in fs.open.iter_mut().skip(ns) {
        *o = ns as u32;
    }

    let mut per_tree: Vec<TreeStats> = sources
        .iter()
        .map(|&s| TreeStats { root: s, side: TreeSide::Source, stats: SearchStats::one_run() })
        .chain(targets.iter().map(|&t| TreeStats {
            root: t,
            side: TreeSide::Target,
            stats: SearchStats::one_run(),
        }))
        .collect();

    for (tree, &root) in sources.iter().chain(targets.iter()).enumerate() {
        // Keys live in reduced space: forward trees add pf, backward trees
        // subtract it (subtraction, not negation, so the zero potential
        // leaves every bit of the unguided sweep intact).
        let key = if tree < ns { 0.0 + pf(root) } else { 0.0 - pf(root) };
        arena.label(tree, root, 0.0, None);
        arena.push(key, 0.0, tree, root);
        // Radii are key-space quantities too: seed at the root key, not
        // zero — a backward root's key is −pf(root) ≤ 0, and a zero seed
        // would overstate the radius and close pairs before their true
        // shortest connection is proven.
        fs.radius[tree] = key;
        per_tree[tree].stats.heap_pushes += 1;
    }

    // Trees whose pair set is still open; the sweep ends when none remain
    // (or the heap drains, for disconnected pairs).
    let mut live = k;
    while live > 0 {
        let Some(e) = arena.pop() else { break };
        let tree = e.tree as usize;
        per_tree[tree].stats.heap_pops += 1;
        if fs.open[tree] == 0 || !arena.is_fresh(&e) {
            continue; // retired tree, or lazy-deletion residue
        }
        arena.settle(tree, e.node);
        per_tree[tree].stats.settled += 1;
        fs.radius[tree] = e.key;

        // Settle-time meeting check: the settled node may already carry a
        // label in an opposite tree.
        record_meetings(arena, &mut fs.mu, &mut fs.meet, ns, nt, tree, e.node);

        // Expand. Label-time meeting checks are what make the per-pair
        // stopping rule exact: every label creation or improvement is a
        // successful relax (roots excepted — the settle-time check above
        // covers those), so checking only on success keeps μ equal to the
        // min over *final* labels while skipping the O(|T|) scan on the
        // majority of arcs whose relaxation changes nothing. Candidates
        // are raw distances (e.dist, not the reduced-space e.key).
        let d_node = e.dist;
        let forward = tree < ns;
        let stats = &mut per_tree[tree].stats;
        g.for_each_arc(e.node, &mut |to, w| {
            stats.relaxed += 1;
            let cand = d_node + w;
            let key = if forward { cand + pf(to) } else { cand - pf(to) };
            if arena.relax_keyed(tree, e.node, to, cand, key) {
                stats.heap_pushes += 1;
                record_meetings(arena, &mut fs.mu, &mut fs.meet, ns, nt, tree, to);
            }
        });

        // Only this tree's radius moved and only its pairs' μ changed, so
        // a closure scan over this tree's row (or column) is complete.
        if tree < ns {
            for j in 0..nt {
                try_close(&mut fs, &mut live, ns, nt, tree, j);
            }
        } else {
            let j = tree - ns;
            for i in 0..ns {
                try_close(&mut fs, &mut live, ns, nt, i, j);
            }
        }
    }

    // Stitch each pair's path: forward chain to the meeting node, then the
    // backward chain out to the target (parents of a backward tree lead
    // *to* the target; edge weights are symmetric by assumption). The
    // reported distance is re-accumulated source→target along the stitched
    // sequence rather than taken from `μ`: `μ` sums two half-distances at
    // whichever meeting node a particular sweep discovered first, so two
    // exact sweeps of the same pair (e.g. plain vs ALT-guided) can disagree
    // in the last ulp even though the path is identical. Forward
    // re-accumulation matches the single-tree Dijkstra sum bit-for-bit.
    let mut paths: Vec<Vec<Option<Path>>> = Vec::with_capacity(ns);
    for i in 0..ns {
        let mut row = Vec::with_capacity(nt);
        for j in 0..nt {
            let p = i * nt + j;
            if fs.mu[p].is_finite() {
                let m = NodeId(fs.meet[p]);
                let mut nodes = vec![m];
                arena.walk_parents(i, m, &mut nodes); // m … s_i
                nodes.reverse(); // s_i … m
                arena.walk_parents(ns + j, m, &mut nodes); // … t_j
                let d = forward_distance(g, &nodes);
                row.push(Some(Path::new(nodes, d)));
            } else {
                row.push(None);
            }
        }
        paths.push(row);
    }
    arena.put_frontier_scratch(fs);

    let stats = per_tree.iter().map(|t| t.stats).sum();
    MsmdResult { paths, stats, per_tree }
}

/// Left-to-right accumulation of arc weights along `nodes`, exactly the
/// sum a forward Dijkstra sweep would have produced for the same path.
/// Parallel arcs resolve to the cheapest, matching what any shortest-path
/// sweep would relax.
fn forward_distance<G: GraphView>(g: &G, nodes: &[NodeId]) -> f64 {
    let mut d = 0.0;
    for hop in nodes.windows(2) {
        let mut w_min = f64::INFINITY;
        g.for_each_arc(hop[0], &mut |to, w| {
            if to == hop[1] && w < w_min {
                w_min = w;
            }
        });
        d += w_min;
    }
    d
}

/// Finalize pair `(i, j)` if its best connection is provably shortest:
/// once the two trees' settled radii sum to at least `μ`, no unexplored
/// label can improve it (every future settle in either tree carries a key
/// at least its current radius).
#[inline]
fn try_close(fs: &mut FrontierScratch, live: &mut usize, ns: usize, nt: usize, i: usize, j: usize) {
    let p = i * nt + j;
    if !fs.done[p] && fs.mu[p] <= fs.radius[i] + fs.radius[ns + j] {
        fs.done[p] = true;
        fs.open[i] -= 1;
        if fs.open[i] == 0 {
            *live -= 1;
        }
        fs.open[ns + j] -= 1;
        if fs.open[ns + j] == 0 {
            *live -= 1;
        }
    }
}

/// Record pair meetings through `node`, which just gained (or already
/// carries) a label in `tree`: for every *opposite* tree that has labelled
/// `node`, the sum of the two labels is a connecting-path length.
#[inline]
fn record_meetings(
    arena: &SearchArena,
    mu: &mut [f64],
    meet: &mut [u32],
    ns: usize,
    nt: usize,
    tree: usize,
    node: NodeId,
) {
    let d_here = arena.dist_raw(tree, node);
    if tree < ns {
        for j in 0..nt {
            if arena.is_labelled(ns + j, node) {
                let through = d_here + arena.dist_raw(ns + j, node);
                let p = tree * nt + j;
                if through < mu[p] {
                    mu[p] = through;
                    meet[p] = node.0;
                }
            }
        }
    } else {
        let j = tree - ns;
        for i in 0..ns {
            if arena.is_labelled(i, node) {
                let through = d_here + arena.dist_raw(i, node);
                let p = i * nt + j;
                if through < mu[p] {
                    mu[p] = through;
                    meet[p] = node.0;
                }
            }
        }
    }
}

/// Directed fallback: forward trees only, interleaved through one heap,
/// each retiring when its last unsettled target settles.
fn forward_sweep<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
) -> MsmdResult {
    let ns = sources.len();
    let n = g.num_nodes();
    arena.begin(n, ns);

    let mut goal = arena.take_goal_scratch();
    goal.extend_from_slice(targets);
    goal.sort_unstable();
    goal.dedup();
    let goals_per_tree = goal.len() as u32;

    let mut fs = arena.take_frontier_scratch();
    fs.open.clear();
    fs.open.resize(ns, goals_per_tree);

    let mut per_tree: Vec<TreeStats> = sources
        .iter()
        .map(|&s| TreeStats { root: s, side: TreeSide::Source, stats: SearchStats::one_run() })
        .collect();

    for (tree, &s) in sources.iter().enumerate() {
        arena.label(tree, s, 0.0, None);
        arena.push(0.0, 0.0, tree, s);
        per_tree[tree].stats.heap_pushes += 1;
    }

    let mut live = ns;
    while live > 0 {
        let Some(e) = arena.pop() else { break };
        let tree = e.tree as usize;
        per_tree[tree].stats.heap_pops += 1;
        if fs.open[tree] == 0 || !arena.is_fresh(&e) {
            continue;
        }
        arena.settle(tree, e.node);
        per_tree[tree].stats.settled += 1;

        if goal.binary_search(&e.node).is_ok() {
            fs.open[tree] -= 1;
            if fs.open[tree] == 0 {
                live -= 1;
                continue; // tree done: no need to expand this node
            }
        }

        let d_node = e.dist;
        let stats = &mut per_tree[tree].stats;
        g.for_each_arc(e.node, &mut |to, w| {
            stats.relaxed += 1;
            if arena.relax(tree, e.node, to, d_node + w) {
                stats.heap_pushes += 1;
            }
        });
    }
    arena.put_goal_scratch(goal);
    arena.put_frontier_scratch(fs);

    let paths: Vec<Vec<Option<Path>>> =
        (0..ns).map(|i| targets.iter().map(|&t| arena.path_to(i, t)).collect()).collect();
    let stats = per_tree.iter().map(|t| t.stats).sum();
    MsmdResult { paths, stats, per_tree }
}
