//! The `opaque-lint` binary.
//!
//! ```text
//! opaque-lint [--root DIR] [--baseline lint.toml] \
//!             [--format human|json] [--census PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error —
//! so CI can distinguish "the code broke a rule" from "the linter could
//! not run".

use opaque_lint::{Config, report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    format: String,
    census: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        format: "human".to_string(),
        census: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--census" => args.census = Some(PathBuf::from(value("--census")?)),
            "--format" => {
                args.format = value("--format")?;
                if args.format != "human" && args.format != "json" {
                    return Err(format!("--format must be human or json, got {}", args.format));
                }
            }
            "--help" | "-h" => {
                return Err("usage: opaque-lint [--root DIR] [--baseline lint.toml] \
                            [--format human|json] [--census PATH]"
                    .to_string());
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // Baseline: the given file, else `<root>/lint.toml` if present, else
    // the compiled default (identical to the shipped file).
    let baseline_path = args.baseline.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = if baseline_path.is_file() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("opaque-lint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        match Config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("opaque-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if args.baseline.is_some() {
        eprintln!("opaque-lint: baseline {} does not exist", baseline_path.display());
        return ExitCode::from(2);
    } else {
        Config::default()
    };

    let lint_report = match opaque_lint::run(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("opaque-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(census_path) = &args.census {
        if let Err(e) = std::fs::write(census_path, report::census_json(&lint_report)) {
            eprintln!("opaque-lint: cannot write census {}: {e}", census_path.display());
            return ExitCode::from(2);
        }
    }

    match args.format.as_str() {
        "json" => print!("{}", report::json(&lint_report)),
        _ => print!("{}", report::human(&lint_report)),
    }

    if lint_report.is_clean() { ExitCode::SUCCESS } else { ExitCode::from(1) }
}
