//! Fake-endpoint selection strategies.
//!
//! The paper leaves the obfuscation algorithm unspecified beyond requiring
//! "knowledge of the underlying road network" (§IV). The choice matters in
//! two directions the paper's analysis makes precise:
//!
//! * **cost** — Lemma 1 charges each source `s ∈ S` a tree of area
//!   `max_{t∈T} ‖s,t‖²`, so fakes scattered across the whole map blow the
//!   per-source radius up to the map diameter, while fakes placed near the
//!   true endpoints keep the radius close to the true `‖s,t‖`;
//! * **privacy against informed adversaries** — under a background-knowledge
//!   prior, fakes on implausible nodes (e.g. the middle of nowhere) are
//!   discounted, shrinking the effective anonymity set below `|S|·|T|`.
//!
//! Three strategies span this trade-off; E7 measures all of them.

use crate::error::{OpaqueError, Result};
use rand::Rng;
use rand::rngs::StdRng;
use roadnet::{NodeId, Point, RoadNetwork, SpatialIndex};
use std::collections::HashSet;

/// How the obfuscator picks fake endpoints.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FakeSelection {
    /// Fakes drawn uniformly from all map nodes. Maximum geographic spread,
    /// maximum server cost.
    Uniform,
    /// Fakes drawn from an annulus around the true endpoint with radii
    /// `[lo·d, hi·d]`, where `d` is the true query's Euclidean length.
    /// Keeps Lemma 1's per-source radius within a constant factor of the
    /// true query while not co-locating fakes with the true endpoint.
    Ring {
        /// Inner annulus radius as a fraction of the true query length.
        lo: f64,
        /// Outer annulus radius as a fraction of the true query length.
        hi: f64,
    },
    /// Like [`FakeSelection::Ring`], but the annulus is measured in
    /// **network** distance (bounded Dijkstra on the obfuscator's map) —
    /// the exact quantity Lemma 1 charges. Costs one `O((hi·d)²)` range
    /// search per fake batch at obfuscation time; worthwhile on topologies
    /// where Euclidean distance misjudges network distance (radial class).
    NetworkRing {
        /// Inner annulus radius as a fraction of the true query length.
        lo: f64,
        /// Outer annulus radius as a fraction of the true query length.
        hi: f64,
    },
    /// Fakes drawn with probability proportional to per-node plausibility
    /// weights (population density, points of interest, …) supplied to the
    /// obfuscator. Resists the background-knowledge adversary of §II.
    Weighted,
}

impl FakeSelection {
    /// The ring strategy with the default annulus `[0.3·d, 1.2·d]`.
    pub fn default_ring() -> Self {
        FakeSelection::Ring { lo: 0.3, hi: 1.2 }
    }

    /// The network-ring strategy with the default annulus `[0.3·d, 1.2·d]`
    /// (radii in network distance).
    pub fn default_network_ring() -> Self {
        FakeSelection::NetworkRing { lo: 0.3, hi: 1.2 }
    }

    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            FakeSelection::Uniform => "uniform",
            FakeSelection::Ring { .. } => "ring",
            FakeSelection::NetworkRing { .. } => "net-ring",
            FakeSelection::Weighted => "weighted",
        }
    }
}

/// Everything a selection strategy may consult.
pub struct SelectionContext<'a> {
    /// The obfuscator's (coarse) map.
    pub map: &'a RoadNetwork,
    /// Spatial index over the map's nodes.
    pub index: &'a SpatialIndex,
    /// Per-node plausibility weights, if the deployment provides them
    /// (required by [`FakeSelection::Weighted`]).
    pub weights: Option<&'a [f64]>,
    /// The true endpoint being hidden (ring strategies centre on it).
    pub anchor: NodeId,
    /// The other endpoint of the true query (sets the distance scale).
    pub counterpart: NodeId,
}

impl SelectionContext<'_> {
    fn anchor_point(&self) -> Point {
        self.map.point(self.anchor)
    }

    /// The query's Euclidean length; falls back to 5% of the map diagonal
    /// for degenerate (same-node or co-located) queries so ring radii stay
    /// positive.
    fn scale(&self) -> f64 {
        let d = self.map.euclidean(self.anchor, self.counterpart);
        if d > f64::EPSILON { d } else { (self.map.bbox().diagonal() * 0.05).max(1.0) }
    }
}

/// Select `count` distinct fake endpoints, none of which appear in
/// `exclude`.
///
/// # Errors
/// [`OpaqueError::NotEnoughFakes`] when the map has fewer than `count`
/// eligible nodes.
pub fn select_fakes(
    strategy: FakeSelection,
    ctx: &SelectionContext<'_>,
    exclude: &HashSet<NodeId>,
    count: usize,
    rng: &mut StdRng,
) -> Result<Vec<NodeId>> {
    if count == 0 {
        return Ok(Vec::new());
    }
    let available = ctx.map.num_nodes().saturating_sub(exclude.len());
    if available < count {
        return Err(OpaqueError::NotEnoughFakes { requested: count, available });
    }
    match strategy {
        FakeSelection::Uniform => uniform(ctx, exclude, count, rng),
        FakeSelection::Ring { lo, hi } => {
            assert!(lo >= 0.0 && hi > lo, "ring radii must satisfy 0 <= lo < hi");
            ring(ctx, exclude, count, lo, hi, rng)
        }
        FakeSelection::NetworkRing { lo, hi } => {
            assert!(lo >= 0.0 && hi > lo, "ring radii must satisfy 0 <= lo < hi");
            network_ring(ctx, exclude, count, lo, hi, rng)
        }
        FakeSelection::Weighted => weighted(ctx, exclude, count, rng),
    }
}

fn uniform(
    ctx: &SelectionContext<'_>,
    exclude: &HashSet<NodeId>,
    count: usize,
    rng: &mut StdRng,
) -> Result<Vec<NodeId>> {
    let n = ctx.map.num_nodes() as u32;
    let mut picked = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    // Rejection sampling is fast while the exclusion set is sparse; fall
    // back to a scan when the map is nearly exhausted.
    let max_attempts = 20 * count + 100;
    for _ in 0..max_attempts {
        if out.len() == count {
            break;
        }
        let cand = NodeId(rng.gen_range(0..n));
        if !exclude.contains(&cand) && picked.insert(cand) {
            out.push(cand);
        }
    }
    if out.len() < count {
        for i in 0..n {
            if out.len() == count {
                break;
            }
            let cand = NodeId(i);
            if !exclude.contains(&cand) && picked.insert(cand) {
                out.push(cand);
            }
        }
    }
    debug_assert_eq!(out.len(), count, "availability was checked upfront");
    Ok(out)
}

fn ring(
    ctx: &SelectionContext<'_>,
    exclude: &HashSet<NodeId>,
    count: usize,
    lo: f64,
    hi: f64,
    rng: &mut StdRng,
) -> Result<Vec<NodeId>> {
    let center = ctx.anchor_point();
    let d = ctx.scale();
    let mut r_lo = lo * d;
    let mut r_hi = hi * d;
    let diag = ctx.map.bbox().diagonal();

    let mut picked: HashSet<NodeId> = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    // Widen the annulus until enough candidates exist; the map diagonal
    // bounds the number of rounds.
    loop {
        let mut candidates: Vec<NodeId> = ctx
            .index
            .in_ring(center, r_lo, r_hi)
            .into_iter()
            .filter(|c| !exclude.contains(c) && !picked.contains(c))
            .collect();
        // Deterministic candidate order before sampling keeps runs
        // reproducible per seed.
        candidates.sort_unstable();
        while out.len() < count && !candidates.is_empty() {
            let i = rng.gen_range(0..candidates.len());
            let cand = candidates.swap_remove(i);
            picked.insert(cand);
            out.push(cand);
        }
        if out.len() == count {
            return Ok(out);
        }
        if r_hi >= diag && r_lo <= 0.0 {
            // Annulus covers the whole map and still not enough nodes —
            // availability pre-check makes this unreachable, but keep a
            // defensive error rather than an infinite loop.
            return Err(OpaqueError::NotEnoughFakes { requested: count, available: out.len() });
        }
        r_lo = (r_lo * 0.5).max(0.0);
        r_hi = (r_hi * 2.0).min(diag.max(r_hi + 1.0));
        if r_hi >= diag {
            r_lo = 0.0;
        }
    }
}

fn network_ring(
    ctx: &SelectionContext<'_>,
    exclude: &HashSet<NodeId>,
    count: usize,
    lo: f64,
    hi: f64,
    rng: &mut StdRng,
) -> Result<Vec<NodeId>> {
    // Scale by the true query's *network* length when available; the
    // Euclidean length is a lower bound and good enough to seed the radius
    // (the annulus widens on shortage anyway).
    let d = pathsearch::shortest_distance(ctx.map, ctx.anchor, ctx.counterpart)
        .unwrap_or_else(|| ctx.map.euclidean(ctx.anchor, ctx.counterpart))
        .max(f64::EPSILON);
    let mut r_lo = lo * d;
    let mut r_hi = hi * d;
    let diag = ctx.map.bbox().diagonal() * 2.0; // network dist can exceed the diagonal

    let mut picked: HashSet<NodeId> = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    loop {
        let (band, _) = pathsearch::ring_search(ctx.map, ctx.anchor, r_lo, r_hi);
        let mut candidates: Vec<NodeId> = band
            .into_iter()
            .map(|(n, _)| n)
            .filter(|c| !exclude.contains(c) && !picked.contains(c))
            .collect();
        candidates.sort_unstable();
        while out.len() < count && !candidates.is_empty() {
            let i = rng.gen_range(0..candidates.len());
            let cand = candidates.swap_remove(i);
            picked.insert(cand);
            out.push(cand);
        }
        if out.len() == count {
            return Ok(out);
        }
        if r_lo <= 0.0 && r_hi >= diag {
            return Err(OpaqueError::NotEnoughFakes { requested: count, available: out.len() });
        }
        r_lo = (r_lo * 0.5).max(0.0);
        r_hi = (r_hi * 2.0).min(diag.max(r_hi + 1.0));
        if r_hi >= diag {
            r_lo = 0.0;
        }
    }
}

fn weighted(
    ctx: &SelectionContext<'_>,
    exclude: &HashSet<NodeId>,
    count: usize,
    rng: &mut StdRng,
) -> Result<Vec<NodeId>> {
    let Some(weights) = ctx.weights else {
        // Without plausibility data the weighted strategy degenerates to
        // uniform — documented fallback rather than an error, so deployments
        // can flip the strategy on before the weights ship.
        return uniform(ctx, exclude, count, rng);
    };
    assert_eq!(weights.len(), ctx.map.num_nodes(), "one weight per node");

    // Prefix sums over eligible nodes; O(n) per call, called once per fake
    // batch.
    let mut prefix = Vec::with_capacity(weights.len());
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        let w = if exclude.contains(&NodeId(i as u32)) { 0.0 } else { w.max(0.0) };
        total += w;
        prefix.push(total);
    }
    if total <= 0.0 {
        return uniform(ctx, exclude, count, rng);
    }

    let mut picked: HashSet<NodeId> = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let max_attempts = 50 * count + 200;
    for _ in 0..max_attempts {
        if out.len() == count {
            break;
        }
        let x = rng.gen_range(0.0..total);
        let i = prefix.partition_point(|&p| p <= x);
        let cand = NodeId(i as u32);
        if !exclude.contains(&cand) && picked.insert(cand) {
            out.push(cand);
        }
    }
    if out.len() < count {
        // Heavy weight concentration can starve rejection sampling; finish
        // uniformly over whatever is left.
        let mut excl = exclude.clone();
        // lint: allow(hash-iter) — set-to-set union: the extended
        // exclusion *set* is the same whatever order the elements
        // arrive, and `uniform` only probes it with `contains`.
        excl.extend(picked.iter().copied());
        let rest = uniform(ctx, &excl, count - out.len(), rng)?;
        out.extend(rest);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roadnet::generators::{GridConfig, grid_network};

    fn setup() -> (RoadNetwork, SpatialIndex) {
        let g = grid_network(&GridConfig { width: 20, height: 20, seed: 1, ..Default::default() })
            .unwrap();
        let idx = SpatialIndex::build(&g);
        (g, idx)
    }

    fn ctx<'a>(
        g: &'a RoadNetwork,
        idx: &'a SpatialIndex,
        weights: Option<&'a [f64]>,
    ) -> SelectionContext<'a> {
        SelectionContext {
            map: g,
            index: idx,
            weights,
            anchor: NodeId(0),
            counterpart: NodeId(399),
        }
    }

    #[test]
    fn all_strategies_return_distinct_non_excluded_fakes() {
        let (g, idx) = setup();
        let weights: Vec<f64> = (0..g.num_nodes()).map(|i| 1.0 + (i % 7) as f64).collect();
        let exclude: HashSet<NodeId> = [NodeId(0), NodeId(399), NodeId(5)].into_iter().collect();
        for strategy in [
            FakeSelection::Uniform,
            FakeSelection::default_ring(),
            FakeSelection::default_network_ring(),
            FakeSelection::Weighted,
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let c = ctx(&g, &idx, Some(&weights));
            let fakes = select_fakes(strategy, &c, &exclude, 10, &mut rng).unwrap();
            assert_eq!(fakes.len(), 10, "{}", strategy.name());
            let set: HashSet<_> = fakes.iter().collect();
            assert_eq!(set.len(), 10, "{} returned duplicates", strategy.name());
            for f in &fakes {
                assert!(!exclude.contains(f), "{} picked an excluded node", strategy.name());
            }
        }
    }

    #[test]
    fn ring_fakes_stay_near_the_anchor() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let c = SelectionContext {
            map: &g,
            index: &idx,
            weights: None,
            anchor: NodeId(210), // interior node
            counterpart: NodeId(215),
        };
        let d = g.euclidean(NodeId(210), NodeId(215));
        let fakes = select_fakes(
            FakeSelection::Ring { lo: 0.3, hi: 1.2 },
            &c,
            &HashSet::new(),
            6,
            &mut rng,
        )
        .unwrap();
        let anchor = g.point(NodeId(210));
        for f in fakes {
            let dist = anchor.distance(g.point(f));
            assert!(
                dist <= d * 1.2 + 1e-9 && dist >= d * 0.3 - 1e-9,
                "fake at distance {dist}, scale {d}"
            );
        }
    }

    #[test]
    fn ring_widens_when_annulus_is_too_thin() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        // Anchor equal to counterpart: degenerate query, scale falls back to
        // 5% of the diagonal. Request more fakes than the thin ring holds.
        let c = SelectionContext {
            map: &g,
            index: &idx,
            weights: None,
            anchor: NodeId(210),
            counterpart: NodeId(210),
        };
        let fakes = select_fakes(
            FakeSelection::Ring { lo: 0.9, hi: 1.0 },
            &c,
            &HashSet::new(),
            50,
            &mut rng,
        )
        .unwrap();
        assert_eq!(fakes.len(), 50);
    }

    #[test]
    fn weighted_respects_weights() {
        let (g, idx) = setup();
        // All mass on nodes 100..110.
        let mut weights = vec![0.0; g.num_nodes()];
        weights[100..110].fill(1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let c = ctx(&g, &idx, Some(&weights));
        let fakes =
            select_fakes(FakeSelection::Weighted, &c, &HashSet::new(), 8, &mut rng).unwrap();
        for f in &fakes {
            assert!((100..110).contains(&f.index()), "fake {f} outside weighted region");
        }
    }

    #[test]
    fn weighted_without_weights_falls_back_to_uniform() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let c = ctx(&g, &idx, None);
        let fakes =
            select_fakes(FakeSelection::Weighted, &c, &HashSet::new(), 5, &mut rng).unwrap();
        assert_eq!(fakes.len(), 5);
    }

    #[test]
    fn requesting_more_than_available_errors() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let c = ctx(&g, &idx, None);
        let n = g.num_nodes();
        let err =
            select_fakes(FakeSelection::Uniform, &c, &HashSet::new(), n + 1, &mut rng).unwrap_err();
        assert!(matches!(err, OpaqueError::NotEnoughFakes { .. }));
    }

    #[test]
    fn zero_count_is_empty() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let c = ctx(&g, &idx, None);
        assert!(
            select_fakes(FakeSelection::Uniform, &c, &HashSet::new(), 0, &mut rng)
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn exhaustive_request_succeeds_via_scan_fallback() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let c = ctx(&g, &idx, None);
        let n = g.num_nodes();
        let fakes = select_fakes(FakeSelection::Uniform, &c, &HashSet::new(), n, &mut rng).unwrap();
        assert_eq!(fakes.len(), n);
    }

    #[test]
    fn same_seed_same_fakes() {
        let (g, idx) = setup();
        let c = ctx(&g, &idx, None);
        let a = select_fakes(
            FakeSelection::default_ring(),
            &c,
            &HashSet::new(),
            5,
            &mut StdRng::seed_from_u64(42),
        )
        .unwrap();
        let b = select_fakes(
            FakeSelection::default_ring(),
            &c,
            &HashSet::new(),
            5,
            &mut StdRng::seed_from_u64(42),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn network_ring_fakes_lie_in_the_network_band() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(13);
        let (anchor, counterpart) = (NodeId(210), NodeId(250));
        let c = SelectionContext { map: &g, index: &idx, weights: None, anchor, counterpart };
        let d = pathsearch::shortest_distance(&g, anchor, counterpart).unwrap();
        let fakes = select_fakes(
            FakeSelection::NetworkRing { lo: 0.5, hi: 2.0 },
            &c,
            &HashSet::new(),
            6,
            &mut rng,
        )
        .unwrap();
        for f in fakes {
            let dist = pathsearch::shortest_distance(&g, anchor, f).unwrap();
            assert!(
                dist >= 0.5 * d - 1e-9 && dist <= 2.0 * d + 1e-9,
                "fake {f} at network distance {dist}, band [{}, {}]",
                0.5 * d,
                2.0 * d
            );
        }
    }

    #[test]
    fn network_ring_widens_under_pressure() {
        let (g, idx) = setup();
        let mut rng = StdRng::seed_from_u64(17);
        let c = SelectionContext {
            map: &g,
            index: &idx,
            weights: None,
            anchor: NodeId(0),
            counterpart: NodeId(1), // tiny scale: thin initial band
        };
        let fakes = select_fakes(
            FakeSelection::NetworkRing { lo: 0.9, hi: 1.0 },
            &c,
            &HashSet::new(),
            40,
            &mut rng,
        )
        .unwrap();
        assert_eq!(fakes.len(), 40);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(FakeSelection::Uniform.name(), "uniform");
        assert_eq!(FakeSelection::default_ring().name(), "ring");
        assert_eq!(FakeSelection::default_network_ring().name(), "net-ring");
        assert_eq!(FakeSelection::Weighted.name(), "weighted");
    }
}
