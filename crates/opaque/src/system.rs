//! Compatibility shim over the service layer.
//!
//! [`OpaqueSystem`] was the original entry point to the Figure-5 pipeline
//! (clients → obfuscator → server → candidate filter → clients). The
//! pipeline now lives in [`crate::service::OpaqueService`], which adds
//! pluggable backends, request batching, and per-client outcomes;
//! `OpaqueSystem` remains as a thin wrapper preserving the historical
//! contract for existing experiments:
//!
//! * a concrete [`DirectionsServer`] backend,
//! * the mode passed per batch rather than configured once,
//! * strict all-or-error delivery (an unreachable pair or invalid request
//!   fails the whole batch).
//!
//! New code should build an [`crate::service::OpaqueService`] via
//! [`crate::service::ServiceBuilder`]; this shim is kept for one
//! deprecation cycle and its `process_batch` is equivalent to the service
//! in strict mode (see `tests/service_api.rs` for the proof obligation).

#![allow(deprecated)] // the shim implements the deprecated type it wraps

use crate::error::Result;
use crate::filter::ClientResult;
use crate::obfuscator::{ObfuscationMode, Obfuscator};
use crate::query::ClientRequest;
use crate::server::DirectionsServer;
use crate::service::{BatchReport, OpaqueService};
use roadnet::GraphView;

/// The assembled OPAQUE deployment (compatibility wrapper around
/// [`OpaqueService`] with a single [`DirectionsServer`] backend).
#[deprecated(
    since = "0.1.0",
    note = "build an OpaqueService via opaque::ServiceBuilder instead; this strict \
            all-or-error shim remains only until the experiments finish migrating"
)]
pub struct OpaqueSystem<G> {
    service: OpaqueService<DirectionsServer<G>>,
    /// Re-verify delivered paths against the obfuscator's map.
    pub verify_results: bool,
}

impl<G: GraphView> OpaqueSystem<G> {
    /// Assemble a system from its two components.
    pub fn new(obfuscator: Obfuscator, server: DirectionsServer<G>) -> Self {
        OpaqueSystem {
            service: OpaqueService::from_parts(obfuscator, server, ObfuscationMode::Independent),
            verify_results: false,
        }
    }

    /// Access the obfuscator (e.g. to inspect its map).
    pub fn obfuscator(&self) -> &Obfuscator {
        self.service.obfuscator()
    }

    /// Access the server (e.g. to read cumulative stats).
    pub fn server(&self) -> &DirectionsServer<G> {
        self.service.backend()
    }

    /// Process one batch of client requests end to end.
    ///
    /// Results are returned in request order. Satisfied requests are *not*
    /// retained anywhere in the system (§IV: "the satisfied requests are
    /// immediately discarded in the obfuscator, for sake of security") —
    /// only the aggregate `BatchReport` survives.
    ///
    /// # Errors
    /// Strict delivery: any invalid request, duplicate client id, or
    /// unreachable pair fails the whole batch. The service layer's
    /// [`OpaqueService::process_batch`] offers per-client outcomes
    /// instead.
    pub fn process_batch(
        &mut self,
        requests: &[ClientRequest],
        mode: ObfuscationMode,
    ) -> Result<(Vec<ClientResult>, BatchReport)> {
        self.service.verify_results = self.verify_results;
        self.service.strict_delivery = true;
        let response = self.service.process_batch_with_mode(requests, mode)?;
        Ok((response.results, response.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::OpaqueError;
    use crate::obfuscator::{ClusteringConfig, FakeSelection};
    use crate::query::{ClientId, PathQuery, ProtectionSettings};
    use pathsearch::SharingPolicy;
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};

    fn system() -> OpaqueSystem<roadnet::RoadNetwork> {
        let map =
            grid_network(&GridConfig { width: 16, height: 16, seed: 5, ..Default::default() })
                .unwrap();
        let server = DirectionsServer::new(map.clone(), SharingPolicy::PerSource);
        let obfuscator = Obfuscator::new(map, FakeSelection::default_ring(), 11);
        OpaqueSystem::new(obfuscator, server)
    }

    fn request(i: u32, s: u32, t: u32, f: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(s), NodeId(t)),
            ProtectionSettings::new(f, f).unwrap(),
        )
    }

    #[test]
    fn batch_delivers_correct_paths_in_request_order() {
        let mut sys = system();
        sys.verify_results = true;
        let reqs = vec![request(10, 0, 255, 3), request(11, 16, 240, 3), request(12, 32, 200, 2)];
        let (results, report) = sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        assert_eq!(results.len(), 3);
        for (res, req) in results.iter().zip(&reqs) {
            assert_eq!(res.client, req.client);
            assert_eq!(res.path.source(), req.query.source);
            assert_eq!(res.path.destination(), req.query.destination);
        }
        assert_eq!(report.num_units, 3);
        assert_eq!(report.total_pairs, 9 + 9 + 4);
        // Independent obfuscation with f=3 adds 2+2 fakes per query (f=2: 1+1).
        assert_eq!(report.fakes_added, 4 + 4 + 2);
    }

    #[test]
    fn breach_probabilities_follow_definition_2() {
        let mut sys = system();
        let reqs = vec![request(0, 0, 255, 2), request(1, 16, 240, 4)];
        let (_, report) = sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        let breaches: Vec<f64> = report.per_client_breach.iter().map(|(_, b)| *b).collect();
        assert!((breaches[0] - 0.25).abs() < 1e-12);
        assert!((breaches[1] - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn shared_mode_reduces_server_load_and_improves_breach() {
        let reqs: Vec<ClientRequest> =
            (0..6).map(|i| request(i, i * 17 % 256, (i * 31 + 128) % 256, 4)).collect();

        let mut indep_sys = system();
        let (_, indep) = indep_sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        let mut shared_sys = system();
        let (_, shared) = shared_sys.process_batch(&reqs, ObfuscationMode::SharedGlobal).unwrap();

        assert!(shared.total_pairs <= indep.total_pairs);
        assert!(shared.fakes_added < indep.fakes_added);
        // Shared |S|,|T| ≥ 6 true endpoints each, so breach ≤ 1/36 < 1/16.
        assert!(shared.mean_breach() < indep.mean_breach());
    }

    #[test]
    fn clustered_mode_round_trips_all_clients() {
        let mut sys = system();
        let reqs: Vec<ClientRequest> =
            (0..10).map(|i| request(i, i * 11 % 256, (i * 7 + 100) % 256, 3)).collect();
        let (results, report) = sys
            .process_batch(&reqs, ObfuscationMode::SharedClustered(ClusteringConfig::default()))
            .unwrap();
        assert_eq!(results.len(), 10);
        assert!(report.num_units >= 1 && report.num_units <= 10);
        assert_eq!(report.per_client_breach.len(), 10);
    }

    #[test]
    fn redundancy_ratio_reflects_candidate_overhead() {
        let mut sys = system();
        let reqs = vec![request(0, 0, 255, 4)];
        let (_, report) = sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        // 16 candidate paths, 1 delivered → ratio must exceed 1.
        assert!(report.redundancy_ratio() > 1.0);
        assert_eq!(report.candidate_paths, 16);
    }

    #[test]
    fn traffic_is_accounted_per_hop() {
        let mut sys = system();
        let reqs = vec![request(0, 0, 255, 4), request(1, 16, 240, 4)];
        let (_, report) = sys.process_batch(&reqs, ObfuscationMode::SharedGlobal).unwrap();
        let t = report.traffic;
        assert!(t.requests_bytes > 0);
        assert!(t.queries_bytes > 0);
        assert!(t.results_bytes > 0);
        // Candidate downloads dominate: the measurable §II overconsumption.
        assert!(t.candidates_bytes > t.results_bytes);
        assert!(t.candidate_amplification() > 1.0);
        // Byte-level amplification should roughly agree with the node-level
        // redundancy proxy (same underlying paths; both well above 1).
        assert!(report.redundancy_ratio() > 1.0);
    }

    #[test]
    fn server_counters_accumulate_across_batches() {
        let mut sys = system();
        let reqs = vec![request(0, 0, 255, 2)];
        sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        let first = sys.server().stats().pairs_evaluated;
        sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap();
        assert_eq!(sys.server().stats().pairs_evaluated, first * 2);
    }

    #[test]
    fn duplicate_client_ids_are_rejected() {
        // The seed implementation silently mis-ordered batches with
        // duplicate client ids (its ClientId→position map collapsed them);
        // admission now rejects the ambiguity with a typed error.
        let mut sys = system();
        let reqs = vec![request(3, 0, 255, 2), request(3, 16, 240, 2)];
        let err = sys.process_batch(&reqs, ObfuscationMode::Independent).unwrap_err();
        assert_eq!(err, OpaqueError::DuplicateClient { client: ClientId(3) });
    }
}
