//! E7 — fake-selection strategy ablation (§IV "efficient path query
//! obfuscation algorithm").
//!
//! All strategies deliver the same *nominal* breach probability
//! (Definition 2 only counts set sizes); they differ in what they cost the
//! server (Lemma 1's per-source radius) and how they hold up against a
//! background-knowledge adversary who weighs endpoints by population
//! density. One table row per strategy: server cost, nominal guarantee,
//! and informed-adversary metrics.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::attack::informed_attack;
use opaque::{ClientId, ClientRequest, FakeSelection, Obfuscator, PathQuery, ProtectionSettings};
use pathsearch::{SharingPolicy, msmd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;
use workload::{PopulationConfig, population_weights};

/// Run E7.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E7",
        "fake-selection strategies: cost vs informed-adversary resistance",
        "§IV obfuscation algorithm design space",
        &[
            "strategy",
            "settled/query",
            "nominal breach",
            "victim posterior",
            "MAP success",
            "eff anonymity",
        ],
    );
    let (g, _) = network_with_index(NetworkClass::Geometric, scale);
    let n = g.num_nodes() as u32;
    let weights = population_weights(&g, &PopulationConfig { seed: 0xE7, ..Default::default() });
    let f = 4u32;
    let mut rng = StdRng::seed_from_u64(0xE7);

    // Queries drawn with population-weighted endpoints: true endpoints are
    // plausible places, which is exactly when uniform fakes stick out.
    let cum: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total = *cum.last().expect("non-empty");
    let draw = |rng: &mut StdRng| {
        let x = rng.gen_range(0.0..total);
        NodeId(cum.partition_point(|&c| c <= x) as u32)
    };
    let queries: Vec<PathQuery> = (0..scale.queries)
        .map(|_| {
            loop {
                let s = draw(&mut rng);
                let d = draw(&mut rng);
                if s != d && s.index() < n as usize && d.index() < n as usize {
                    break PathQuery::new(s, d);
                }
            }
        })
        .collect();

    for strategy in [
        FakeSelection::Uniform,
        FakeSelection::default_ring(),
        FakeSelection::default_network_ring(),
        FakeSelection::Weighted,
    ] {
        let mut ob = Obfuscator::new(g.clone(), strategy, 0xE7).with_weights(weights.clone());
        let mut settled = 0u64;
        let mut nominal = 0.0;
        let mut posterior = 0.0;
        let mut map_success = 0.0;
        let mut anonymity = 0.0;
        for q in &queries {
            let req = ClientRequest::new(
                ClientId(0),
                *q,
                ProtectionSettings::new(f, f).expect("positive"),
            );
            let unit = ob.obfuscate_independent(&req).expect("map large enough");
            let r = msmd(&g, unit.query.sources(), unit.query.targets(), SharingPolicy::PerSource);
            settled += r.stats.settled;
            nominal += unit.query.breach_probability();
            let rep = informed_attack(&unit, ClientId(0), &weights);
            posterior += rep.victim_posterior;
            map_success += rep.map_success;
            anonymity += rep.effective_anonymity;
        }
        let qn = queries.len() as f64;
        t.row(vec![
            strategy.name().into(),
            f3(settled as f64 / qn),
            f3(nominal / qn),
            f3(posterior / qn),
            f3(map_success / qn),
            f3(anonymity / qn),
        ]);
    }
    t.note("nominal breach is identical by construction (same f_S×f_T)");
    t.note("the ring variants minimize server cost (net-ring cheapest — it bands by the exact Lemma 1 distance); weighted maximizes resistance to the informed adversary");
    t.note(format!("informed adversary prior: population density over {} nodes", g.num_nodes()));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_ring_is_cheapest_weighted_most_robust() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 4);
        let get = |name: &str| t.rows.iter().find(|r| r[0] == name).unwrap().clone();
        let uniform = get("uniform");
        let ring = get("ring");
        let net_ring = get("net-ring");
        let weighted = get("weighted");

        // Nominal breach identical across strategies.
        assert_eq!(uniform[2], ring[2]);
        assert_eq!(uniform[2], weighted[2]);
        assert_eq!(uniform[2], net_ring[2]);

        // Both ring variants are cheaper for the server than uniform fakes.
        let ring_cost: f64 = ring[1].parse().unwrap();
        let net_ring_cost: f64 = net_ring[1].parse().unwrap();
        let uniform_cost: f64 = uniform[1].parse().unwrap();
        assert!(ring_cost < uniform_cost, "ring {ring_cost} vs uniform {uniform_cost}");
        assert!(net_ring_cost < uniform_cost, "net-ring {net_ring_cost} vs uniform {uniform_cost}");

        // Weighted leaves the informed adversary with a posterior no better
        // than uniform fakes give it.
        let weighted_post: f64 = weighted[3].parse().unwrap();
        let uniform_post: f64 = uniform[3].parse().unwrap();
        assert!(
            weighted_post <= uniform_post * 1.25,
            "weighted {weighted_post} vs uniform {uniform_post}"
        );
    }
}
