//! Typed messages carried inside frames.
//!
//! The wire vocabulary is deliberately thin: requests wrap the existing
//! [`RequestMsg`] (hop 1 of Figure 5) plus the gateway lane, and every
//! reply mirrors exactly one terminal [`opaque::ServiceEvent`] — so the
//! network layer adds framing and routing, never semantics. Batch
//! reports are **not** wire messages: they aggregate other clients'
//! requests and stay on the server (the loopback determinism test reads
//! them from [`crate::server::NetServer::reports`]).

use crate::error::{NetError, Result};
use opaque::{ClientId, Priority, RejectReason, RequestMsg, ResultMsg, Ticket};

/// Client → server: one directions request, routed into a gateway lane.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireRequest {
    /// The paper's hop-1 message.
    pub request: RequestMsg,
    /// Which admission lane to ride.
    pub priority: Priority,
}

/// Server → client: the terminal answer for one submitted request, or a
/// connection-fatal error notice.
///
/// Every frame a client sends receives exactly one terminal reply —
/// [`WireReply::Result`], [`WireReply::Unreachable`],
/// [`WireReply::Rejected`], or [`WireReply::Cancelled`] — except after a
/// [`WireReply::Error`], which announces the connection is closing and
/// voids that accounting for frames not yet submitted.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WireReply {
    /// Hop 4: the delivered path.
    Result {
        /// Gateway ticket the reply resolves.
        ticket: Ticket,
        /// The delivered message, byte-for-byte what the in-process
        /// gateway emits in `ServiceEvent::ResponseReady`.
        result: ResultMsg,
        /// Seconds the request waited in the admission queue.
        waited: f64,
    },
    /// The true pair is disconnected on the server's map.
    Unreachable {
        /// Gateway ticket the reply resolves.
        ticket: Ticket,
        /// The requesting client.
        client: ClientId,
        /// Seconds the request waited in the admission queue.
        waited: f64,
    },
    /// Refused — at the door (`ticket` is `None`: the gateway never
    /// issued one) or later (deadline shed, infeasible obfuscation).
    Rejected {
        /// The ticket, when the request got far enough to earn one.
        ticket: Option<Ticket>,
        /// The requesting client.
        client: ClientId,
        /// The gateway's typed reason.
        reason: RejectReason,
        /// Seconds waited in the queue (0 for door refusals).
        waited: f64,
    },
    /// Acknowledges a cancellation before the window flushed.
    Cancelled {
        /// The cancelled ticket.
        ticket: Ticket,
        /// The client whose request was cancelled.
        client: ClientId,
    },
    /// The connection violated the protocol (malformed frame, bad
    /// version, oversized length); the server flushes pending replies
    /// and closes. Purely connection-level: queued batches and other
    /// connections are unaffected.
    Error {
        /// Human-readable cause (the [`NetError`]'s message).
        reason: String,
    },
}

impl WireReply {
    /// The client a terminal reply answers (`None` for
    /// [`WireReply::Error`]).
    pub fn client(&self) -> Option<ClientId> {
        match self {
            WireReply::Result { result, .. } => Some(result.client),
            WireReply::Unreachable { client, .. }
            | WireReply::Rejected { client, .. }
            | WireReply::Cancelled { client, .. } => Some(*client),
            WireReply::Error { .. } => None,
        }
    }

    /// True for replies that resolve exactly one submitted request.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, WireReply::Error { .. })
    }
}

/// Serialize a message into its frame payload (compact JSON, like every
/// other hop the experiments measure).
///
/// # Errors
/// [`NetError::Malformed`] if the message fails to serialize. The wire
/// types round-trip by construction (pinned by the tests below), so in
/// practice this never fires — but the hot path treats it as a
/// connection-level fault rather than asserting, because an assert here
/// would be process-fatal.
pub fn encode_message<M: serde::Serialize>(msg: &M) -> Result<Vec<u8>> {
    serde_json::to_vec(msg).map_err(|e| NetError::Malformed { reason: format!("encode: {e:?}") })
}

/// Decode a frame payload into a message.
///
/// # Errors
/// [`NetError::Malformed`] when the payload is not UTF-8 JSON of the
/// expected shape.
pub fn decode_message<M: serde::Deserialize>(payload: &[u8]) -> Result<M> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| NetError::Malformed { reason: "payload is not UTF-8".to_string() })?;
    serde_json::from_str(text).map_err(|e| NetError::Malformed { reason: format!("{e:?}") })
}

#[cfg(test)]
mod tests {
    use super::*;
    use opaque::{PathQuery, ProtectionSettings};
    use roadnet::NodeId;

    fn request() -> WireRequest {
        WireRequest {
            request: RequestMsg {
                client: ClientId(7),
                query: PathQuery::new(NodeId(1), NodeId(2)),
                protection: ProtectionSettings::new(3, 3).unwrap(),
            },
            priority: Priority::Bulk,
        }
    }

    #[test]
    fn requests_round_trip() {
        let msg = request();
        let back: WireRequest = decode_message(&encode_message(&msg).unwrap()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn replies_round_trip_including_optional_tickets() {
        let replies = vec![
            WireReply::Unreachable { ticket: Ticket(4), client: ClientId(1), waited: 0.5 },
            WireReply::Rejected {
                ticket: None,
                client: ClientId(2),
                reason: RejectReason::QueueFull { depth: 8 },
                waited: 0.0,
            },
            WireReply::Rejected {
                ticket: Some(Ticket(9)),
                client: ClientId(3),
                reason: RejectReason::DeadlineExpired { waited: 2.0 },
                waited: 2.0,
            },
            WireReply::Cancelled { ticket: Ticket(11), client: ClientId(4) },
            WireReply::Error { reason: "bad version".to_string() },
        ];
        for reply in replies {
            let back: WireReply = decode_message(&encode_message(&reply).unwrap()).unwrap();
            assert_eq!(back, reply);
            assert_eq!(back.is_terminal(), !matches!(reply, WireReply::Error { .. }));
        }
    }

    #[test]
    fn replies_expose_their_client() {
        assert_eq!(
            WireReply::Cancelled { ticket: Ticket(1), client: ClientId(9) }.client(),
            Some(ClientId(9))
        );
        assert_eq!(WireReply::Error { reason: "x".to_string() }.client(), None);
    }

    #[test]
    fn malformed_payloads_are_typed_errors_not_panics() {
        for bad in [&b"\xff\xfe"[..], b"not json", b"{\"request\":3}"] {
            match decode_message::<WireRequest>(bad) {
                Err(NetError::Malformed { .. }) => {}
                other => panic!("expected Malformed for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn deserialized_protection_is_revalidated_by_the_gateway_not_trusted() {
        // A hostile peer can hand-craft f_s = 0 (Deserialize bypasses
        // ProtectionSettings::new); the wire layer must pass it through
        // and let the gateway answer InvalidProtection rather than panic.
        let json = r#"{"request":{"client":1,"query":{"source":0,"destination":5},
                        "protection":{"f_s":0,"f_t":3}},"priority":"Interactive"}"#;
        let msg: WireRequest = decode_message(json.as_bytes()).unwrap();
        assert_eq!(msg.request.protection.f_s, 0, "decode must not silently repair");
    }
}
