//! Typed construction of an [`OpaqueService`].
//!
//! [`ServiceConfig`] holds every serializable knob of a deployment —
//! fake-selection strategy, RNG seed, MSMD sharing policy, obfuscation
//! mode, verification, shard count, batch policy — with sane defaults.
//! [`ServiceBuilder`] pairs a config with the non-serializable inputs (the
//! road map, optional plausibility weights) and validates the whole
//! assembly in [`ServiceBuilder::build`], replacing the original
//! hand-wiring of `Obfuscator` + `DirectionsServer` pairs.

use crate::error::{OpaqueError, Result};
use crate::obfuscator::{FakeSelection, ObfuscationMode, Obfuscator};
use crate::server::DirectionsServer;
use crate::service::OpaqueService;
use crate::service::backend::{DirectionsBackend, ShardedBackend};
use crate::service::batcher::{BatchPolicy, Batcher};
use crate::service::cache::CachePolicy;
use crate::service::gateway::AdmissionPolicy;
use crate::service::heuristic::SearchHeuristic;
use crate::service::parallel::ExecutionPolicy;
use crate::service::partition::{Partition, PartitionPolicy};
use pathsearch::{SearchArena, SharingPolicy};
use roadnet::{GraphView, RoadNetwork};
use std::sync::Arc;

/// The backend type [`ServiceBuilder::build`] assembles: a fleet of
/// in-memory directions servers (a fleet of one when `shards == 1`),
/// placed round-robin or by region ownership according to
/// [`ServiceConfig::partition`]. The fleet shares one map behind an
/// [`Arc`] — an N-shard service holds one backend copy of the map, not N.
pub type DefaultBackend = ShardedBackend<DirectionsServer<Arc<RoadNetwork>>>;

/// Serializable deployment parameters, with defaults matching the paper's
/// baseline setup (ring fakes, per-source sharing, independent
/// obfuscation, one shard).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceConfig {
    /// Fake-endpoint selection strategy for the obfuscator.
    pub strategy: FakeSelection,
    /// Seed for the obfuscator's RNG (obfuscation is reproducible per
    /// seed).
    pub seed: u64,
    /// MSMD sharing policy the backend servers evaluate under (including
    /// [`SharingPolicy::SharedFrontier`], the arena-backed interleaved
    /// sweep).
    pub sharing: SharingPolicy,
    /// Obfuscation mode applied to each drained batch.
    pub mode: ObfuscationMode,
    /// Re-verify delivered paths against the obfuscator's map.
    pub verify_results: bool,
    /// Memoize fakes per true query to close the intersection-attack
    /// channel (see [`Obfuscator::with_consistent_fakes`]).
    pub consistent_fakes: bool,
    /// Number of backend shards.
    pub shards: usize,
    /// How query units are placed on the shard fleet: the historical
    /// [`PartitionPolicy::RoundRobin`] rotation, or
    /// [`PartitionPolicy::RegionOwned`] routing to the shard owning each
    /// unit's obfuscation region (deserializes from absent/`null` as
    /// round-robin, so configs predating the field keep their meaning).
    pub partition: PartitionPolicy,
    /// How each batch's obfuscated queries are executed against the shard
    /// fleet — sequentially or across a pinned-worker pool.
    pub execution: ExecutionPolicy,
    /// Whether each backend shard caches shortest-path trees
    /// ([`CachePolicy::Lru`]) — per-shard caches, so the worker pool stays
    /// lock-free — with byte-identical reports either way (the
    /// cache-equivalence harness's guarantee).
    pub cache: CachePolicy,
    /// Admission-queue flush policy (when a pending window drains).
    pub batch: BatchPolicy,
    /// Gateway admission policy (bounded queue depth, per-request
    /// deadline; see [`AdmissionPolicy`]).
    pub admission: AdmissionPolicy,
    /// Goal-directed search for the backend sweeps:
    /// [`SearchHeuristic::Alt`] builds one shared ALT landmark table at
    /// [`ServiceBuilder::build`] and attaches it to every shard, pruning
    /// settled nodes with answers and reports byte-identical to
    /// [`SearchHeuristic::None`] (deserializes from absent/`null` as
    /// `None`, so configs predating the field keep their meaning).
    pub heuristic: SearchHeuristic,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            strategy: FakeSelection::default_ring(),
            seed: 0,
            sharing: SharingPolicy::PerSource,
            mode: ObfuscationMode::Independent,
            verify_results: false,
            consistent_fakes: false,
            shards: 1,
            partition: PartitionPolicy::RoundRobin,
            execution: ExecutionPolicy::Sequential,
            cache: CachePolicy::Off,
            batch: BatchPolicy::default(),
            admission: AdmissionPolicy::default(),
            heuristic: SearchHeuristic::None,
        }
    }
}

impl ServiceConfig {
    /// Check the parameters are internally consistent.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(OpaqueError::InvalidConfig { reason: "shards must be >= 1".to_string() });
        }
        self.execution.validate()?;
        self.cache.validate()?;
        self.batch.validate()?;
        self.heuristic.validate()?;
        self.admission.validate()
    }

    /// The cross-field check [`ServiceBuilder::build`] applies on top of
    /// [`ServiceConfig::validate`]: a [`ExecutionPolicy::WorkerPool`] must
    /// not ask for more threads than the default backend has shards — each
    /// worker is pinned to a shard (its search arena), so surplus threads
    /// could never run and the configuration is almost certainly a
    /// mistake. Not part of `validate` because
    /// [`ServiceBuilder::build_with_backend`] ignores
    /// [`ServiceConfig::shards`] and takes the caller's fleet as given.
    fn validate_execution_fits_fleet(&self) -> Result<()> {
        if let ExecutionPolicy::WorkerPool { threads } = self.execution {
            if threads > self.shards {
                return Err(OpaqueError::InvalidConfig {
                    reason: format!(
                        "worker pool needs one shard per thread: {threads} threads > {} shards",
                        self.shards
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Fluent builder for an [`OpaqueService`].
#[derive(Clone, Debug, Default)]
pub struct ServiceBuilder {
    config: ServiceConfig,
    map: Option<RoadNetwork>,
    weights: Option<Vec<f64>>,
}

impl ServiceBuilder {
    /// Start from defaults; a map is required before [`Self::build`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Start from an explicit config.
    pub fn from_config(config: ServiceConfig) -> Self {
        ServiceBuilder { config, map: None, weights: None }
    }

    /// The current config (as accumulated by the setters).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The road map shared by the obfuscator and the default backend.
    pub fn map(mut self, map: RoadNetwork) -> Self {
        self.map = Some(map);
        self
    }

    /// Fake-endpoint selection strategy.
    pub fn fake_selection(mut self, strategy: FakeSelection) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Obfuscator RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Backend MSMD sharing policy.
    pub fn sharing_policy(mut self, sharing: SharingPolicy) -> Self {
        self.config.sharing = sharing;
        self
    }

    /// Obfuscation mode for processed batches.
    pub fn obfuscation_mode(mut self, mode: ObfuscationMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Re-verify delivered paths against the obfuscator's map.
    pub fn verify_results(mut self, on: bool) -> Self {
        self.config.verify_results = on;
        self
    }

    /// Memoize fakes per true query (intersection-attack defence).
    pub fn consistent_fakes(mut self, on: bool) -> Self {
        self.config.consistent_fakes = on;
        self
    }

    /// Per-node plausibility weights (enables
    /// [`FakeSelection::Weighted`]).
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Number of backend shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Shard placement policy: round-robin rotation (default) or
    /// region-owned routing. [`PartitionPolicy::RegionOwned`] requires the
    /// map to have at least as many nodes as shards (checked in
    /// [`ServiceBuilder::build`], where the partition is constructed).
    pub fn partition_policy(mut self, partition: PartitionPolicy) -> Self {
        self.config.partition = partition;
        self
    }

    /// Execution policy for each batch's obfuscated queries. A
    /// [`ExecutionPolicy::WorkerPool`] requires at least as many shards
    /// as threads (checked in [`ServiceBuilder::build`]).
    pub fn execution_policy(mut self, execution: ExecutionPolicy) -> Self {
        self.config.execution = execution;
        self
    }

    /// Per-shard tree-cache policy. `Lru { trees: 0 }` is rejected at
    /// [`ServiceBuilder::build`], mirroring the zero-thread worker-pool
    /// rejection.
    pub fn cache_policy(mut self, cache: CachePolicy) -> Self {
        self.config.cache = cache;
        self
    }

    /// Goal-directed search heuristic for the backend shard fleet.
    /// [`SearchHeuristic::Alt`] requires a symmetric map with at least as
    /// many nodes as landmarks (checked in [`ServiceBuilder::build`],
    /// where the landmark tables are constructed).
    pub fn search_heuristic(mut self, heuristic: SearchHeuristic) -> Self {
        self.config.heuristic = heuristic;
        self
    }

    /// Admission-queue flush policy.
    pub fn batch_policy(mut self, policy: BatchPolicy) -> Self {
        self.config.batch = policy;
        self
    }

    /// Gateway admission policy: bounded queue depth (submissions beyond
    /// it are refused with
    /// [`crate::RejectReason::QueueFull`]) and optional per-request
    /// deadline shedding.
    pub fn admission_policy(mut self, admission: AdmissionPolicy) -> Self {
        self.config.admission = admission;
        self
    }

    /// Validate and assemble the service with the default sharded
    /// in-memory backend.
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] for a missing map, zero shards, a
    /// weight vector whose length differs from the map's node count, or an
    /// unsatisfiable batch policy.
    pub fn build(self) -> Result<OpaqueService<DefaultBackend>> {
        self.config.validate_execution_fits_fleet()?;
        let (config, map, weights) = self.into_validated_parts()?;
        // One shared map for the whole shard fleet; the obfuscator keeps
        // its own copy (it is a separate trust domain in Figure 5). Each
        // shard gets its own arena with its single-tree slab (the plain
        // query / PerSource footprint) pre-grown to the map; multi-tree
        // sweeps (SharedFrontier, wide units) still grow their extra
        // trees on first touch and reuse them from then on.
        let shared = Arc::new(map.clone());
        let nodes = shared.num_nodes();
        // One landmark table for the whole fleet, too: ALT preprocessing
        // is the expensive part (|landmarks| full sweeps), so shards share
        // it the same way they share the map.
        let heuristic = config.heuristic.preprocess(shared.as_ref())?;
        let servers: Vec<DirectionsServer<Arc<RoadNetwork>>> = (0..config.shards)
            .map(|_| {
                DirectionsServer::with_arena(
                    Arc::clone(&shared),
                    config.sharing,
                    SearchArena::preallocated(nodes, 1),
                )
                .with_tree_cache(config.cache)
                .with_heuristic(heuristic.clone())
            })
            .collect();
        // Placement: region-owned fleets carry a deterministic partition
        // of the shared map; round-robin fleets keep the rotating cursor.
        // Either way every shard searches the whole map, which is what
        // keeps placement invisible to every report byte.
        let backend = match config.partition {
            PartitionPolicy::RoundRobin => ShardedBackend::new(servers)?,
            PartitionPolicy::RegionOwned { halo } => {
                let partition = Partition::build(&shared, config.shards, halo)?;
                ShardedBackend::with_partition(servers, partition)?
            }
        };
        Self::assemble(config, map, weights, backend)
    }

    /// Validate and assemble around a caller-supplied backend (paged
    /// storage, custom shard fleets, mocks). The map still seeds the
    /// obfuscator; the backend is used as given and
    /// [`ServiceConfig::shards`] / [`ServiceConfig::sharing`] are ignored.
    pub fn build_with_backend<B: DirectionsBackend>(self, backend: B) -> Result<OpaqueService<B>> {
        let (config, map, weights) = self.into_validated_parts()?;
        Self::assemble(config, map, weights, backend)
    }

    fn into_validated_parts(self) -> Result<(ServiceConfig, RoadNetwork, Option<Vec<f64>>)> {
        self.config.validate()?;
        let map = self.map.ok_or_else(|| OpaqueError::InvalidConfig {
            reason: "a road map is required (ServiceBuilder::map)".to_string(),
        })?;
        if let Some(w) = &self.weights {
            if w.len() != map.num_nodes() {
                return Err(OpaqueError::InvalidConfig {
                    reason: format!(
                        "weights length {} does not match map node count {}",
                        w.len(),
                        map.num_nodes()
                    ),
                });
            }
        }
        Ok((self.config, map, self.weights))
    }

    fn assemble<B: DirectionsBackend>(
        config: ServiceConfig,
        map: RoadNetwork,
        weights: Option<Vec<f64>>,
        backend: B,
    ) -> Result<OpaqueService<B>> {
        let mut obfuscator = Obfuscator::new(map, config.strategy, config.seed)
            .with_consistent_fakes(config.consistent_fakes);
        if let Some(w) = weights {
            obfuscator = obfuscator.with_weights(w);
        }
        Ok(OpaqueService {
            obfuscator,
            backend,
            mode: config.mode,
            batcher: Batcher::new(config.batch, config.admission)?,
            verify_results: config.verify_results,
            strict_delivery: false,
            execution: config.execution,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{ClientId, ClientRequest, PathQuery, ProtectionSettings};
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};

    fn map() -> RoadNetwork {
        grid_network(&GridConfig { width: 12, height: 12, seed: 2, ..Default::default() }).unwrap()
    }

    #[test]
    fn build_requires_a_map() {
        let err = ServiceBuilder::new().build().unwrap_err();
        assert!(matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("map")));
    }

    #[test]
    fn build_rejects_zero_shards_and_bad_batch_policy() {
        let err = ServiceBuilder::new().map(map()).shards(0).build().unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("shards"))
        );
        let err = ServiceBuilder::new()
            .map(map())
            .batch_policy(BatchPolicy { max_batch: 0, max_delay: 1.0 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("max_batch"))
        );
    }

    #[test]
    fn build_rejects_worker_pools_larger_than_the_fleet() {
        let err = ServiceBuilder::new()
            .map(map())
            .shards(2)
            .execution_policy(ExecutionPolicy::WorkerPool { threads: 4 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("shard per thread")),
            "{err}"
        );
        // Zero-thread pools are rejected by config validation itself.
        let err = ServiceBuilder::new()
            .map(map())
            .execution_policy(ExecutionPolicy::WorkerPool { threads: 0 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("thread")),
            "{err}"
        );
        // A matching fleet builds fine.
        assert!(
            ServiceBuilder::new()
                .map(map())
                .shards(4)
                .execution_policy(ExecutionPolicy::WorkerPool { threads: 4 })
                .build()
                .is_ok()
        );
    }

    #[test]
    fn build_rejects_mismatched_weights() {
        let err = ServiceBuilder::new().map(map()).weights(vec![1.0; 3]).build().unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("weights"))
        );
    }

    #[test]
    fn built_service_serves_a_batch() {
        let mut svc = ServiceBuilder::new()
            .map(map())
            .seed(7)
            .shards(3)
            .verify_results(true)
            .obfuscation_mode(ObfuscationMode::SharedGlobal)
            .build()
            .unwrap();
        assert_eq!(svc.backend().num_shards(), 3);
        let reqs: Vec<ClientRequest> = (0..4)
            .map(|i| {
                ClientRequest::new(
                    ClientId(i),
                    PathQuery::new(NodeId(i * 7), NodeId(143 - i * 5)),
                    ProtectionSettings::new(3, 3).unwrap(),
                )
            })
            .collect();
        let resp = svc.process_batch(&reqs).unwrap();
        assert_eq!(resp.results.len(), 4);
        assert_eq!(resp.report.mode, ObfuscationMode::SharedGlobal);
    }

    #[test]
    fn config_round_trips_through_serde() {
        let config = ServiceConfig {
            seed: 42,
            shards: 4,
            sharing: SharingPolicy::SharedFrontier,
            mode: ObfuscationMode::SharedGlobal,
            execution: ExecutionPolicy::WorkerPool { threads: 4 },
            batch: BatchPolicy { max_batch: 8, max_delay: 2.5 },
            admission: AdmissionPolicy { queue_depth: 64, deadline: Some(7.5) },
            ..Default::default()
        };
        let json = serde_json::to_string(&config).unwrap();
        assert!(json.contains("SharedFrontier"), "{json}");
        assert!(json.contains("WorkerPool"), "{json}");
        assert!(json.contains("queue_depth"), "{json}");
        let back: ServiceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        // A deadline-less admission policy round-trips too (None ↔ null).
        let config = ServiceConfig::default();
        let back: ServiceConfig =
            serde_json::from_str(&serde_json::to_string(&config).unwrap()).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.admission.deadline, None);
    }

    #[test]
    fn config_round_trips_partition_policies_and_legacy_json_still_parses() {
        for partition in [PartitionPolicy::RoundRobin, PartitionPolicy::RegionOwned { halo: 2 }] {
            let config = ServiceConfig { shards: 4, partition, ..Default::default() };
            let json = serde_json::to_string(&config).unwrap();
            if let PartitionPolicy::RegionOwned { .. } = partition {
                assert!(json.contains("RegionOwned"), "{json}");
                assert!(json.contains("halo"), "{json}");
            } else {
                assert!(json.contains("RoundRobin"), "{json}");
            }
            let back: ServiceConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, config, "{partition:?}");
        }
        // A config serialized before the partition field existed (no
        // "partition" key at all) must still parse, as round-robin.
        let mut legacy = serde_json::to_string(&ServiceConfig::default()).unwrap();
        legacy = legacy.replace("\"partition\":\"RoundRobin\",", "");
        assert!(!legacy.contains("partition"), "{legacy}");
        let back: ServiceConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, ServiceConfig::default());
        // Defaults stay round-robin (the historical placement).
        assert_eq!(ServiceConfig::default().partition, PartitionPolicy::RoundRobin);
    }

    #[test]
    fn config_round_trips_search_heuristics_and_legacy_json_still_parses() {
        for heuristic in [SearchHeuristic::None, SearchHeuristic::Alt { landmarks: 8 }] {
            let config = ServiceConfig { heuristic, ..Default::default() };
            let json = serde_json::to_string(&config).unwrap();
            if let SearchHeuristic::Alt { .. } = heuristic {
                assert!(json.contains("Alt"), "{json}");
                assert!(json.contains("landmarks"), "{json}");
            } else {
                assert!(json.contains("\"heuristic\":\"None\""), "{json}");
            }
            let back: ServiceConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, config, "{heuristic:?}");
        }
        // A config serialized before the heuristic field existed (no
        // "heuristic" key at all) must still parse, as unguided.
        let mut legacy = serde_json::to_string(&ServiceConfig::default()).unwrap();
        legacy = legacy.replace(",\"heuristic\":\"None\"", "");
        assert!(!legacy.contains("heuristic"), "{legacy}");
        let back: ServiceConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, ServiceConfig::default());
        // Defaults stay unguided (the historical behavior).
        assert_eq!(ServiceConfig::default().heuristic, SearchHeuristic::None);
    }

    #[test]
    fn build_shares_one_landmark_table_across_the_fleet() {
        let svc = ServiceBuilder::new()
            .map(map())
            .shards(3)
            .search_heuristic(SearchHeuristic::Alt { landmarks: 6 })
            .build()
            .unwrap();
        let tables: Vec<&Arc<pathsearch::AltPreprocessing>> = svc
            .backend()
            .shards()
            .iter()
            .map(|s| s.heuristic().expect("every shard carries the tables"))
            .collect();
        assert_eq!(tables[0].landmarks().len(), 6);
        for &t in &tables[1..] {
            assert!(Arc::ptr_eq(tables[0], t), "one shared table, not per-shard copies");
        }
        // Unguided fleets carry none.
        let svc = ServiceBuilder::new().map(map()).build().unwrap();
        assert!(svc.backend().shards()[0].heuristic().is_none());
    }

    #[test]
    fn build_rejects_unsatisfiable_heuristics() {
        // Zero landmarks: rejected by config validation itself.
        let err = ServiceBuilder::new()
            .map(map())
            .search_heuristic(SearchHeuristic::Alt { landmarks: 0 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("landmark")),
            "{err}"
        );
        // More landmarks than the map has nodes: rejected at preprocess.
        let err = ServiceBuilder::new()
            .map(map())
            .search_heuristic(SearchHeuristic::Alt { landmarks: 1000 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("landmark")),
            "{err}"
        );
    }

    #[test]
    fn guided_service_serves_batches_identically_to_unguided() {
        let reqs: Vec<ClientRequest> = (0..5)
            .map(|i| {
                ClientRequest::new(
                    ClientId(i),
                    PathQuery::new(NodeId(i * 13), NodeId(143 - i * 7)),
                    ProtectionSettings::new(3, 3).unwrap(),
                )
            })
            .collect();
        let run = |heuristic| {
            let mut svc = ServiceBuilder::new()
                .map(map())
                .seed(11)
                .shards(2)
                .search_heuristic(heuristic)
                .verify_results(true)
                .build()
                .unwrap();
            let resp = svc.process_batch(&reqs).unwrap();
            let stats = svc.backend().stats();
            (resp, stats)
        };
        let (plain, plain_stats) = run(SearchHeuristic::None);
        let (guided, guided_stats) = run(SearchHeuristic::Alt { landmarks: 8 });
        assert_eq!(plain.outcomes, guided.outcomes);
        assert_eq!(plain.results.len(), guided.results.len());
        for (a, b) in plain.results.iter().zip(&guided.results) {
            assert_eq!(a.path, b.path, "guided delivery diverged");
        }
        assert!(guided_stats.search.settled <= plain_stats.search.settled);
        assert_eq!(plain_stats.paths_returned, guided_stats.paths_returned);
    }

    #[test]
    fn build_assembles_region_owned_fleets() {
        let svc = ServiceBuilder::new()
            .map(map())
            .shards(3)
            .partition_policy(PartitionPolicy::RegionOwned { halo: 1 })
            .build()
            .unwrap();
        let partition = svc.backend().partition().expect("region-owned fleet carries a router");
        assert_eq!(partition.shards(), 3);
        assert_eq!(partition.halo(), 1);
        assert_eq!(
            (0..3).map(|s| partition.owned_count(s)).sum::<usize>(),
            144,
            "every node owned exactly once"
        );
        // Round-robin fleets carry no router.
        let svc = ServiceBuilder::new().map(map()).shards(3).build().unwrap();
        assert!(svc.backend().partition().is_none());
        // More shards than nodes cannot form non-empty regions.
        let err = ServiceBuilder::new()
            .map(map())
            .shards(145)
            .partition_policy(PartitionPolicy::RegionOwned { halo: 0 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("non-empty")),
            "{err}"
        );
    }

    #[test]
    fn build_rejects_unsatisfiable_admission_policies() {
        let err = ServiceBuilder::new()
            .map(map())
            .admission_policy(AdmissionPolicy { queue_depth: 0, deadline: None })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("queue_depth")),
            "{err}"
        );
        let err = ServiceBuilder::new()
            .map(map())
            .admission_policy(AdmissionPolicy { queue_depth: 8, deadline: Some(-1.0) })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("deadline")),
            "{err}"
        );
    }

    #[test]
    fn config_round_trips_every_cache_policy_variant() {
        for cache in [CachePolicy::Off, CachePolicy::Lru { trees: 128 }] {
            let config = ServiceConfig {
                seed: 9,
                shards: 2,
                cache,
                execution: ExecutionPolicy::WorkerPool { threads: 2 },
                ..Default::default()
            };
            let json = serde_json::to_string(&config).unwrap();
            if let CachePolicy::Lru { .. } = cache {
                assert!(json.contains("Lru"), "{json}");
                assert!(json.contains("trees"), "{json}");
            } else {
                assert!(json.contains("Off"), "{json}");
            }
            let back: ServiceConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, config, "{cache:?}");
        }
        // Defaults stay cache-off (the historical behavior).
        assert_eq!(ServiceConfig::default().cache, CachePolicy::Off);
    }

    #[test]
    fn build_rejects_zero_capacity_tree_caches() {
        // Mirrors the zero-thread worker-pool rejection: constructible,
        // serializable, but unsatisfiable — caught at build().
        let err = ServiceBuilder::new()
            .map(map())
            .cache_policy(CachePolicy::Lru { trees: 0 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, OpaqueError::InvalidConfig { ref reason } if reason.contains("tree")),
            "{err}"
        );
        // And a satisfiable cache builds a working cached fleet.
        let svc = ServiceBuilder::new()
            .map(map())
            .shards(2)
            .cache_policy(CachePolicy::Lru { trees: 16 })
            .build()
            .unwrap();
        for shard in svc.backend().shards() {
            let cache = shard.tree_cache().expect("every shard carries its own cache");
            assert_eq!(cache.capacity(), 16);
            assert!(cache.is_empty());
        }
    }

    #[test]
    fn built_service_serves_under_shared_frontier() {
        let mut svc = ServiceBuilder::new()
            .map(map())
            .seed(3)
            .sharing_policy(SharingPolicy::SharedFrontier)
            .verify_results(true)
            .build()
            .unwrap();
        let reqs: Vec<ClientRequest> = (0..3)
            .map(|i| {
                ClientRequest::new(
                    ClientId(i),
                    PathQuery::new(NodeId(i * 11), NodeId(140 - i * 9)),
                    ProtectionSettings::new(3, 3).unwrap(),
                )
            })
            .collect();
        let resp = svc.process_batch(&reqs).unwrap();
        assert_eq!(resp.results.len(), 3);
        for (res, req) in resp.results.iter().zip(&reqs) {
            assert_eq!(res.path.source(), req.query.source);
            assert_eq!(res.path.destination(), req.query.destination);
        }
        assert!(svc.backend().stats().trees_grown > 0);
    }

    #[test]
    fn custom_backend_is_accepted() {
        let g = map();
        let backend = DirectionsServer::new(g.clone(), SharingPolicy::None);
        let mut svc = ServiceBuilder::new().map(g).build_with_backend(backend).unwrap();
        let req = ClientRequest::new(
            ClientId(0),
            PathQuery::new(NodeId(0), NodeId(143)),
            ProtectionSettings::new(2, 2).unwrap(),
        );
        let resp = svc.process_batch(&[req]).unwrap();
        assert_eq!(resp.results.len(), 1);
    }
}
