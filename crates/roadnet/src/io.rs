//! TLN — a TIGER/Line-like plain-text network exchange format.
//!
//! The paper's obfuscator keeps "a simple road map (e.g., obtained from
//! Tiger/Line)" (§IV). Real TIGER/Line files are unavailable offline, so
//! this module defines a minimal line-oriented format carrying exactly what
//! the system needs — node coordinates and weighted segments — and readers/
//! writers for it. Generated networks can be exported, archived with
//! experiment results, and re-imported bit-exactly (coordinates and weights
//! round-trip through `{:.17e}` formatting).
//!
//! ```text
//! TLN 1 undirected
//! # comment lines and blank lines are ignored
//! N <id> <x> <y>
//! E <a> <b> <weight>
//! ```
//!
//! Node ids must be dense (`0..n`) but may appear in any order; edges may
//! only reference declared ids.

use crate::error::{Result, RoadNetError};
use crate::geo::Point;
use crate::graph::{GraphBuilder, RoadNetwork};
use crate::ids::NodeId;
use std::io::{BufRead, Write};

const MAGIC: &str = "TLN";
const VERSION: &str = "1";

/// Serialize `g` in TLN format.
pub fn write_tln<W: Write>(g: &RoadNetwork, w: &mut W) -> Result<()> {
    let mode = if g.is_directed() { "directed" } else { "undirected" };
    writeln!(w, "{MAGIC} {VERSION} {mode}")?;
    writeln!(w, "# nodes={} edges={}", g.num_nodes(), g.num_edges())?;
    for n in g.nodes() {
        let p = g.point(n);
        writeln!(w, "N {} {:.17e} {:.17e}", n, p.x, p.y)?;
    }
    for e in g.edges() {
        writeln!(w, "E {} {} {:.17e}", e.a, e.b, e.weight)?;
    }
    Ok(())
}

/// Parse a TLN document into a [`RoadNetwork`].
pub fn read_tln<R: BufRead>(r: &mut R) -> Result<RoadNetwork> {
    let mut lines = r.lines().enumerate();

    let (first_no, first) = loop {
        match lines.next() {
            Some((no, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('#') {
                    break (no + 1, t.to_string());
                }
            }
            None => return Err(RoadNetError::Parse { line: 0, message: "empty document".into() }),
        }
    };
    let mut hdr = first.split_whitespace();
    if hdr.next() != Some(MAGIC) || hdr.next() != Some(VERSION) {
        return Err(RoadNetError::Parse {
            line: first_no,
            message: format!("expected header '{MAGIC} {VERSION} <mode>', got '{first}'"),
        });
    }
    let directed = match hdr.next() {
        Some("directed") => true,
        Some("undirected") => false,
        other => {
            return Err(RoadNetError::Parse {
                line: first_no,
                message: format!("expected mode directed|undirected, got {other:?}"),
            });
        }
    };

    let mut points: Vec<Option<Point>> = Vec::new();
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for (no, line) in lines {
        let no = no + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let tag = parts.next().expect("non-empty line has a token");
        let parse_f = |s: Option<&str>, what: &str| -> Result<f64> {
            s.and_then(|v| v.parse::<f64>().ok())
                .ok_or_else(|| RoadNetError::Parse { line: no, message: format!("bad {what}") })
        };
        let parse_u = |s: Option<&str>, what: &str| -> Result<u32> {
            s.and_then(|v| v.parse::<u32>().ok())
                .ok_or_else(|| RoadNetError::Parse { line: no, message: format!("bad {what}") })
        };
        match tag {
            "N" => {
                let id = parse_u(parts.next(), "node id")? as usize;
                let x = parse_f(parts.next(), "x coordinate")?;
                let y = parse_f(parts.next(), "y coordinate")?;
                if points.len() <= id {
                    points.resize(id + 1, None);
                }
                if points[id].is_some() {
                    return Err(RoadNetError::Parse {
                        line: no,
                        message: format!("duplicate node id {id}"),
                    });
                }
                points[id] = Some(Point::new(x, y));
            }
            "E" => {
                let a = parse_u(parts.next(), "edge endpoint")?;
                let b = parse_u(parts.next(), "edge endpoint")?;
                let w = parse_f(parts.next(), "edge weight")?;
                edges.push((a, b, w));
            }
            other => {
                return Err(RoadNetError::Parse {
                    line: no,
                    message: format!("unknown record tag '{other}'"),
                });
            }
        }
        if parts.next().is_some() {
            return Err(RoadNetError::Parse { line: no, message: "trailing tokens".into() });
        }
    }

    let mut b = if directed { GraphBuilder::directed() } else { GraphBuilder::new() };
    b.reserve(points.len(), edges.len());
    for (i, p) in points.iter().enumerate() {
        match p {
            Some(p) => {
                b.add_node(*p)?;
            }
            None => {
                return Err(RoadNetError::Parse {
                    line: 0,
                    message: format!("node ids not dense: id {i} missing"),
                });
            }
        }
    }
    for (a, bb, w) in edges {
        b.add_edge(NodeId(a), NodeId(bb), w)?;
    }
    b.build()
}

/// Write `g` to a file at `path` in TLN format.
pub fn save_tln(g: &RoadNetwork, path: &std::path::Path) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_tln(g, &mut f)?;
    f.flush()?;
    Ok(())
}

/// Read a TLN file from `path`.
pub fn load_tln(path: &std::path::Path) -> Result<RoadNetwork> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read_tln(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GridConfig, grid_network};

    fn round_trip(g: &RoadNetwork) -> RoadNetwork {
        let mut buf = Vec::new();
        write_tln(g, &mut buf).unwrap();
        read_tln(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn round_trip_preserves_structure_exactly() {
        let g = grid_network(&GridConfig { width: 6, height: 5, seed: 11, ..Default::default() })
            .unwrap();
        let h = round_trip(&g);
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        for n in g.nodes() {
            assert_eq!(g.point(n), h.point(n));
        }
        assert_eq!(g.edges(), h.edges());
        assert_eq!(g.is_directed(), h.is_directed());
    }

    #[test]
    fn directed_flag_round_trips() {
        let mut b = GraphBuilder::directed();
        let a = b.add_node(Point::new(0.0, 0.0)).unwrap();
        let c = b.add_node(Point::new(1.0, 1.0)).unwrap();
        b.add_edge(a, c, 2.0).unwrap();
        let g = b.build().unwrap();
        let h = round_trip(&g);
        assert!(h.is_directed());
        assert_eq!(h.num_arcs(), 1);
    }

    #[test]
    fn comments_blanks_and_order_are_tolerated() {
        let doc = "\n# preamble\nTLN 1 undirected\n\nE 0 1 2.5\nN 1 1.0 0.0\n# interleaved\nN 0 0.0 0.0\n";
        let g = read_tln(&mut std::io::Cursor::new(doc)).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges()[0].weight, 2.5);
    }

    #[test]
    fn rejects_bad_header() {
        for doc in ["XYZ 1 undirected\n", "TLN 2 undirected\n", "TLN 1 sideways\n", ""] {
            let err = read_tln(&mut std::io::Cursor::new(doc)).unwrap_err();
            assert!(matches!(err, RoadNetError::Parse { .. }), "doc {doc:?} gave {err}");
        }
    }

    #[test]
    fn rejects_malformed_records() {
        let cases = [
            "TLN 1 undirected\nN 0 0.0\n",                     // missing y
            "TLN 1 undirected\nN 0 0.0 0.0 extra\n",           // trailing token
            "TLN 1 undirected\nQ 0\n",                         // unknown tag
            "TLN 1 undirected\nN 0 a 0.0\n",                   // bad float
            "TLN 1 undirected\nN 0 0 0\nN 0 1 1\n",            // duplicate id
            "TLN 1 undirected\nN 1 0 0\n",                     // non-dense ids
            "TLN 1 undirected\nN 0 0 0\nN 1 1 1\nE 0 5 1.0\n", // edge to unknown node
        ];
        for doc in cases {
            let err = read_tln(&mut std::io::Cursor::new(doc)).unwrap_err();
            assert!(
                matches!(err, RoadNetError::Parse { .. } | RoadNetError::NodeOutOfRange { .. }),
                "doc {doc:?} gave {err}"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("roadnet_tln_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.tln");
        let g = grid_network(&GridConfig { width: 4, height: 4, ..Default::default() }).unwrap();
        save_tln(&g, &path).unwrap();
        let h = load_tln(&path).unwrap();
        assert_eq!(g.edges(), h.edges());
        std::fs::remove_file(&path).ok();
    }
}
