//! Fixed-bucket latency histogram with mergeable tails.
//!
//! The load experiments need p50/p99/p999 over 10⁵–10⁶ samples without
//! keeping (or sorting) every sample. A [`LatencyHistogram`] buckets
//! values linearly — `buckets × bucket_width` of resolution plus one
//! overflow bucket that remembers its maximum — so recording is O(1),
//! memory is fixed, and two histograms recorded independently (per lane,
//! per arrival mix, per shard) [`merge`](LatencyHistogram::merge) into
//! the population histogram exactly: bucket counts are additive, unlike
//! pre-computed percentiles, which do not compose.
//!
//! Quantiles are conservative: [`quantile`](LatencyHistogram::quantile)
//! returns the *upper edge* of the bucket holding the rank-⌈qN⌉ sample
//! (or the observed maximum for the overflow bucket), so a reported p99
//! never understates the true p99 by more than nothing and never
//! overstates it by more than one bucket width.

/// Fixed-bucket histogram of non-negative values (latencies, waits).
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    max: f64,
}

impl LatencyHistogram {
    /// A histogram resolving `[0, buckets × bucket_width)` at
    /// `bucket_width` granularity; values beyond land in the overflow
    /// bucket.
    ///
    /// # Panics
    /// If `bucket_width` is not positive/finite or `buckets` is zero.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0 && bucket_width.is_finite(), "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        LatencyHistogram { bucket_width, counts: vec![0; buckets], overflow: 0, total: 0, max: 0.0 }
    }

    /// Record one sample. Negative or NaN samples count as zero (they
    /// only arise from clock skew in callers and must not poison a
    /// million-sample run). A `+∞` sample is a real tail observation — a
    /// wait that never completed — and lands in the overflow bucket,
    /// driving the observed maximum (and hence tail quantiles) to `+∞`;
    /// lumping it in with the degenerate samples would *understate* the
    /// tail, the one direction a latency report must never err.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_nan() || value < 0.0 { 0.0 } else { value };
        // Float→int casts saturate, so `+∞ / width` indexes past every
        // finite bucket and overflows as required.
        let idx = (v / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        if v > self.max {
            self.max = v;
        }
        self.total += 1;
    }

    /// Fold another histogram of the same shape into this one.
    ///
    /// # Panics
    /// If the two histograms differ in bucket width or count — merging
    /// mismatched grids would silently misplace every sample.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.bucket_width, other.bucket_width, "bucket widths differ");
        assert_eq!(self.counts.len(), other.counts.len(), "bucket counts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The value at quantile `q ∈ (0, 1]`: the upper edge of the bucket
    /// containing the rank-⌈qN⌉ sample, or the observed maximum when
    /// that sample overflowed the grid. Returns 0 for an empty
    /// histogram.
    ///
    /// # Panics
    /// If `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (i as f64 + 1.0) * self.bucket_width;
            }
        }
        self.max
    }

    /// Median (see [`LatencyHistogram::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the tail the closed-loop load harness exists
    /// to measure.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_report_bucket_upper_edges() {
        let mut h = LatencyHistogram::new(1.0, 10);
        for v in [0.2, 0.4, 1.5, 2.5, 8.9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        // rank(0.5 · 5) = 3 → third sample (1.5) sits in bucket [1, 2).
        assert_eq!(h.p50(), 2.0);
        assert_eq!(h.quantile(1.0), 9.0);
        assert_eq!(h.quantile(0.2), 1.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new(0.5, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.p999(), 0.0);
    }

    #[test]
    fn overflow_bucket_returns_the_observed_maximum() {
        let mut h = LatencyHistogram::new(1.0, 4);
        h.record(1.0);
        h.record(100.0);
        h.record(250.0);
        assert_eq!(h.quantile(1.0), 250.0);
        assert_eq!(h.p50(), 250.0, "rank 2 of 3 overflows; cap is the honest answer");
        assert_eq!(h.max(), 250.0);
    }

    #[test]
    fn degenerate_samples_count_as_zero_not_poison() {
        let mut h = LatencyHistogram::new(1.0, 4);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(0.5);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), 1.0);
    }

    #[test]
    fn positive_infinity_lands_in_overflow_not_bucket_zero() {
        let mut h = LatencyHistogram::new(1.0, 4);
        h.record(0.5);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 2);
        // The infinite sample is the tail, not a zero: the top quantile
        // reports it instead of pretending the slowest wait was sub-width.
        assert_eq!(h.quantile(1.0), f64::INFINITY);
        assert_eq!(h.max(), f64::INFINITY);
        // The fast half of the distribution is unaffected.
        assert_eq!(h.p50(), 1.0);
        // Merging propagates the overflowed tail.
        let mut other = LatencyHistogram::new(1.0, 4);
        other.record(0.2);
        other.merge(&h);
        assert_eq!(other.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let samples_a = [0.1, 0.9, 3.3, 7.7, 42.0];
        let samples_b = [0.2, 2.2, 2.3, 99.0];
        let mut merged = LatencyHistogram::new(0.5, 16);
        let mut b = merged.clone();
        let mut all = merged.clone();
        for v in samples_a {
            merged.record(v);
            all.record(v);
        }
        for v in samples_b {
            b.record(v);
            all.record(v);
        }
        merged.merge(&b);
        assert_eq!(merged, all, "merge must equal single-histogram recording");
        for q in [0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), all.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "bucket widths differ")]
    fn merging_mismatched_grids_panics() {
        let mut a = LatencyHistogram::new(1.0, 4);
        a.merge(&LatencyHistogram::new(2.0, 4));
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        // 1000 samples at exactly their index in milliseconds-as-seconds.
        let mut h = LatencyHistogram::new(0.001, 2000);
        for i in 0..1000 {
            h.record(i as f64 * 0.001);
        }
        let p99 = h.p99();
        assert!((p99 - 0.990).abs() < 0.002, "p99 {p99}");
        let p999 = h.p999();
        assert!((p999 - 0.999).abs() < 0.002, "p999 {p999}");
        assert!(h.p50() <= p99 && p99 <= p999);
    }
}
