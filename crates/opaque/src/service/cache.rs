//! The shard-local shortest-path-tree cache.
//!
//! Lemma 1 makes spanning trees — not paths — the unit of server work,
//! and obfuscation multiplies the tree count by `|S|·|T|` factors. Under
//! hotspot/commuter workloads (see `crates/workload`) many queries share
//! roots, so the server keeps recomputing identical trees. [`TreeCache`]
//! is the capacity-bounded, exact-LRU store of recorded sweeps
//! ([`pathsearch::SweepTrace`]) a [`crate::server::DirectionsServer`]
//! consults through the adopt-or-grow entry point
//! ([`pathsearch::msmd_in_cached`]): a query whose root already has a
//! cached tree deep enough for its goal skips the Dijkstra sweep
//! entirely; partial trees carry their settled radius implicitly (the
//! recorded prefix) and are only reused when the early-termination rule
//! is provably unaffected.
//!
//! Entries are keyed by `(map_epoch, root, direction, policy bits)`:
//!
//! * **map_epoch** — bumped by [`crate::server::DirectionsServer::swap_map`];
//!   entries of older epochs can never be returned (and the swap clears
//!   them outright — the key is defence in depth); live-traffic weight
//!   updates instead go through [`TreeCache::invalidate_edges`], which
//!   keeps the epoch (the topology did not change) and surgically evicts
//!   only the traces whose recorded sweep touched an updated edge;
//! * **root** — the node the sweep grew from;
//! * **direction** — the sweep's arc orientation
//!   ([`pathsearch::SweepDirection`]; always `Forward` today, `Backward`
//!   reserved for reverse-arc sweeps on directed views);
//! * **policy bits** — the sweep class of the server's
//!   [`pathsearch::SharingPolicy`]: `None`/`PerSource`/`Auto` all drive
//!   the same single-tree sweep machine and share entries; a future
//!   engine whose trees grow differently must not alias them.
//!
//! The cache is **shard-local** on purpose: the parallel service layer
//! pins one [`DirectionsServer`] (arena + cache) per worker thread, so
//! the hot path takes no lock and [`crate::service::ExecutionPolicy`]
//! stays a pure throughput knob. Correctness does not depend on which
//! shard a unit lands on, because adoption replays counters
//! byte-identical to the sweep it skips — `CachePolicy::Lru` produces
//! byte-identical [`crate::BatchReport`]s to `CachePolicy::Off`, the
//! invariant `tests/cache_equivalence.rs` proves.
//!
//! Shard-local does mean the hit rate is hostage to *placement*: under
//! round-robin rotation a popular root visits every shard, so an N-shard
//! fleet pays up to N cold misses per root and N cache slots for one
//! tree. Region-owned placement
//! ([`crate::PartitionPolicy::RegionOwned`]) is the payoff for this
//! design — all queries rooted in a region land on the shard owning it,
//! so each root is grown (and stored) once fleet-wide and the per-shard
//! LRU holds its own region's hot roots instead of a shuffled sample of
//! everyone's. The `e18_partition` experiment and the partition stress
//! test measure exactly that gap; the hit/miss counters stay off the
//! serialized report, so placement remains report-byte-invisible while
//! the physical hit rate moves.
//!
//! [`DirectionsServer`]: crate::server::DirectionsServer

use crate::error::{OpaqueError, Result};
use pathsearch::{SharingPolicy, SweepDirection, SweepTrace, TreeStore};
use roadnet::NodeId;
use std::collections::HashMap;

/// Whether (and how) a backend server caches shortest-path trees.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CachePolicy {
    /// No cache: every tree is grown for real (the historical behavior
    /// and the reference the cache-equivalence harness compares against).
    #[default]
    Off,
    /// A shard-local exact-LRU [`TreeCache`] holding at most `trees`
    /// recorded sweeps per shard.
    Lru {
        /// Per-shard capacity in trees; must be at least 1.
        trees: usize,
    },
}

impl CachePolicy {
    /// Check the policy is satisfiable.
    ///
    /// # Errors
    /// [`OpaqueError::InvalidConfig`] for a zero-capacity LRU (mirroring
    /// the zero-thread worker-pool rejection).
    pub fn validate(&self) -> Result<()> {
        match self {
            CachePolicy::Off => Ok(()),
            CachePolicy::Lru { trees: 0 } => Err(OpaqueError::InvalidConfig {
                reason: "cache policy: an LRU tree cache needs capacity for at least one tree"
                    .to_string(),
            }),
            CachePolicy::Lru { .. } => Ok(()),
        }
    }

    /// Short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            CachePolicy::Off => "off".to_string(),
            CachePolicy::Lru { trees } => format!("lru({trees})"),
        }
    }
}

/// Full cache key; see the module docs for the role of each component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct TreeKey {
    map_epoch: u64,
    root: u32,
    direction: SweepDirection,
    policy_bits: u8,
}

/// One cached sweep with its recency stamp.
#[derive(Debug)]
struct Entry {
    trace: SweepTrace,
    last_used: u64,
}

/// Capacity-bounded exact-LRU store of recorded shortest-path trees.
///
/// Owned by one [`crate::server::DirectionsServer`] (one shard); never
/// shared across threads. Hit/miss counters accumulate monotonically —
/// the server folds their deltas into [`crate::ServerStats`] per query.
#[derive(Debug)]
pub struct TreeCache {
    capacity: usize,
    map_epoch: u64,
    policy_bits: u8,
    entries: HashMap<TreeKey, Entry>,
    /// Monotone use counter driving exact-LRU eviction (capacities are
    /// small enough that a min-scan on eviction beats maintaining an
    /// intrusive list).
    tick: u64,
    hits: u64,
    misses: u64,
}

// The parallel service layer moves one cache per worker thread; like the
// arena it sits next to, it must stay Send.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TreeCache>();
};

/// The sweep class of a sharing policy: policies that drive the same
/// single-tree sweep machine may share cache entries.
fn sweep_class(policy: SharingPolicy) -> u8 {
    match policy {
        // All three are sequences of plain `run_in` sweeps.
        SharingPolicy::None | SharingPolicy::PerSource | SharingPolicy::Auto => 0,
        // The interleaved MSMD engine does not decompose into per-root
        // traces and never consults the cache — but *plain* queries on a
        // SharedFrontier server still do, so this class holds their
        // single-pair sweeps. The separate bit guarantees no aliasing if
        // the frontier engine ever starts extracting its own trees.
        SharingPolicy::SharedFrontier => 1,
    }
}

impl TreeCache {
    /// A cache holding at most `trees` recorded sweeps, serving a server
    /// that evaluates under `policy`, starting at map epoch 0.
    ///
    /// # Panics
    /// Panics on zero capacity — [`CachePolicy::validate`] rejects it at
    /// configuration time.
    pub fn new(trees: usize, policy: SharingPolicy) -> Self {
        assert!(trees >= 1, "tree cache must hold at least one tree");
        TreeCache {
            capacity: trees,
            map_epoch: 0,
            policy_bits: sweep_class(policy),
            entries: HashMap::with_capacity(trees.min(1024)),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in trees.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of trees currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no trees.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The map epoch entries are currently keyed under.
    pub fn map_epoch(&self) -> u64 {
        self.map_epoch
    }

    /// Cumulative `(hits, misses)` since construction. Monotone — callers
    /// wanting per-query counts take deltas around the call.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Fraction of lookups served from the cache (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 { 0.0 } else { self.hits as f64 / total as f64 }
    }

    /// Drop every entry and move to `map_epoch` — the map-swap
    /// invalidation hook. Entries are both cleared *and* unreachable by
    /// key afterwards; the hit/miss counters are not reset (they describe
    /// the cache's lifetime, like server counters).
    pub fn invalidate(&mut self, map_epoch: u64) {
        self.entries.clear();
        self.map_epoch = map_epoch;
    }

    /// Surgical invalidation for a live-traffic weight update: evict only
    /// the traces whose recorded sweep touched one of the updated edges
    /// (each given by its endpoint pair — see
    /// [`pathsearch::SweepTrace::touches_any`] for the soundness
    /// argument). Untouched traces replay byte-identically on the updated
    /// map, so they stay; the epoch does not move (the topology did not
    /// change), and lifetime counters are untouched.
    pub fn invalidate_edges(&mut self, endpoints: &[(NodeId, NodeId)]) {
        if endpoints.is_empty() {
            return;
        }
        // lint: allow(hash-iter) — retain with a pure per-entry
        // predicate: which traces survive is order-independent, and the
        // map stays keyed afterwards.
        self.entries.retain(|_, e| !e.trace.touches_any(endpoints));
    }

    fn key(&self, root: NodeId, direction: SweepDirection) -> TreeKey {
        TreeKey {
            map_epoch: self.map_epoch,
            root: root.0,
            direction,
            policy_bits: self.policy_bits,
        }
    }
}

impl TreeStore for TreeCache {
    fn lookup(&mut self, root: NodeId, direction: SweepDirection) -> Option<&SweepTrace> {
        self.tick += 1;
        let tick = self.tick;
        let key = self.key(root, direction);
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = tick;
                Some(&e.trace)
            }
            None => None,
        }
    }

    fn store(&mut self, root: NodeId, direction: SweepDirection, trace: SweepTrace) {
        self.tick += 1;
        let key = self.key(root, direction);
        if let Some(e) = self.entries.get_mut(&key) {
            // Sweeps from one root are prefixes of each other: keep the
            // deeper one, it answers strictly more goals.
            if trace.len() >= e.trace.len() {
                e.trace = trace;
            }
            e.last_used = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            // lint: allow(hash-iter) — `last_used` ticks are unique
            // (every lookup/store bumps the monotone counter before
            // assigning it to exactly one entry), so the min is unique
            // and iteration order cannot pick a different victim.
            let victim = self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k);
            if let Some(victim) = victim {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, Entry { trace, last_used: self.tick });
    }

    fn note_hit(&mut self) {
        self.hits += 1;
    }

    fn note_miss(&mut self) {
        self.misses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathsearch::{Goal, SearchArena, run_in_traced};
    use roadnet::generators::{GridConfig, grid_network};

    fn grid() -> roadnet::RoadNetwork {
        grid_network(&GridConfig { width: 10, height: 10, seed: 4, ..Default::default() }).unwrap()
    }

    fn trace_from(g: &roadnet::RoadNetwork, root: u32) -> SweepTrace {
        let mut arena = SearchArena::new();
        run_in_traced(&mut arena, g, NodeId(root), &Goal::AllNodes).1
    }

    #[test]
    fn policy_validation_and_names() {
        assert!(CachePolicy::Off.validate().is_ok());
        assert!(CachePolicy::Lru { trees: 8 }.validate().is_ok());
        assert!(matches!(
            CachePolicy::Lru { trees: 0 }.validate(),
            Err(OpaqueError::InvalidConfig { .. })
        ));
        assert_eq!(CachePolicy::Off.name(), "off");
        assert_eq!(CachePolicy::Lru { trees: 8 }.name(), "lru(8)");
        assert_eq!(CachePolicy::default(), CachePolicy::Off);
    }

    #[test]
    fn policy_round_trips_through_serde() {
        for policy in [CachePolicy::Off, CachePolicy::Lru { trees: 32 }] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: CachePolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, policy);
        }
    }

    #[test]
    fn lru_evicts_the_least_recently_used_tree() {
        let g = grid();
        let mut cache = TreeCache::new(2, SharingPolicy::PerSource);
        cache.store(NodeId(0), SweepDirection::Forward, trace_from(&g, 0));
        cache.store(NodeId(1), SweepDirection::Forward, trace_from(&g, 1));
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.lookup(NodeId(0), SweepDirection::Forward).is_some());
        cache.store(NodeId(2), SweepDirection::Forward, trace_from(&g, 2));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(NodeId(0), SweepDirection::Forward).is_some());
        assert!(cache.lookup(NodeId(1), SweepDirection::Forward).is_none(), "evicted");
        assert!(cache.lookup(NodeId(2), SweepDirection::Forward).is_some());
    }

    #[test]
    fn store_keeps_the_deeper_sweep() {
        let g = grid();
        let mut cache = TreeCache::new(4, SharingPolicy::PerSource);
        let mut arena = SearchArena::new();
        let (_, shallow) = run_in_traced(&mut arena, &g, NodeId(0), &Goal::Single(NodeId(11)));
        let deep = trace_from(&g, 0);
        assert!(shallow.len() < deep.len());
        cache.store(NodeId(0), SweepDirection::Forward, deep.clone());
        cache.store(NodeId(0), SweepDirection::Forward, shallow);
        let kept = cache.lookup(NodeId(0), SweepDirection::Forward).unwrap();
        assert_eq!(kept.len(), deep.len(), "a shallower re-store must not clobber a deeper tree");
    }

    #[test]
    fn invalidation_moves_the_epoch_and_drops_entries() {
        let g = grid();
        let mut cache = TreeCache::new(4, SharingPolicy::PerSource);
        cache.store(NodeId(0), SweepDirection::Forward, trace_from(&g, 0));
        cache.note_hit();
        assert_eq!(cache.map_epoch(), 0);
        cache.invalidate(1);
        assert_eq!(cache.map_epoch(), 1);
        assert!(cache.is_empty());
        assert!(cache.lookup(NodeId(0), SweepDirection::Forward).is_none());
        assert_eq!(cache.counters(), (1, 0), "lifetime counters survive invalidation");
        // New entries land under the new epoch and resolve normally.
        cache.store(NodeId(0), SweepDirection::Forward, trace_from(&g, 0));
        assert!(cache.lookup(NodeId(0), SweepDirection::Forward).is_some());
    }

    #[test]
    fn hit_rate_reflects_counters() {
        let mut cache = TreeCache::new(2, SharingPolicy::PerSource);
        assert_eq!(cache.hit_rate(), 0.0);
        cache.note_miss();
        cache.note_hit();
        cache.note_hit();
        cache.note_hit();
        assert!((cache.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(cache.counters(), (3, 1));
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_capacity_panics() {
        let _ = TreeCache::new(0, SharingPolicy::PerSource);
    }

    #[test]
    fn invalidate_edges_evicts_only_touched_traces() {
        let g = grid();
        let mut cache = TreeCache::new(4, SharingPolicy::PerSource);
        // A complete trace (settles everything) and a shallow partial one.
        let full = trace_from(&g, 0);
        let mut arena = SearchArena::new();
        let (_, partial) = run_in_traced(&mut arena, &g, NodeId(50), &Goal::Single(NodeId(51)));
        assert!(!partial.is_complete());
        cache.store(NodeId(0), SweepDirection::Forward, full);
        cache.store(NodeId(50), SweepDirection::Forward, partial.clone());

        // An edge both of whose endpoints lie outside the partial sweep's
        // settled prefix: only the complete trace is touched.
        let far_edge = g
            .edges()
            .iter()
            .find(|e| partial.position(e.a).is_none() && partial.position(e.b).is_none())
            .copied()
            .expect("a shallow sweep leaves most edges unsettled");
        cache.invalidate_edges(&[(far_edge.a, far_edge.b)]);
        assert!(cache.lookup(NodeId(0), SweepDirection::Forward).is_none(), "full trace touched");
        assert!(
            cache.lookup(NodeId(50), SweepDirection::Forward).is_some(),
            "untouched partial trace survives"
        );

        // Epoch never moves: this is a weight update, not a topology swap.
        assert_eq!(cache.map_epoch(), 0);
        // An empty update set is a no-op.
        cache.invalidate_edges(&[]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn repeated_invalidate_restore_cycles_never_resurrect_entries() {
        let g = grid();
        let mut cache = TreeCache::new(4, SharingPolicy::PerSource);
        let edge = g.edge(roadnet::EdgeId(0));
        for round in 0..5u64 {
            // Surgical cycle: store, evict via a touched edge, re-store.
            cache.store(NodeId(0), SweepDirection::Forward, trace_from(&g, 0));
            assert!(cache.lookup(NodeId(0), SweepDirection::Forward).is_some());
            cache.invalidate_edges(&[(edge.a, edge.b)]);
            assert!(
                cache.lookup(NodeId(0), SweepDirection::Forward).is_none(),
                "round {round}: evicted trace must not resurrect"
            );
            // Whole-map cycle interleaved: epoch bump also clears.
            cache.store(NodeId(0), SweepDirection::Forward, trace_from(&g, 0));
            cache.invalidate(round + 1);
            assert!(cache.lookup(NodeId(0), SweepDirection::Forward).is_none());
            assert_eq!(cache.map_epoch(), round + 1);
        }
        // The cache still works after the churn.
        cache.store(NodeId(3), SweepDirection::Forward, trace_from(&g, 3));
        assert!(cache.lookup(NodeId(3), SweepDirection::Forward).is_some());
    }

    #[test]
    fn adjacent_tick_stamps_evict_deterministically() {
        let g = grid();
        let mut cache = TreeCache::new(2, SharingPolicy::PerSource);
        // Two stores back-to-back: stamps are adjacent ticks (1 and 2).
        cache.store(NodeId(0), SweepDirection::Forward, trace_from(&g, 0));
        cache.store(NodeId(1), SweepDirection::Forward, trace_from(&g, 1));
        // A third store at capacity must evict the *strictly* older stamp
        // even though the two differ by a single tick.
        cache.store(NodeId(2), SweepDirection::Forward, trace_from(&g, 2));
        assert!(cache.lookup(NodeId(0), SweepDirection::Forward).is_none(), "oldest tick evicted");
        assert!(cache.lookup(NodeId(1), SweepDirection::Forward).is_some());
        assert!(cache.lookup(NodeId(2), SweepDirection::Forward).is_some());

        // After surgical eviction the survivor's stamp still orders
        // correctly against new entries: the lookups above re-stamped 1
        // and 2, so storing two more evicts 1 (now the oldest).
        let edge = g.edge(roadnet::EdgeId(0));
        cache.invalidate_edges(&[(edge.a, edge.b)]);
        assert!(cache.is_empty(), "complete traces touch every edge");
        cache.store(NodeId(4), SweepDirection::Forward, trace_from(&g, 4));
        cache.store(NodeId(5), SweepDirection::Forward, trace_from(&g, 5));
        cache.store(NodeId(6), SweepDirection::Forward, trace_from(&g, 6));
        assert!(cache.lookup(NodeId(4), SweepDirection::Forward).is_none());
        assert!(cache.lookup(NodeId(5), SweepDirection::Forward).is_some());
        assert!(cache.lookup(NodeId(6), SweepDirection::Forward).is_some());
    }
}
