//! Uniform-grid spatial index over node coordinates.
//!
//! The OPAQUE obfuscator needs geometric primitives over the map it keeps
//! (§IV: "finding fake sources and destinations for path query obfuscation
//! requires the knowledge of the underlying road network"): nearest node to
//! a point, all nodes within a radius, and — the workhorse of the cost-aware
//! fake-selection strategy — sampling nodes from a distance ring around a
//! true endpoint.
//!
//! A uniform grid is the right tool here: node distributions from the
//! generators are roughly uniform, queries are local, and build time is
//! linear.

use crate::geo::{BoundingBox, Point};
use crate::graph::RoadNetwork;
use crate::ids::NodeId;

/// Uniform-grid index over a fixed set of points.
#[derive(Clone, Debug)]
pub struct SpatialIndex {
    bbox: BoundingBox,
    cell: f64,
    cols: usize,
    rows: usize,
    /// CSR layout: `starts[c]..starts[c+1]` indexes `entries` for cell `c`.
    starts: Vec<u32>,
    entries: Vec<NodeId>,
    points: Vec<Point>,
}

impl SpatialIndex {
    /// Index every node of `g`, targeting ~2 points per cell.
    pub fn build(g: &RoadNetwork) -> Self {
        Self::from_points(g.points().to_vec())
    }

    /// Index an explicit point set; ids are positions in `points`.
    pub fn from_points(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "spatial index needs at least one point");
        let mut bbox = BoundingBox::of_points(points.iter().copied());
        // Degenerate boxes (single point / collinear) get a tiny margin so
        // cell math stays well-defined.
        if bbox.width() == 0.0 {
            bbox.max.x += 1.0;
        }
        if bbox.height() == 0.0 {
            bbox.max.y += 1.0;
        }
        let target_cells = (points.len() as f64 / 2.0).max(1.0);
        let aspect = bbox.width() / bbox.height();
        let rows = (target_cells / aspect).sqrt().ceil().max(1.0) as usize;
        let cols = (target_cells / rows as f64).ceil().max(1.0) as usize;
        let cell = (bbox.width() / cols as f64).max(bbox.height() / rows as f64);
        // Recompute grid extents with a square cell so ring geometry is easy.
        let cols = (bbox.width() / cell).ceil().max(1.0) as usize;
        let rows = (bbox.height() / cell).ceil().max(1.0) as usize;

        let cell_of = |p: Point| -> usize {
            let cx = (((p.x - bbox.min.x) / cell) as usize).min(cols - 1);
            let cy = (((p.y - bbox.min.y) / cell) as usize).min(rows - 1);
            cy * cols + cx
        };

        let mut counts = vec![0u32; cols * rows + 1];
        for p in &points {
            counts[cell_of(*p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = starts.clone();
        let mut entries = vec![NodeId(0); points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(*p);
            entries[cursor[c] as usize] = NodeId::from_index(i);
            cursor[c] += 1;
        }

        SpatialIndex { bbox, cell, cols, rows, starts, entries, points }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the index holds no points (cannot occur via constructors).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Coordinate of an indexed node.
    pub fn point(&self, n: NodeId) -> Point {
        self.points[n.index()]
    }

    fn cell_coords(&self, p: Point) -> (isize, isize) {
        let cx = ((p.x - self.bbox.min.x) / self.cell).floor() as isize;
        let cy = ((p.y - self.bbox.min.y) / self.cell).floor() as isize;
        (cx.clamp(0, self.cols as isize - 1), cy.clamp(0, self.rows as isize - 1))
    }

    fn cell_entries(&self, cx: isize, cy: isize) -> &[NodeId] {
        if cx < 0 || cy < 0 || cx >= self.cols as isize || cy >= self.rows as isize {
            return &[];
        }
        let c = cy as usize * self.cols + cx as usize;
        let lo = self.starts[c] as usize;
        let hi = self.starts[c + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Visit every cell on the square ring at Chebyshev distance `d` from
    /// `(cx, cy)`.
    fn for_ring_cells(&self, cx: isize, cy: isize, d: isize, f: &mut dyn FnMut(&[NodeId])) {
        if d == 0 {
            f(self.cell_entries(cx, cy));
            return;
        }
        for x in (cx - d)..=(cx + d) {
            f(self.cell_entries(x, cy - d));
            f(self.cell_entries(x, cy + d));
        }
        for y in (cy - d + 1)..(cy + d) {
            f(self.cell_entries(cx - d, y));
            f(self.cell_entries(cx + d, y));
        }
    }

    /// The indexed node nearest to `p` (ties broken by lower id).
    pub fn nearest(&self, p: Point) -> NodeId {
        let (cx, cy) = self.cell_coords(p);
        let max_d = self.cols.max(self.rows) as isize;
        let mut best: Option<(f64, NodeId)> = None;
        let mut d = 0isize;
        loop {
            self.for_ring_cells(cx, cy, d, &mut |ids| {
                for &id in ids {
                    let dist = p.distance(self.points[id.index()]);
                    let better = match best {
                        None => true,
                        Some((bd, bid)) => dist < bd || (dist == bd && id < bid),
                    };
                    if better {
                        best = Some((dist, id));
                    }
                }
            });
            // Once a candidate exists, any point in rings beyond
            // `best_dist / cell + 1` must be farther; stop there.
            if let Some((bd, _)) = best {
                if (d as f64) * self.cell > bd || d >= max_d {
                    break;
                }
            }
            d += 1;
            if d > max_d && best.is_some() {
                break;
            }
        }
        best.expect("index is non-empty").1
    }

    /// All nodes with distance to `p` in `[r_min, r_max]`.
    pub fn in_ring(&self, p: Point, r_min: f64, r_max: f64) -> Vec<NodeId> {
        assert!(r_min >= 0.0 && r_max >= r_min, "invalid ring radii");
        let (cx, cy) = self.cell_coords(p);
        let d_max = (r_max / self.cell).ceil() as isize + 1;
        let max_d = self.cols.max(self.rows) as isize;
        let mut out = Vec::new();
        for d in 0..=d_max.min(max_d) {
            self.for_ring_cells(cx, cy, d, &mut |ids| {
                for &id in ids {
                    let dist = p.distance(self.points[id.index()]);
                    if dist >= r_min && dist <= r_max {
                        out.push(id);
                    }
                }
            });
        }
        out
    }

    /// All nodes within `radius` of `p`.
    pub fn within_radius(&self, p: Point, radius: f64) -> Vec<NodeId> {
        self.in_ring(p, 0.0, radius)
    }

    /// The `k` nearest nodes to `p`, closest first.
    pub fn k_nearest(&self, p: Point, k: usize) -> Vec<NodeId> {
        if k == 0 {
            return Vec::new();
        }
        let (cx, cy) = self.cell_coords(p);
        let max_d = self.cols.max(self.rows) as isize;
        // (distance, id) max-heap via sorted Vec; k is small in practice.
        let mut best: Vec<(f64, NodeId)> = Vec::with_capacity(k + 1);
        let mut d = 0isize;
        loop {
            self.for_ring_cells(cx, cy, d, &mut |ids| {
                for &id in ids {
                    let dist = p.distance(self.points[id.index()]);
                    let pos = best.partition_point(|(bd, _)| *bd <= dist);
                    best.insert(pos, (dist, id));
                    if best.len() > k {
                        best.pop();
                    }
                }
            });
            let have_k = best.len() == k.min(self.points.len());
            if have_k {
                let kth = best.last().expect("non-empty").0;
                if (d as f64) * self.cell > kth || d >= max_d {
                    break;
                }
            } else if d >= max_d {
                break;
            }
            d += 1;
        }
        best.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn grid_points(n: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for y in 0..n {
            for x in 0..n {
                pts.push(Point::new(x as f64, y as f64));
            }
        }
        pts
    }

    fn brute_nearest(pts: &[Point], p: Point) -> NodeId {
        let mut best = (f64::INFINITY, NodeId(0));
        for (i, q) in pts.iter().enumerate() {
            let d = p.distance(*q);
            if d < best.0 {
                best = (d, NodeId::from_index(i));
            }
        }
        best.1
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = grid_points(10);
        let idx = SpatialIndex::from_points(pts.clone());
        for probe in [
            Point::new(0.2, 0.2),
            Point::new(5.4, 7.6),
            Point::new(9.9, 0.1),
            Point::new(-3.0, -3.0),
            Point::new(20.0, 20.0),
            Point::new(4.5, 4.49),
        ] {
            assert_eq!(idx.nearest(probe), brute_nearest(&pts, probe), "probe {probe}");
        }
    }

    #[test]
    fn ring_query_matches_brute_force() {
        let pts = grid_points(12);
        let idx = SpatialIndex::from_points(pts.clone());
        let center = Point::new(5.5, 5.5);
        let (rmin, rmax) = (2.0, 4.0);
        let mut got = idx.in_ring(center, rmin, rmax);
        got.sort();
        let mut want: Vec<NodeId> = pts
            .iter()
            .enumerate()
            .filter(|(_, q)| {
                let d = center.distance(**q);
                d >= rmin && d <= rmax
            })
            .map(|(i, _)| NodeId::from_index(i))
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn within_radius_is_ring_from_zero() {
        let pts = grid_points(8);
        let idx = SpatialIndex::from_points(pts);
        let c = Point::new(3.0, 3.0);
        let mut a = idx.within_radius(c, 2.5);
        let mut b = idx.in_ring(c, 0.0, 2.5);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn k_nearest_ordering_and_size() {
        let pts = grid_points(9);
        let idx = SpatialIndex::from_points(pts.clone());
        let probe = Point::new(4.1, 4.1);
        let got = idx.k_nearest(probe, 5);
        assert_eq!(got.len(), 5);
        // Distances must be non-decreasing and must match brute force set.
        let dists: Vec<f64> = got.iter().map(|n| probe.distance(pts[n.index()])).collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let mut all: Vec<(f64, NodeId)> = pts
            .iter()
            .enumerate()
            .map(|(i, q)| (probe.distance(*q), NodeId::from_index(i)))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!((dists[4] - all[4].0).abs() < 1e-12);
    }

    #[test]
    fn k_nearest_with_k_larger_than_points() {
        let pts = grid_points(2); // 4 points
        let idx = SpatialIndex::from_points(pts);
        assert_eq!(idx.k_nearest(Point::new(0.0, 0.0), 10).len(), 4);
        assert!(idx.k_nearest(Point::new(0.0, 0.0), 0).is_empty());
    }

    #[test]
    fn single_point_index_works() {
        let idx = SpatialIndex::from_points(vec![Point::new(2.0, 3.0)]);
        assert_eq!(idx.nearest(Point::new(100.0, -7.0)), NodeId(0));
        assert_eq!(idx.within_radius(Point::new(2.0, 3.0), 0.1), vec![NodeId(0)]);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn collinear_points_work() {
        // Zero-height bounding box exercises the degenerate-box margin.
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i as f64, 5.0)).collect();
        let idx = SpatialIndex::from_points(pts.clone());
        assert_eq!(idx.nearest(Point::new(7.4, 5.0)), NodeId(7));
        assert_eq!(idx.within_radius(Point::new(10.0, 5.0), 1.5).len(), 3);
    }

    #[test]
    fn build_from_network() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0)).unwrap();
        let c = b.add_node(Point::new(10.0, 0.0)).unwrap();
        b.add_edge(a, c, 10.0).unwrap();
        let g = b.build().unwrap();
        let idx = SpatialIndex::build(&g);
        assert_eq!(idx.nearest(Point::new(9.0, 1.0)), c);
    }
}
