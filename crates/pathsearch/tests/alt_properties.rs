//! Property tests for ALT: landmark bounds must be admissible *and*
//! consistent on arbitrary undirected graphs, and the search must remain
//! exact.

use pathsearch::{AltPreprocessing, alt, shortest_distance};
use proptest::prelude::*;
use roadnet::{GraphBuilder, GraphView, NodeId, Point, RoadNetwork};

fn arb_connected(max_nodes: usize) -> impl Strategy<Value = RoadNetwork> {
    (2..max_nodes)
        .prop_flat_map(|n| {
            let coords = proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0), n);
            let parents = proptest::collection::vec(proptest::num::u32::ANY, n - 1);
            let extra =
                proptest::collection::vec((0..n as u32, 0..n as u32, 0.5f64..20.0), 0..2 * n);
            (coords, parents, extra)
        })
        .prop_map(|(coords, parents, extra)| {
            let mut b = GraphBuilder::new();
            for (x, y) in &coords {
                b.add_node(Point::new(*x, *y)).expect("finite");
            }
            let n = coords.len();
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = (*p as usize) % child;
                b.add_edge(NodeId::from_index(parent), NodeId::from_index(child), 1.0)
                    .expect("tree edge");
            }
            for (a, c, w) in extra {
                let (a, c) = (a as usize % n, c as usize % n);
                if a != c {
                    b.add_edge(NodeId::from_index(a), NodeId::from_index(c), w).expect("edge");
                }
            }
            b.build().expect("non-empty")
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn landmark_bounds_are_admissible(
        g in arb_connected(25),
        landmarks in 1usize..6,
        a_raw in 0u32..25,
        b_raw in 0u32..25,
    ) {
        let n = g.num_nodes() as u32;
        let (a, b) = (NodeId(a_raw % n), NodeId(b_raw % n));
        let pre = AltPreprocessing::build(&g, landmarks.min(g.num_nodes()));
        let truth = shortest_distance(&g, a, b).expect("connected by construction");
        let bound = pre.lower_bound(a, b);
        prop_assert!(bound <= truth + 1e-9, "bound {bound} > distance {truth}");
        prop_assert!(bound >= 0.0);
        // Symmetry of the bound on undirected graphs.
        prop_assert!((bound - pre.lower_bound(b, a)).abs() < 1e-9);
    }

    #[test]
    fn landmark_bounds_are_consistent(
        g in arb_connected(20),
        landmarks in 1usize..5,
        t_raw in 0u32..20,
    ) {
        // Consistency: h(u) ≤ w(u,v) + h(v) for every arc — the property
        // the A* stale-entry check relies on.
        let n = g.num_nodes() as u32;
        let t = NodeId(t_raw % n);
        let pre = AltPreprocessing::build(&g, landmarks.min(g.num_nodes()));
        for u in g.nodes() {
            let hu = pre.lower_bound(u, t);
            let mut ok = true;
            g.for_each_arc(u, &mut |v, w| {
                let hv = pre.lower_bound(v, t);
                if hu > w + hv + 1e-9 {
                    ok = false;
                }
            });
            prop_assert!(ok, "inconsistent heuristic at {u}");
        }
    }

    #[test]
    fn alt_is_exact(
        g in arb_connected(25),
        landmarks in 1usize..6,
        a_raw in 0u32..25,
        b_raw in 0u32..25,
    ) {
        let n = g.num_nodes() as u32;
        let (a, b) = (NodeId(a_raw % n), NodeId(b_raw % n));
        let pre = AltPreprocessing::build(&g, landmarks.min(g.num_nodes()));
        let (path, stats) = alt(&g, &pre, a, b);
        let truth = shortest_distance(&g, a, b).expect("connected");
        let path = path.expect("connected");
        prop_assert!((path.distance() - truth).abs() < 1e-9);
        prop_assert!(path.verify(&g, 1e-9));
        prop_assert!(stats.settled as usize <= g.num_nodes());
    }
}
