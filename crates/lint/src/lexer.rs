//! A hand-rolled Rust lexer — just enough of the language to walk real
//! source safely.
//!
//! The rules in this crate are token-pattern matchers, so the one job of
//! the lexer is to never confuse code with non-code: `unwrap(` inside a
//! raw string, `unsafe` inside a comment, or a `//` sequence inside a
//! string literal must all land in non-code tokens. Everything else is
//! deliberately simple: keywords are ordinary [`TokKind::Ident`] tokens,
//! numbers are one blob, and multi-character operators arrive as single
//! [`TokKind::Punct`] characters — the rule engine matches sequences, so
//! it never needs `->` or `::` glued together.
//!
//! Handled precisely, because getting them wrong mis-flags real code:
//!
//! - line comments and nested block comments (doc comments included);
//! - string literals with escapes, byte strings (`b"…"`), C strings
//!   (`c"…"`), and raw variants (`r"…"`, `r#"…"#`, `br##"…"##`, …);
//! - char literals vs lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`);
//! - raw identifiers (`r#type`).

/// What a token is. Rules mostly care about `Ident` / `Punct` (code) vs
/// the rest (literals and comments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, `unwrap`, …).
    Ident,
    /// One punctuation character (`.`, `:`, `[`, `!`, …).
    Punct,
    /// Numeric literal, lexed as one blob (`0x1F`, `1_000.5f64`, …).
    Num,
    /// String literal of any flavor: plain, byte, C, or raw.
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `// …` comment (doc comments included). Text keeps the slashes.
    LineComment,
    /// `/* … */` comment, nesting handled. Text keeps the delimiters.
    BlockComment,
}

/// One token with its source line (1-based; multi-line tokens carry the
/// line they start on).
#[derive(Clone, Debug)]
pub struct Tok {
    /// The kind of token.
    pub kind: TokKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True for tokens the rule engine treats as code (everything except
    /// comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True for comment tokens.
    pub fn is_comment(&self) -> bool {
        !self.is_code()
    }

    /// Shorthand: is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Shorthand: is this a punct with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens. Never fails: unterminated literals and
/// comments are closed by end-of-file (the rules still see them as
/// non-code, which is the property that matters).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { chars: src.chars().collect(), i: 0, line: 1, toks: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(String::new()),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(),
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or(' ');
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.toks
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    /// A plain (non-raw) string body starting at the opening quote;
    /// `prefix` is the already-consumed `b` / `c` prefix, if any.
    fn string(&mut self, prefix: String) {
        let line = self.line;
        let mut text = prefix;
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                continue;
            }
            text.push(c);
            if c == '"' {
                break;
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// A raw string starting at the first `#` or `"` after the prefix
    /// letters (`r` / `br` / `cr`, already consumed into `prefix`).
    fn raw_string(&mut self, prefix: String) {
        let line = self.line;
        let mut text = prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        'body: while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    text.push('#');
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Lifetime: 'ident not closed by a quote ('a, 'static). Char:
        // everything else ('x', '\n', '\'', '(' …).
        let c1 = self.peek(1);
        let is_lifetime = match c1 {
            Some(c) if is_ident_start(c) => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        let mut text = String::from("'");
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                continue;
            }
            text.push(c);
            if c == '\'' {
                break;
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5`, but not the range `1..5` (second char is `.`).
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        // String-literal prefixes and raw identifiers.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "cr", Some('"')) | ("r" | "br" | "cr", Some('#'))
                if self.raw_string_follows() =>
            {
                self.raw_string(text);
                return;
            }
            ("r", Some('#')) => {
                // Raw identifier r#type: swallow the hash, keep lexing
                // the identifier proper.
                text.push('#');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
            }
            ("b" | "c", Some('"')) => {
                self.string(text);
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident, text, line);
    }

    /// After an `r`/`br`/`cr` prefix: does `#*"` follow (a raw string)
    /// rather than `#ident` (a raw identifier)?
    fn raw_string_follows(&self) -> bool {
        let mut k = 0;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = foo.bar(1_000, 0x1F, 2.5f64);");
        assert!(toks.contains(&(TokKind::Ident, "foo".into())));
        assert!(toks.contains(&(TokKind::Num, "1_000".into())));
        assert!(toks.contains(&(TokKind::Num, "0x1F".into())));
        assert!(toks.contains(&(TokKind::Num, "2.5f64".into())));
    }

    #[test]
    fn ranges_do_not_eat_the_second_number() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.contains(&(TokKind::Num, "0".into())));
        assert!(toks.contains(&(TokKind::Num, "10".into())));
    }

    #[test]
    fn unwrap_inside_a_string_is_not_code() {
        let toks = lex(r#"let s = "call .unwrap() here";"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str && t.text.contains("unwrap")));
    }

    #[test]
    fn unsafe_inside_comments_is_not_code() {
        let toks = lex("// this mentions unsafe {}\n/* and unsafe here */ fn ok() {}");
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert_eq!(toks.iter().filter(|t| t.is_comment()).count(), 2);
    }

    #[test]
    fn raw_strings_containing_code_like_text_stay_literals() {
        let src = r##"let s = r#"x.unwrap() and unsafe { } and "quotes""#;"##;
        let toks = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap") || t.is_ident("unsafe")));
        let s = toks.iter().find(|t| t.kind == TokKind::Str).expect("one raw string");
        assert!(s.text.contains("unwrap"), "{}", s.text);
    }

    #[test]
    fn multi_hash_raw_strings_close_on_the_right_delimiter() {
        let src = r###"let s = r##"inner "# quote"##; x.unwrap()"###;
        let toks = lex(src);
        // The unwrap AFTER the literal is real code.
        assert_eq!(toks.iter().filter(|t| t.is_ident("unwrap")).count(), 1);
    }

    #[test]
    fn byte_and_c_strings_are_literals() {
        let toks = lex(r##"let a = b"bytes unsafe"; let b = br#"raw unsafe"#;"##);
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn chars_versus_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
    }

    #[test]
    fn static_lifetime_and_loop_labels() {
        let toks = lex("'outer: loop { break 'outer; } const S: &'static str = \"s\";");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner unsafe */ still comment */ fn real() {}");
        assert_eq!(toks.iter().filter(|t| t.is_comment()).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("real")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = lex("fn r#type(r#fn: u8) {}");
        assert!(toks.iter().any(|t| t.is_ident("r#type")));
        assert!(toks.iter().any(|t| t.is_ident("r#fn")));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "line1();\n/* spans\ntwo lines */\nafter();\n\"str\nwith newline\"\nlast();";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.is_ident("after")).expect("after");
        assert_eq!(after.line, 4);
        let last = toks.iter().find(|t| t.is_ident("last")).expect("last");
        assert_eq!(last.line, 7);
    }

    #[test]
    fn string_escapes_do_not_end_the_literal_early() {
        let toks = lex(r#"let s = "a \" b \\"; x.unwrap()"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.is_ident("unwrap")).count(), 1);
    }

    #[test]
    fn unterminated_literals_consume_to_eof_without_panicking() {
        for src in ["let s = \"never closed", "let c = '\\", "/* never closed", "r#\"open"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?} lexed to nothing");
        }
    }
}
