//! ALT — A* with Landmarks and the Triangle inequality (Goldberg &
//! Harrelson, SODA 2005).
//!
//! An *extension* beyond the paper's Dijkstra/A* baseline: precompute
//! shortest-path distances from a few well-spread landmark nodes; then
//! `h(n) = max_L |d(L, t) − d(L, n)|` lower-bounds the remaining network
//! distance by the triangle inequality. Unlike the Euclidean heuristic, ALT
//! reasons in *network* distance, so it stays strong on topologies where
//! straight-line distance is misleading (the radial class in E1) — and it
//! gives the reproduction a second, stronger goal-directed baseline for
//! what single-pair search can achieve against the MSMD sharing numbers.
//!
//! Landmarks are chosen by farthest-point ("avoid") selection. The
//! preprocessing assumes a symmetric (undirected) network, which every
//! `roadnet` generator guarantees.

use crate::astar::astar_with;
use crate::dijkstra::{Goal, Searcher};
use crate::path::Path;
use crate::stats::SearchStats;
use roadnet::{GraphView, NodeId};

/// Precomputed landmark distance tables.
#[derive(Clone, Debug)]
pub struct AltPreprocessing {
    landmarks: Vec<NodeId>,
    /// `dist[l][n]` = network distance from `landmarks[l]` to node `n`
    /// (infinite for unreachable nodes).
    dist: Vec<Vec<f64>>,
}

impl AltPreprocessing {
    /// Select `num_landmarks` landmarks by farthest-point selection (first
    /// landmark = node 0's farthest reachable node, then iteratively the
    /// node maximizing the minimum distance to the chosen set) and run one
    /// full Dijkstra per landmark.
    ///
    /// # Panics
    /// Panics if `num_landmarks` is 0 or exceeds the node count.
    pub fn build<G: GraphView>(g: &G, num_landmarks: usize) -> Self {
        let n = g.num_nodes();
        assert!(num_landmarks >= 1, "need at least one landmark");
        assert!(num_landmarks <= n, "more landmarks than nodes");
        let mut searcher = Searcher::new();

        // Bootstrap: full tree from node 0, take the farthest reachable
        // node as the first landmark (a graph periphery point).
        searcher.run(g, NodeId(0), &Goal::AllNodes);
        let first = (0..n)
            .filter_map(|i| {
                let node = NodeId::from_index(i);
                searcher.distance(node).filter(|d| d.is_finite()).map(|d| (node, d))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(node, _)| node)
            .unwrap_or(NodeId(0));

        let mut landmarks = Vec::with_capacity(num_landmarks);
        let mut dist: Vec<Vec<f64>> = Vec::with_capacity(num_landmarks);
        let mut min_dist = vec![f64::INFINITY; n];
        let mut current = first;
        for _ in 0..num_landmarks {
            landmarks.push(current);
            searcher.run(g, current, &Goal::AllNodes);
            let table: Vec<f64> = (0..n)
                .map(|i| searcher.distance(NodeId::from_index(i)).unwrap_or(f64::INFINITY))
                .collect();
            for (m, &d) in min_dist.iter_mut().zip(&table) {
                if d < *m {
                    *m = d;
                }
            }
            dist.push(table);
            // Next landmark: farthest from the chosen set (finite only).
            current = (0..n)
                .filter(|&i| min_dist[i].is_finite())
                .max_by(|&a, &b| min_dist[a].total_cmp(&min_dist[b]))
                .map(NodeId::from_index)
                .unwrap_or(current);
        }
        AltPreprocessing { landmarks, dist }
    }

    /// The selected landmark nodes.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Triangle-inequality lower bound on the network distance `‖n, t‖`.
    ///
    /// On undirected graphs `‖n,t‖ ≥ |d(L,t) − d(L,n)|` for every landmark
    /// `L`; the heuristic takes the best (max) bound. Unreachable entries
    /// contribute nothing.
    #[inline]
    pub fn lower_bound(&self, n: NodeId, t: NodeId) -> f64 {
        let mut best = 0.0f64;
        for table in &self.dist {
            let (dn, dt) = (table[n.index()], table[t.index()]);
            if dn.is_finite() && dt.is_finite() {
                let bound = (dt - dn).abs();
                if bound > best {
                    best = bound;
                }
            }
        }
        best
    }

    /// Memory footprint of the tables, in entries (nodes × landmarks).
    pub fn table_entries(&self) -> usize {
        self.dist.iter().map(Vec::len).sum()
    }
}

/// ALT search from `s` to `t` using precomputed landmark tables.
pub fn alt<G: GraphView>(
    g: &G,
    pre: &AltPreprocessing,
    s: NodeId,
    t: NodeId,
) -> (Option<Path>, SearchStats) {
    astar_with(g, s, t, |n| pre.lower_bound(n, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::astar;
    use crate::dijkstra::shortest_path;
    use roadnet::generators::{GridConfig, NetworkClass, grid_network};

    #[test]
    fn alt_matches_dijkstra_on_all_classes() {
        for class in NetworkClass::ALL {
            let g = class.generate(600, 3).unwrap();
            let pre = AltPreprocessing::build(&g, 6);
            let n = g.num_nodes() as u32;
            for (s, t) in [(0, n - 1), (n / 4, 3 * n / 4), (5, 5)] {
                let (p, _) = alt(&g, &pre, NodeId(s), NodeId(t));
                let d = shortest_path(&g, NodeId(s), NodeId(t)).unwrap();
                let p = p.unwrap();
                assert!(
                    (p.distance() - d.distance()).abs() < 1e-9,
                    "{} ({s},{t}): {} vs {}",
                    class.name(),
                    p.distance(),
                    d.distance()
                );
                assert!(p.verify(&g, 1e-9));
            }
        }
    }

    #[test]
    fn alt_settles_no_more_than_dijkstra() {
        let g = NetworkClass::Radial.generate(800, 5).unwrap();
        let pre = AltPreprocessing::build(&g, 8);
        let n = g.num_nodes() as u32;
        let mut searcher = Searcher::new();
        let mut alt_total = 0u64;
        let mut dij_total = 0u64;
        for (s, t) in [(1, n - 2), (n / 3, 2 * n / 3), (10, n / 2)] {
            let (_, st) = alt(&g, &pre, NodeId(s), NodeId(t));
            alt_total += st.settled;
            dij_total += searcher.run(&g, NodeId(s), &Goal::Single(NodeId(t))).settled;
        }
        assert!(alt_total <= dij_total, "ALT {alt_total} vs Dijkstra {dij_total}");
    }

    #[test]
    fn alt_beats_euclidean_astar_on_radial_networks() {
        // Straight-line distance is a poor bound when paths must follow
        // rings; landmark bounds reason in network distance.
        let g = NetworkClass::Radial.generate(800, 7).unwrap();
        let pre = AltPreprocessing::build(&g, 8);
        let n = g.num_nodes() as u32;
        let mut alt_total = 0u64;
        let mut astar_total = 0u64;
        for (s, t) in [(1u32, n - 2), (n / 3, 2 * n / 3), (10, n / 2), (2, n - 10)] {
            let (_, a) = alt(&g, &pre, NodeId(s), NodeId(t));
            let (_, e) = astar(&g, NodeId(s), NodeId(t));
            alt_total += a.settled;
            astar_total += e.settled;
        }
        assert!(
            alt_total < astar_total,
            "ALT {alt_total} should beat Euclidean A* {astar_total} on radial"
        );
    }

    #[test]
    fn landmarks_are_distinct_and_spread() {
        let g = grid_network(&GridConfig { width: 20, height: 20, seed: 1, ..Default::default() })
            .unwrap();
        let pre = AltPreprocessing::build(&g, 4);
        let set: std::collections::HashSet<_> = pre.landmarks().iter().collect();
        assert_eq!(set.len(), 4, "landmarks must be distinct");
        assert_eq!(pre.table_entries(), 4 * 400);
    }

    #[test]
    fn lower_bound_is_admissible() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 2, ..Default::default() })
            .unwrap();
        let pre = AltPreprocessing::build(&g, 5);
        for (a, b) in [(0u32, 143u32), (7, 100), (50, 51), (12, 12)] {
            let truth = crate::dijkstra::shortest_distance(&g, NodeId(a), NodeId(b)).unwrap();
            let bound = pre.lower_bound(NodeId(a), NodeId(b));
            assert!(
                bound <= truth + 1e-9,
                "bound {bound} exceeds true distance {truth} for ({a},{b})"
            );
        }
    }

    #[test]
    fn single_landmark_works() {
        let g = grid_network(&GridConfig { width: 6, height: 6, ..Default::default() }).unwrap();
        let pre = AltPreprocessing::build(&g, 1);
        let (p, _) = alt(&g, &pre, NodeId(0), NodeId(35));
        let d = shortest_path(&g, NodeId(0), NodeId(35)).unwrap();
        assert!((p.unwrap().distance() - d.distance()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one landmark")]
    fn zero_landmarks_panics() {
        let g = grid_network(&GridConfig { width: 4, height: 4, ..Default::default() }).unwrap();
        let _ = AltPreprocessing::build(&g, 0);
    }
}
