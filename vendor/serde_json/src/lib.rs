//! Offline stand-in for `serde_json`: compact/pretty JSON encoding and a
//! recursive-descent parser over the vendored `serde::Value` model.
//!
//! Supports the full JSON grammar the workspace produces: objects, arrays,
//! strings (with escapes), numbers, booleans, and null. Numbers are carried
//! as `f64`; whole numbers print without a fractional part so ids and
//! counters keep their natural wire form.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON encoding or decoding error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string (two-space indents).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer.

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error("unexpected end".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' if self.eat_keyword("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_keyword("false") => Ok(Value::Bool(false)),
            b'n' if self.eat_keyword("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!("unexpected byte `{}` at {}", other as char, self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!("expected `,` or `}}`, got `{}`", other as char)));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!("expected `,` or `]`, got `{}`", other as char)));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = Value::Object(vec![
            ("id".to_string(), Value::Num(7.0)),
            ("name".to_string(), Value::Str("a \"b\"\n".to_string())),
            ("xs".to_string(), Value::Array(vec![Value::Num(1.5), Value::Null, Value::Bool(true)])),
        ]);
        let mut text = String::new();
        write_value(&mut text, &v, None, 0);
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn whole_numbers_print_without_fraction() {
        let mut s = String::new();
        write_number(&mut s, 42.0);
        assert_eq!(s, "42");
        let mut s = String::new();
        write_number(&mut s, 0.125);
        assert_eq!(s, "0.125");
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Value::Object(vec![("a".to_string(), Value::Array(vec![Value::Num(1.0)]))]);
        let mut text = String::new();
        write_value(&mut text, &v, Some("  "), 0);
        assert!(text.contains("\n  \"a\""));
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u32, 2.5f64), (3, 4.0)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }
}
