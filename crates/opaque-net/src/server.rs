//! The network front door: a single-threaded reactor that accepts
//! framed connections and drives them through the PR 5 event gateway.
//!
//! One [`NetServer::poll_once`] iteration is the whole pipeline:
//!
//! 1. poll(2) over the listener and every live connection (read
//!    interest only while the connection is under its outbound cap —
//!    backpressure propagates to the socket).
//! 2. Accept new connections; read frames from readable ones; decode
//!    [`WireRequest`]s and submit them. `Rejected` answers immediately
//!    with `ticket: None`; `Accepted`/`Deferred` record a
//!    ticket → connection route.
//! 3. Tick the gateway and translate its ordered event stream into
//!    [`WireReply`] frames routed back over the recorded tickets.
//!    [`opaque::ServiceEvent::BatchFlushed`] reports stay server-side
//!    (see [`NetServer::reports`]) — they aggregate other clients'
//!    requests and are the determinism oracle, not client data.
//! 4. Flush writable connections; reap closed ones.
//!
//! Failure domains stay separate: a protocol error drains and closes
//! *one* connection (its queued batches still run); a batch-fatal
//! gateway error discards *one* window (connections stay up, acks
//! re-emit next tick, [`NetStats::batch_failures`] counts it); a reply
//! whose connection died is dropped and counted
//! ([`NetStats::dropped_replies`]), never redirected.

use crate::conn::Connection;
use crate::error::Result;
use crate::reactor::{POLLIN, POLLOUT, PollFd, poll};
use crate::wire::{WireReply, WireRequest, decode_message};
use opaque::{ClientRequest, DefaultBackend, OpaqueService, ServiceEvent, SubmitOutcome, Ticket};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Tunables of the wire layer (the gateway has its own policies).
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Frame payload cap handed to every connection's decoder.
    pub max_frame: u32,
    /// Outbound bytes buffered per connection before reads pause.
    pub outbound_cap: usize,
    /// poll(2) timeout — the latency floor for `max_delay` batch windows.
    pub poll_timeout_ms: i32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: crate::frame::DEFAULT_MAX_FRAME,
            outbound_cap: 256 * 1024,
            poll_timeout_ms: 10,
        }
    }
}

/// Wire-layer counters, separate from the gateway's own accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the lifetime of the server.
    pub accepted_conns: u64,
    /// Request frames decoded.
    pub frames_in: u64,
    /// Requests the gateway accepted into the current window.
    pub submitted: u64,
    /// Requests the gateway deferred to the next window.
    pub deferred: u64,
    /// Requests refused at the door (no ticket ever issued).
    pub rejected_at_door: u64,
    /// Terminal replies queued onto live connections.
    pub replies_sent: u64,
    /// Terminal replies whose connection had closed — the
    /// connection-level failure domain (the batch itself succeeded).
    pub dropped_replies: u64,
    /// Batch windows flushed.
    pub batches_flushed: u64,
    /// Batch-fatal gateway errors (window discarded, acks restored).
    pub batch_failures: u64,
}

/// The framed TCP server over an [`OpaqueService`].
pub struct NetServer {
    listener: TcpListener,
    service: OpaqueService<DefaultBackend>,
    config: ServerConfig,
    conns: HashMap<u64, Connection>,
    next_conn: u64,
    /// Ticket → connection, recorded at submit, resolved at the
    /// terminal event.
    routes: HashMap<Ticket, u64>,
    /// Serialized [`opaque::BatchReport`]s in flush order — the bytes
    /// the loopback determinism test compares.
    reports: Vec<String>,
    stats: NetStats,
    started: Instant,
}

impl NetServer {
    /// Bind the listener and adopt the service.
    ///
    /// # Errors
    /// Socket errors from bind.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: OpaqueService<DefaultBackend>,
        config: ServerConfig,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetServer {
            listener,
            service,
            config,
            conns: HashMap::new(),
            next_conn: 0,
            routes: HashMap::new(),
            reports: Vec::new(),
            stats: NetStats::default(),
            started: Instant::now(),
        })
    }

    /// The bound address (port 0 resolves here).
    ///
    /// # Errors
    /// Socket errors querying the listener.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// The gateway clock: seconds since the server started. Batch
    /// report bytes are clock-independent (reports carry no timing), so
    /// wall time only drives `max_delay` windows and `waited` fields.
    pub fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Serialized batch reports, in flush order.
    pub fn reports(&self) -> &[String] {
        &self.reports
    }

    /// Wire-layer counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Live connections (for tests and the smoke binary).
    pub fn open_conns(&self) -> usize {
        self.conns.len()
    }

    /// One reactor iteration; see the module docs for the pipeline.
    ///
    /// # Errors
    /// Listener-level socket failures. Per-connection and per-batch
    /// failures are contained and counted, never propagated.
    pub fn poll_once(&mut self) -> Result<()> {
        // Register interest: listener first, then connections in a
        // stable order alongside their ids.
        let mut fds = vec![PollFd::new(self.listener.as_raw_fd(), POLLIN)];
        let mut ids = Vec::with_capacity(self.conns.len());
        for (&id, conn) in &self.conns {
            let mut events = 0i16;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if conn.wants_write() {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd::new(conn.stream().as_raw_fd(), events));
                ids.push(id);
            }
        }
        match poll(&mut fds, self.config.poll_timeout_ms) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }

        if fds.first().is_some_and(PollFd::readable) {
            self.accept_ready()?;
        }
        // fds[0] is the listener; entries 1.. pair up with `ids` by
        // construction above, and zip makes that pairing panic-free.
        let ready: Vec<(bool, bool, u64)> = fds
            .iter()
            .skip(1)
            .zip(&ids)
            .map(|(fd, &id)| (fd.readable(), fd.writable(), id))
            .collect();
        for &(readable, _, id) in &ready {
            if readable {
                self.read_conn(id);
            }
        }

        self.pump_gateway();

        for &(_, writable, id) in &ready {
            if writable {
                self.flush_conn(id);
            }
        }
        // Replies queued by this iteration's events get an eager flush
        // attempt too — loopback sockets are almost always writable.
        let pending: Vec<u64> =
            self.conns.iter().filter(|(_, c)| c.wants_write()).map(|(&id, _)| id).collect();
        for id in pending {
            self.flush_conn(id);
        }

        self.conns.retain(|_, c| !c.is_closed());
        Ok(())
    }

    /// Run the reactor until `stop` is set, then [`NetServer::drain`].
    ///
    /// # Errors
    /// Listener-level failures from [`NetServer::poll_once`].
    pub fn run_until(&mut self, stop: &AtomicBool) -> Result<()> {
        while !stop.load(Ordering::Acquire) {
            self.poll_once()?;
        }
        self.drain()
    }

    /// Flush the gateway's pending work and push the replies out, so a
    /// shutdown honors the one-terminal-reply-per-request contract.
    ///
    /// # Errors
    /// Listener-level failures; batch-fatal errors are counted and
    /// retried (acks re-emit) up to a bounded number of rounds.
    pub fn drain(&mut self) -> Result<()> {
        for _ in 0..64 {
            let now = self.now();
            match self.service.flush(now) {
                Ok(events) => self.route_events(events),
                Err(_) => self.stats.batch_failures += 1,
            }
            let pending: Vec<u64> =
                self.conns.iter().filter(|(_, c)| c.wants_write()).map(|(&id, _)| id).collect();
            for id in pending {
                self.flush_conn(id);
            }
            self.conns.retain(|_, c| !c.is_closed());
            let quiet =
                self.service.pending() == 0 && self.conns.values().all(|c| !c.wants_write());
            if quiet {
                break;
            }
        }
        Ok(())
    }

    fn accept_ready(&mut self) -> Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    match Connection::new(stream, self.config.max_frame, self.config.outbound_cap) {
                        Ok(conn) => {
                            let id = self.next_conn;
                            self.next_conn += 1;
                            self.conns.insert(id, conn);
                            self.stats.accepted_conns += 1;
                        }
                        // A socket that failed nonblocking setup is
                        // dropped; the peer sees a reset.
                        Err(_) => continue,
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    fn read_conn(&mut self, id: u64) {
        let now = self.now();
        let conn = match self.conns.get_mut(&id) {
            Some(c) => c,
            None => return,
        };
        let frames = match conn.read_frames() {
            Ok(frames) => frames,
            Err(err) => {
                conn.begin_drain(&err);
                return;
            }
        };
        for payload in frames {
            self.stats.frames_in += 1;
            let msg: WireRequest = match decode_message(&payload) {
                Ok(msg) => msg,
                Err(err) => {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.begin_drain(&err);
                    }
                    return;
                }
            };
            self.submit(id, msg, now);
        }
    }

    fn submit(&mut self, id: u64, msg: WireRequest, now: f64) {
        let client = msg.request.client;
        let request = ClientRequest::new(client, msg.request.query, msg.request.protection);
        let outcome = self.service.submit_with_priority(request, msg.priority, now);
        match outcome {
            SubmitOutcome::Accepted(ticket) => {
                self.stats.submitted += 1;
                self.routes.insert(ticket, id);
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.note_submitted();
                }
            }
            SubmitOutcome::Deferred(ticket) => {
                self.stats.deferred += 1;
                self.routes.insert(ticket, id);
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.note_submitted();
                }
            }
            SubmitOutcome::Rejected(reason) => {
                self.stats.rejected_at_door += 1;
                self.deliver(
                    id,
                    &WireReply::Rejected { ticket: None, client, reason, waited: 0.0 },
                );
            }
        }
    }

    fn pump_gateway(&mut self) {
        let now = self.now();
        match self.service.tick(now) {
            Ok(events) => self.route_events(events),
            Err(_) => {
                // Batch-fatal: the window is discarded and cancellation /
                // shedding acks were restored inside the gateway — they
                // re-emit on the next tick. Connections are unaffected.
                self.stats.batch_failures += 1;
            }
        }
    }

    fn route_events(&mut self, events: Vec<ServiceEvent>) {
        for event in events {
            let (ticket, reply) = match event {
                ServiceEvent::BatchFlushed(report) => {
                    // A report that fails to serialize is a harness
                    // fault, not a connection fault: count it with the
                    // batch failures and keep serving. Reports are
                    // plain data and round-trip by construction, so
                    // this arm is dead in practice — but asserting that
                    // here would put a process abort on the hot path.
                    match serde_json::to_string(&report) {
                        Ok(json) => {
                            self.stats.batches_flushed += 1;
                            self.reports.push(json);
                        }
                        Err(_) => self.stats.batch_failures += 1,
                    }
                    continue;
                }
                ServiceEvent::ResponseReady { ticket, result, waited, .. } => {
                    (ticket, WireReply::Result { ticket, result, waited })
                }
                ServiceEvent::Unreachable { ticket, client, waited } => {
                    (ticket, WireReply::Unreachable { ticket, client, waited })
                }
                ServiceEvent::Rejected { ticket, client, reason, waited } => {
                    (ticket, WireReply::Rejected { ticket: Some(ticket), client, reason, waited })
                }
                ServiceEvent::Cancelled { ticket, client } => {
                    (ticket, WireReply::Cancelled { ticket, client })
                }
            };
            match self.routes.remove(&ticket) {
                Some(id) if self.conns.contains_key(&id) => self.deliver(id, &reply),
                // The connection died while its request was in flight —
                // a connection-level failure, distinct from batch
                // failure: the batch ran, only delivery was impossible.
                _ => self.stats.dropped_replies += 1,
            }
        }
    }

    fn deliver(&mut self, id: u64, reply: &WireReply) {
        if let Some(conn) = self.conns.get_mut(&id) {
            if conn.is_closed() {
                self.stats.dropped_replies += 1;
                return;
            }
            match conn.queue_reply(reply) {
                Ok(()) => self.stats.replies_sent += 1,
                // An unframeable reply is a server-side failure: the
                // client must not hang waiting, so the connection drains
                // with the typed notice instead of silently eating it.
                Err(err) => {
                    self.stats.dropped_replies += 1;
                    conn.begin_drain(&err);
                }
            }
        } else {
            self.stats.dropped_replies += 1;
        }
    }

    fn flush_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.get_mut(&id) {
            // Flush errors mark the connection closed; the reaper
            // removes it and later replies count as dropped.
            let _ = conn.flush();
        }
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("conns", &self.conns.len())
            .field("routes", &self.routes.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{DEFAULT_MAX_FRAME, FrameDecoder, frame_vec};
    use crate::wire::encode_message;
    use opaque::{
        BatchPolicy, ClientId, PathQuery, Priority, ProtectionSettings, RequestMsg, ServiceBuilder,
    };
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn server(max_batch: usize) -> NetServer {
        let map =
            grid_network(&GridConfig { width: 12, height: 12, seed: 5, ..Default::default() })
                .unwrap();
        let service = ServiceBuilder::new()
            .map(map)
            .seed(41)
            .batch_policy(BatchPolicy { max_batch, max_delay: 3600.0 })
            .build()
            .unwrap();
        NetServer::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap()
    }

    fn wire_request(client: u32, s: u32, t: u32) -> Vec<u8> {
        let msg = WireRequest {
            request: RequestMsg {
                client: ClientId(client),
                query: PathQuery::new(NodeId(s), NodeId(t)),
                protection: ProtectionSettings::new(2, 2).unwrap(),
            },
            priority: Priority::Interactive,
        };
        frame_vec(&encode_message(&msg).unwrap()).unwrap()
    }

    fn read_replies(stream: &mut TcpStream, n: usize) -> Vec<WireReply> {
        stream.set_nonblocking(false).unwrap();
        stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        while out.len() < n {
            let got = stream.read(&mut buf).unwrap();
            assert!(got > 0, "server closed early with {} of {n} replies", out.len());
            dec.push(&buf[..got]);
            while let Some(p) = dec.next_frame().unwrap() {
                out.push(decode_message(&p).unwrap());
            }
        }
        out
    }

    /// Drive the server from this thread while a raw client speaks the
    /// protocol — the full request → gateway → reply path in one test.
    #[test]
    fn end_to_end_request_reply_over_loopback() {
        let mut srv = server(2);
        let addr = srv.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(&wire_request(1, 0, 143)).unwrap();
        client.write_all(&wire_request(2, 11, 132)).unwrap();

        let reader = std::thread::spawn(move || read_replies(&mut client, 2));
        for _ in 0..3_000 {
            srv.poll_once().unwrap();
            if srv.stats().replies_sent == 2 {
                break;
            }
        }
        let replies = reader.join().unwrap();
        assert_eq!(replies.len(), 2);
        for reply in &replies {
            match reply {
                WireReply::Result { result, .. } => {
                    assert!(matches!(result.client, ClientId(1) | ClientId(2)));
                }
                other => panic!("expected Result, got {other:?}"),
            }
        }
        let stats = srv.stats();
        assert_eq!(stats.frames_in, 2);
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.batches_flushed, 1);
        assert_eq!(stats.dropped_replies, 0);
        assert_eq!(srv.reports().len(), 1);
        assert!(srv.reports()[0].contains("\"num_requests\""), "{}", srv.reports()[0]);
    }

    #[test]
    fn door_rejection_answers_without_a_ticket() {
        let mut srv = server(64);
        let addr = srv.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // f_s = 0 bypasses ProtectionSettings::new via Deserialize; the
        // gateway must refuse it with InvalidProtection over the wire.
        let msg = WireRequest {
            request: RequestMsg {
                client: ClientId(9),
                query: PathQuery::new(NodeId(0), NodeId(5)),
                protection: serde_json::from_str("{\"f_s\":0,\"f_t\":2}").unwrap(),
            },
            priority: Priority::Interactive,
        };
        client.write_all(&frame_vec(&encode_message(&msg).unwrap()).unwrap()).unwrap();
        let reader = std::thread::spawn(move || read_replies(&mut client, 1));
        for _ in 0..3_000 {
            srv.poll_once().unwrap();
            if srv.stats().rejected_at_door == 1 && srv.stats().replies_sent == 1 {
                break;
            }
        }
        let replies = reader.join().unwrap();
        match &replies[0] {
            WireReply::Rejected { ticket: None, client: ClientId(9), waited, .. } => {
                assert_eq!(*waited, 0.0);
            }
            other => panic!("expected door rejection, got {other:?}"),
        }
        assert_eq!(srv.stats().submitted, 0);
    }

    #[test]
    fn malformed_frame_draining_closes_only_that_connection() {
        let mut srv = server(1);
        let addr = srv.local_addr().unwrap();
        let mut bad = TcpStream::connect(addr).unwrap();
        let mut good = TcpStream::connect(addr).unwrap();

        // The bad client sends a frame with a hostile version byte.
        let mut evil = frame_vec(b"{}").unwrap();
        evil[4] = 0xEE;
        bad.write_all(&evil).unwrap();
        let bad_reader = std::thread::spawn(move || {
            let mut bytes = Vec::new();
            bad.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
            bad.read_to_end(&mut bytes).unwrap();
            bytes
        });

        // The good client's request must still be served.
        good.write_all(&wire_request(3, 0, 143)).unwrap();
        let good_reader = std::thread::spawn(move || read_replies(&mut good, 1));

        for _ in 0..3_000 {
            srv.poll_once().unwrap();
            if srv.stats().replies_sent >= 1 && srv.open_conns() <= 1 {
                break;
            }
        }
        let bad_bytes = bad_reader.join().unwrap();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        dec.push(&bad_bytes);
        let notice: WireReply = decode_message(&dec.next_frame().unwrap().unwrap()).unwrap();
        assert!(matches!(notice, WireReply::Error { .. }), "got {notice:?}");

        let good_replies = good_reader.join().unwrap();
        assert!(
            matches!(&good_replies[0], WireReply::Result { result, .. }
                if result.client == ClientId(3)),
            "healthy connection starved by a hostile peer: {good_replies:?}"
        );
    }
}
