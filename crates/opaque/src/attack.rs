//! Adversary models quantifying what OPAQUE actually protects.
//!
//! Definition 2's breach probability assumes an adversary that picks
//! uniformly among the `|S|×|T|` represented pairs. This module implements
//! that adversary (to validate the formula empirically, E3) plus the two
//! stronger adversaries the paper's threat discussion motivates:
//!
//! * the **background-knowledge adversary** (§II: "with the help of some
//!   public information such as voter registration list and yellow pages"),
//!   which weighs endpoints by plausibility before guessing;
//! * the **collusion attack** (abstract: shared obfuscated queries "enhance
//!   privacy protection against collusion attacks" only up to a point),
//!   where clients embedded in the same shared query pool their knowledge
//!   to unmask a victim.

use crate::metrics::{effective_anonymity, endpoint_posterior, map_success_probability};
use crate::obfuscator::ObfuscationUnit;
use crate::query::{ClientId, PathQuery};
use rand::Rng;
use rand::rngs::StdRng;
use roadnet::NodeId;
use std::collections::HashSet;

/// Result of a Monte-Carlo attack simulation against one victim.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct AttackReport {
    /// Closed-form success probability of the modelled adversary.
    pub analytic: f64,
    /// Fraction of simulation trials in which the adversary's guess was
    /// exactly the victim's true query.
    pub empirical: f64,
    /// Number of trials behind `empirical`.
    pub trials: u32,
}

fn victim_query(unit: &ObfuscationUnit, victim: ClientId) -> PathQuery {
    unit.requests
        .iter()
        .find(|r| r.client == victim)
        .unwrap_or_else(|| panic!("victim {victim:?} not carried by this unit"))
        .query
}

/// The Definition 2 adversary: guess one of the `|S|×|T|` pairs uniformly.
///
/// # Panics
/// Panics if `victim` is not one of the unit's clients or `trials` is 0.
pub fn uniform_attack(
    unit: &ObfuscationUnit,
    victim: ClientId,
    trials: u32,
    rng: &mut StdRng,
) -> AttackReport {
    assert!(trials > 0, "need at least one trial");
    let truth = victim_query(unit, victim);
    let sources = unit.query.sources();
    let targets = unit.query.targets();
    let mut hits = 0u32;
    for _ in 0..trials {
        let s = sources[rng.gen_range(0..sources.len())];
        let t = targets[rng.gen_range(0..targets.len())];
        if s == truth.source && t == truth.destination {
            hits += 1;
        }
    }
    AttackReport {
        analytic: unit.query.breach_probability(),
        empirical: hits as f64 / trials as f64,
        trials,
    }
}

/// What the background-knowledge adversary learns from one unit.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct InformedAttackReport {
    /// Success probability of the adversary's best (MAP) guess.
    pub map_success: f64,
    /// Posterior probability the adversary assigns to the victim's true
    /// pair.
    pub victim_posterior: f64,
    /// Effective anonymity-set size `2^H` of the posterior.
    pub effective_anonymity: f64,
    /// The nominal `|S|×|T|` the posterior is defined over.
    pub nominal_pairs: usize,
}

/// The background-knowledge adversary: endpoint plausibility weights induce
/// a posterior `P(s,t) ∝ w(s)·w(t)` over represented pairs.
///
/// `weights[n]` is the plausibility of node `n` (e.g. population density);
/// it must cover every node id appearing in the unit.
pub fn informed_attack(
    unit: &ObfuscationUnit,
    victim: ClientId,
    weights: &[f64],
) -> InformedAttackReport {
    let truth = victim_query(unit, victim);
    let w = |n: NodeId| {
        assert!(n.index() < weights.len(), "weight missing for node {n}");
        weights[n.index()]
    };
    let source_w: Vec<f64> = unit.query.sources().iter().map(|&s| w(s)).collect();
    let target_w: Vec<f64> = unit.query.targets().iter().map(|&t| w(t)).collect();
    let posterior = endpoint_posterior(&source_w, &target_w);

    let i = unit.query.source_index(truth.source).expect("victim source embedded");
    let j = unit.query.target_index(truth.destination).expect("victim target embedded");
    let victim_posterior = posterior[i * unit.query.targets().len() + j];

    InformedAttackReport {
        map_success: map_success_probability(&posterior),
        victim_posterior,
        effective_anonymity: effective_anonymity(&posterior),
        nominal_pairs: unit.query.num_pairs(),
    }
}

/// Result of a collusion attack against a shared obfuscated query.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct CollusionReport {
    /// Number of colluding clients.
    pub colluders: usize,
    /// Source candidates left after removing everything colluders revealed.
    pub residual_sources: usize,
    /// Target candidates left after removal.
    pub residual_targets: usize,
    /// Analytic breach probability over the residual candidate set — 0 when
    /// the victim's pair was (wrongly) excluded because it shares an
    /// endpoint with a colluder.
    pub analytic: f64,
    /// Monte-Carlo success rate of the residual-uniform adversary.
    pub empirical: f64,
    /// Trials behind `empirical`.
    pub trials: u32,
}

/// The collusion attack: `colluders` ⊆ the unit's clients reveal their true
/// queries to the adversary, who removes every revealed endpoint from the
/// candidate sets and guesses uniformly over what remains.
///
/// If the victim shares an endpoint with a colluder, the adversary's
/// exclusion is wrong and the attack cannot succeed — modelled honestly
/// (the adversary does not know it failed).
///
/// # Panics
/// Panics if the victim is listed as a colluder, is not carried by the
/// unit, or `trials` is 0.
pub fn collusion_attack(
    unit: &ObfuscationUnit,
    victim: ClientId,
    colluders: &[ClientId],
    trials: u32,
    rng: &mut StdRng,
) -> CollusionReport {
    assert!(trials > 0, "need at least one trial");
    assert!(!colluders.contains(&victim), "the victim cannot collude against itself");
    let truth = victim_query(unit, victim);

    let colluder_set: HashSet<ClientId> = colluders.iter().copied().collect();
    let mut revealed_s: HashSet<NodeId> = HashSet::new();
    let mut revealed_t: HashSet<NodeId> = HashSet::new();
    for r in &unit.requests {
        if colluder_set.contains(&r.client) {
            revealed_s.insert(r.query.source);
            revealed_t.insert(r.query.destination);
        }
    }

    let residual_s: Vec<NodeId> =
        unit.query.sources().iter().copied().filter(|s| !revealed_s.contains(s)).collect();
    let residual_t: Vec<NodeId> =
        unit.query.targets().iter().copied().filter(|t| !revealed_t.contains(t)).collect();

    let victim_in_play =
        residual_s.contains(&truth.source) && residual_t.contains(&truth.destination);
    let analytic = if victim_in_play && !residual_s.is_empty() && !residual_t.is_empty() {
        1.0 / (residual_s.len() as f64 * residual_t.len() as f64)
    } else {
        0.0
    };

    let mut hits = 0u32;
    if !residual_s.is_empty() && !residual_t.is_empty() {
        for _ in 0..trials {
            let s = residual_s[rng.gen_range(0..residual_s.len())];
            let t = residual_t[rng.gen_range(0..residual_t.len())];
            if s == truth.source && t == truth.destination {
                hits += 1;
            }
        }
    }

    CollusionReport {
        colluders: colluders.len(),
        residual_sources: residual_s.len(),
        residual_targets: residual_t.len(),
        analytic,
        empirical: hits as f64 / trials as f64,
        trials,
    }
}

/// Result of an intersection attack over repeated obfuscations of the same
/// true query.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct IntersectionReport {
    /// Candidate pairs remaining after each observed round (starting with
    /// the first round's full `|S|·|T|`).
    pub candidates_per_round: Vec<usize>,
    /// Breach probability after the last round (`1 / candidates`), assuming
    /// a uniform guess over the surviving intersection.
    pub final_breach: f64,
    /// True when the intersection collapsed to exactly the victim's pair.
    pub pinpointed: bool,
}

/// The **intersection attack**: a client re-issues the same query over
/// time; the server links the resulting obfuscated queries and intersects
/// their represented pair sets. The true pair is in every set by
/// Definition 1, so it always survives — fresh random fakes rarely do.
///
/// This is the attack [`crate::Obfuscator::with_consistent_fakes`] defends
/// against (with the defense, all rounds are identical and the intersection
/// never shrinks).
///
/// # Panics
/// Panics if `units` is empty or the victim's query is not covered by all
/// units (the attack presumes the same underlying request each round).
pub fn intersection_attack(units: &[ObfuscationUnit], truth: &PathQuery) -> IntersectionReport {
    assert!(!units.is_empty(), "need at least one observed round");
    for (i, u) in units.iter().enumerate() {
        assert!(
            u.query.covers(truth),
            "round {i} does not cover the true query — not the same request"
        );
    }

    let mut survivors: HashSet<(NodeId, NodeId)> =
        units[0].query.represented_queries().map(|q| (q.source, q.destination)).collect();
    let mut candidates_per_round = vec![survivors.len()];
    for u in &units[1..] {
        let round: HashSet<(NodeId, NodeId)> =
            u.query.represented_queries().map(|q| (q.source, q.destination)).collect();
        // lint: allow(hash-iter) — retain with a pure membership
        // predicate: the surviving *set* is order-independent, and the
        // report reads only its size.
        survivors.retain(|pair| round.contains(pair));
        candidates_per_round.push(survivors.len());
    }
    debug_assert!(
        survivors.contains(&(truth.source, truth.destination)),
        "the true pair survives every intersection by Definition 1"
    );
    IntersectionReport {
        final_breach: 1.0 / survivors.len() as f64,
        pinpointed: survivors.len() == 1,
        candidates_per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscator::{FakeSelection, Obfuscator};
    use crate::query::{ClientRequest, ProtectionSettings};
    use rand::SeedableRng;
    use roadnet::generators::{GridConfig, grid_network};

    fn obfuscator() -> Obfuscator {
        let map =
            grid_network(&GridConfig { width: 20, height: 20, seed: 2, ..Default::default() })
                .unwrap();
        Obfuscator::new(map, FakeSelection::Uniform, 31)
    }

    fn request(i: u32, s: u32, t: u32, f: u32) -> ClientRequest {
        ClientRequest::new(
            ClientId(i),
            PathQuery::new(NodeId(s), NodeId(t)),
            ProtectionSettings::new(f, f).unwrap(),
        )
    }

    #[test]
    fn uniform_attack_matches_definition_2() {
        let mut ob = obfuscator();
        let r = request(0, 0, 399, 3);
        let unit = ob.obfuscate_independent(&r).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let report = uniform_attack(&unit, ClientId(0), 200_000, &mut rng);
        assert!((report.analytic - 1.0 / 9.0).abs() < 1e-12);
        assert!(
            (report.empirical - report.analytic).abs() < 0.01,
            "empirical {} vs analytic {}",
            report.empirical,
            report.analytic
        );
    }

    #[test]
    fn informed_attack_uniform_weights_equals_nominal() {
        let mut ob = obfuscator();
        let r = request(0, 0, 399, 4);
        let unit = ob.obfuscate_independent(&r).unwrap();
        let weights = vec![1.0; 400];
        let rep = informed_attack(&unit, ClientId(0), &weights);
        assert!((rep.map_success - 1.0 / 16.0).abs() < 1e-12);
        assert!((rep.victim_posterior - 1.0 / 16.0).abs() < 1e-12);
        assert!((rep.effective_anonymity - 16.0).abs() < 1e-6);
    }

    #[test]
    fn informed_attack_exploits_implausible_fakes() {
        let mut ob = obfuscator();
        let r = request(0, 0, 399, 4);
        let unit = ob.obfuscate_independent(&r).unwrap();
        // Adversary's background knowledge: only the true endpoints are
        // plausible (weight 100), fakes barely (weight 1).
        let mut weights = vec![1.0; 400];
        weights[0] = 100.0;
        weights[399] = 100.0;
        let rep = informed_attack(&unit, ClientId(0), &weights);
        assert!(rep.victim_posterior > 0.5, "posterior {}", rep.victim_posterior);
        assert!(rep.effective_anonymity < 4.0, "anonymity {}", rep.effective_anonymity);
        // The nominal guarantee is unchanged — that is the point.
        assert_eq!(rep.nominal_pairs, 16);
    }

    #[test]
    fn collusion_shrinks_the_anonymity_set() {
        let mut ob = obfuscator();
        let reqs = vec![request(0, 0, 399, 4), request(1, 21, 378, 4), request(2, 42, 357, 4)];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        let mut rng = StdRng::seed_from_u64(5);

        let none = collusion_attack(&unit, ClientId(0), &[], 100_000, &mut rng);
        let one = collusion_attack(&unit, ClientId(0), &[ClientId(1)], 100_000, &mut rng);
        let two =
            collusion_attack(&unit, ClientId(0), &[ClientId(1), ClientId(2)], 100_000, &mut rng);

        assert!((none.analytic - unit.query.breach_probability()).abs() < 1e-12);
        assert!(one.analytic > none.analytic);
        assert!(two.analytic > one.analytic);
        for rep in [none, one, two] {
            assert!(
                (rep.empirical - rep.analytic).abs() < 0.01,
                "empirical {} vs analytic {}",
                rep.empirical,
                rep.analytic
            );
        }
    }

    #[test]
    fn collusion_with_shared_endpoint_misleads_the_adversary() {
        let mut ob = obfuscator();
        // Victim and colluder share source node 0.
        let reqs = vec![request(0, 0, 399, 3), request(1, 0, 380, 3)];
        let unit = ob.obfuscate_shared(&reqs).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let rep = collusion_attack(&unit, ClientId(0), &[ClientId(1)], 10_000, &mut rng);
        // The colluder's revealed source removes the victim's source too.
        assert_eq!(rep.analytic, 0.0);
        assert_eq!(rep.empirical, 0.0);
    }

    #[test]
    fn independent_queries_are_immune_to_collusion() {
        // A colluder in a *different* unit reveals nothing about this one:
        // modelled by attacking an independent unit with zero colluders —
        // there is nobody to collude with inside the unit.
        let mut ob = obfuscator();
        let unit = ob.obfuscate_independent(&request(0, 0, 399, 3)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let rep = collusion_attack(&unit, ClientId(0), &[], 10_000, &mut rng);
        assert!((rep.analytic - unit.query.breach_probability()).abs() < 1e-12);
    }

    #[test]
    fn intersection_attack_breaches_fresh_fakes() {
        let mut ob = obfuscator();
        let r = request(0, 0, 399, 5);
        let units: Vec<_> =
            (0..6).map(|_| ob.obfuscate_independent(&r).expect("map large enough")).collect();
        let rep = intersection_attack(&units, &r.query);
        assert_eq!(rep.candidates_per_round[0], 25);
        // Candidates shrink monotonically…
        for w in rep.candidates_per_round.windows(2) {
            assert!(w[1] <= w[0]);
        }
        // …and with uniform fakes on a 400-node map, six rounds pinpoint.
        assert!(rep.pinpointed, "survivors: {:?}", rep.candidates_per_round);
        assert_eq!(rep.final_breach, 1.0);
    }

    #[test]
    fn consistent_fakes_defeat_the_intersection_attack() {
        let map =
            grid_network(&GridConfig { width: 20, height: 20, seed: 2, ..Default::default() })
                .unwrap();
        let mut ob = Obfuscator::new(map, FakeSelection::Uniform, 31).with_consistent_fakes(true);
        let r = request(0, 0, 399, 5);
        let units: Vec<_> = (0..10).map(|_| ob.obfuscate_independent(&r).expect("ok")).collect();
        let rep = intersection_attack(&units, &r.query);
        assert!(!rep.pinpointed);
        assert_eq!(rep.candidates_per_round.last(), Some(&25), "intersection never shrinks");
        assert!((rep.final_breach - 1.0 / 25.0).abs() < 1e-12);
        // All rounds are literally the same query.
        for u in &units[1..] {
            assert_eq!(u.query, units[0].query);
        }
    }

    #[test]
    fn consistency_cache_is_keyed_by_protection_too() {
        let map =
            grid_network(&GridConfig { width: 20, height: 20, seed: 2, ..Default::default() })
                .unwrap();
        let mut ob = Obfuscator::new(map, FakeSelection::Uniform, 31).with_consistent_fakes(true);
        let weak = request(0, 0, 399, 2);
        let strong = request(0, 0, 399, 5);
        let a = ob.obfuscate_independent(&weak).unwrap();
        let b = ob.obfuscate_independent(&strong).unwrap();
        assert_ne!(a.query, b.query, "different protection must not share the memo entry");
        assert_eq!(a.query, ob.obfuscate_independent(&weak).unwrap().query);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn intersection_attack_requires_consistent_truth() {
        let mut ob = obfuscator();
        let a = ob.obfuscate_independent(&request(0, 0, 399, 3)).unwrap();
        let b = ob.obfuscate_independent(&request(0, 5, 390, 3)).unwrap();
        let _ = intersection_attack(&[a, b], &PathQuery::new(NodeId(0), NodeId(399)));
    }

    #[test]
    #[should_panic(expected = "cannot collude")]
    fn victim_colluding_with_itself_panics() {
        let mut ob = obfuscator();
        let unit = ob.obfuscate_independent(&request(0, 0, 399, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let _ = collusion_attack(&unit, ClientId(0), &[ClientId(0)], 10, &mut rng);
    }

    #[test]
    #[should_panic(expected = "not carried")]
    fn unknown_victim_panics() {
        let mut ob = obfuscator();
        let unit = ob.obfuscate_independent(&request(0, 0, 399, 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let _ = uniform_attack(&unit, ClientId(99), 10, &mut rng);
    }
}
