//! Wire protocol of the OPAQUE deployment (Figures 5–6).
//!
//! Four message kinds flow through the system:
//!
//! 1. [`RequestMsg`] — client → obfuscator, over the secure channel:
//!    `⟨u, (s,t), (f_S, f_T)⟩`;
//! 2. [`ObfuscatedQueryMsg`] — obfuscator → server: the anonymized
//!    `Q(S, T)` (no client identities cross this hop);
//! 3. [`CandidateResultsMsg`] — server → obfuscator: all `|S|×|T|`
//!    candidate paths;
//! 4. [`ResultMsg`] — obfuscator → client, secure channel: the one path
//!    answering the client's true query. The service gateway surfaces
//!    this hop per client as
//!    [`ServiceEvent::ResponseReady`](crate::ServiceEvent::ResponseReady),
//!    closing the Figure 5/6 loop request by request rather than batch
//!    by batch.
//!
//! Messages serialize with serde; [`wire_size`] measures their JSON
//! encoding so experiments can report real bytes per hop rather than
//! node-count proxies. The secure channel itself is modelled, not
//! implemented — the paper assumes it (§IV); what the experiments observe
//! is *what* crosses each hop and *how big* it is, which is exactly what
//! [`HopTraffic`] accumulates.

use crate::query::{ClientId, ObfuscatedPathQuery, PathQuery, ProtectionSettings};
use pathsearch::{MsmdResult, Path};
use serde::Serialize;

/// Client → obfuscator (secure channel): one directions request.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RequestMsg {
    /// The requesting client.
    pub client: ClientId,
    /// The true path query.
    pub query: PathQuery,
    /// The client's anonymity requirements.
    pub protection: ProtectionSettings,
}

/// Obfuscator → server: an anonymized obfuscated path query. Carries no
/// client identity — the server sees only endpoint sets.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObfuscatedQueryMsg {
    /// Correlation id so the obfuscator can match responses to in-flight
    /// queries (opaque to the server; fresh per query).
    pub query_id: u64,
    /// The anonymized endpoint sets.
    pub query: ObfuscatedPathQuery,
}

/// Server → obfuscator: candidate result paths for every connected pair,
/// in source-major order of the sorted endpoint sets.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CandidateResultsMsg {
    /// Correlation id echoed from the query message.
    pub query_id: u64,
    /// `paths[i][j]` answers `(sources[i], targets[j])`; `None` when
    /// disconnected.
    pub paths: Vec<Vec<Option<Path>>>,
}

impl CandidateResultsMsg {
    /// Package an MSMD evaluation for the wire.
    pub fn from_result(query_id: u64, result: &MsmdResult) -> Self {
        CandidateResultsMsg { query_id, paths: result.paths.clone() }
    }
}

/// Obfuscator → client (secure channel): the requested path.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResultMsg {
    /// The client the path is delivered to.
    pub client: ClientId,
    /// The shortest path for the client's true query.
    pub path: Path,
}

/// Serialized size of a message in bytes (compact JSON encoding — a
/// reasonable stand-in for any self-describing wire format; experiments
/// compare hops, not codecs).
pub fn wire_size<M: Serialize>(msg: &M) -> usize {
    serde_json::to_vec(msg).map(|v| v.len()).unwrap_or(0)
}

/// Byte counters for the four hops of Figure 5 (both secure-channel legs
/// and both obfuscator–server legs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HopTraffic {
    /// Client → obfuscator requests (secure channel up).
    pub requests_bytes: u64,
    /// Obfuscator → server obfuscated queries.
    pub queries_bytes: u64,
    /// Server → obfuscator candidate results.
    pub candidates_bytes: u64,
    /// Obfuscator → client delivered results (secure channel down).
    pub results_bytes: u64,
}

impl HopTraffic {
    /// Record one request message.
    pub fn record_request(&mut self, m: &RequestMsg) {
        self.requests_bytes += wire_size(m) as u64;
    }

    /// Record one obfuscated query message.
    pub fn record_query(&mut self, m: &ObfuscatedQueryMsg) {
        self.queries_bytes += wire_size(m) as u64;
    }

    /// Record one candidate-results message.
    pub fn record_candidates(&mut self, m: &CandidateResultsMsg) {
        self.candidates_bytes += wire_size(m) as u64;
    }

    /// Record one delivered result.
    pub fn record_result(&mut self, m: &ResultMsg) {
        self.results_bytes += wire_size(m) as u64;
    }

    /// Download amplification at the obfuscator: candidate bytes received
    /// per result byte delivered — the measurable form of §II's
    /// "overconsumption of … network resources".
    pub fn candidate_amplification(&self) -> f64 {
        if self.results_bytes == 0 {
            0.0
        } else {
            self.candidates_bytes as f64 / self.results_bytes as f64
        }
    }

    /// Total bytes over all hops.
    pub fn total_bytes(&self) -> u64 {
        self.requests_bytes + self.queries_bytes + self.candidates_bytes + self.results_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscator::{FakeSelection, Obfuscator};
    use crate::query::ClientRequest;
    use crate::server::DirectionsServer;
    use pathsearch::SharingPolicy;
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};

    fn request() -> RequestMsg {
        RequestMsg {
            client: ClientId(7),
            query: PathQuery::new(NodeId(1), NodeId(2)),
            protection: ProtectionSettings::new(3, 3).unwrap(),
        }
    }

    #[test]
    fn messages_round_trip_through_serde() {
        let m = request();
        let json = serde_json::to_string(&m).unwrap();
        let back: RequestMsg = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);

        let q = ObfuscatedQueryMsg {
            query_id: 99,
            query: ObfuscatedPathQuery::new(vec![NodeId(1)], vec![NodeId(2), NodeId(3)]),
        };
        let back: ObfuscatedQueryMsg =
            serde_json::from_str(&serde_json::to_string(&q).unwrap()).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn obfuscated_query_msg_carries_no_client_identity() {
        // Structural check on the serialized form: the server-facing hop
        // must contain no "client" field anywhere.
        let q = ObfuscatedQueryMsg {
            query_id: 1,
            query: ObfuscatedPathQuery::new(vec![NodeId(1)], vec![NodeId(2)]),
        };
        let json = serde_json::to_string(&q).unwrap();
        assert!(!json.contains("client"), "server hop leaked identity: {json}");
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = ObfuscatedQueryMsg {
            query_id: 1,
            query: ObfuscatedPathQuery::new(vec![NodeId(1)], vec![NodeId(2)]),
        };
        let big = ObfuscatedQueryMsg {
            query_id: 1,
            query: ObfuscatedPathQuery::new(
                (0..50).map(NodeId).collect(),
                (50..120).map(NodeId).collect(),
            ),
        };
        assert!(wire_size(&big) > wire_size(&small) * 5);
    }

    #[test]
    fn traffic_accounting_through_a_real_exchange() {
        let map =
            grid_network(&GridConfig { width: 12, height: 12, seed: 3, ..Default::default() })
                .unwrap();
        let mut ob = Obfuscator::new(map.clone(), FakeSelection::default_ring(), 5);
        let mut server = DirectionsServer::new(map, SharingPolicy::PerSource);
        let mut traffic = HopTraffic::default();

        let req = ClientRequest::new(
            ClientId(0),
            PathQuery::new(NodeId(0), NodeId(143)),
            ProtectionSettings::new(3, 3).unwrap(),
        );
        traffic.record_request(&RequestMsg {
            client: req.client,
            query: req.query,
            protection: req.protection,
        });

        let unit = ob.obfuscate_independent(&req).unwrap();
        let qmsg = ObfuscatedQueryMsg { query_id: 1, query: unit.query.clone() };
        traffic.record_query(&qmsg);

        let result = server.process(&unit.query);
        let cmsg = CandidateResultsMsg::from_result(1, &result);
        traffic.record_candidates(&cmsg);

        let delivered = crate::filter::filter_candidates(&unit, &result, None).unwrap();
        traffic.record_result(&ResultMsg {
            client: delivered[0].client,
            path: delivered[0].path.clone(),
        });

        assert!(traffic.requests_bytes > 0);
        assert!(traffic.queries_bytes > 0);
        assert!(
            traffic.candidates_bytes > traffic.results_bytes,
            "9 candidate paths outweigh 1 delivered path"
        );
        // Amplification for a 3×3 query is roughly the candidate count.
        let amp = traffic.candidate_amplification();
        assert!(amp > 2.0 && amp < 40.0, "amplification {amp} implausible");
        assert_eq!(
            traffic.total_bytes(),
            traffic.requests_bytes
                + traffic.queries_bytes
                + traffic.candidates_bytes
                + traffic.results_bytes
        );
    }

    #[test]
    fn empty_traffic_has_zero_amplification() {
        assert_eq!(HopTraffic::default().candidate_amplification(), 0.0);
    }
}
