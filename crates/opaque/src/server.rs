//! The directions-search server with its obfuscated path query processor
//! (§IV).
//!
//! The server is semi-trusted: it evaluates whatever queries it receives,
//! honestly, but observes them all — which is why it receives only
//! obfuscated queries. [`DirectionsServer`] wraps any [`GraphView`] (the
//! plain in-memory network or the CCAM paged store), answers plain path
//! queries with single-pair Dijkstra and obfuscated queries with the MSMD
//! processor, and keeps cumulative load counters so experiments can compare
//! what different obfuscation regimes cost the provider.

use crate::query::{ObfuscatedPathQuery, PathQuery};
use crate::service::cache::{CachePolicy, TreeCache};
use pathsearch::{
    AltPreprocessing, Goal, MsmdResult, Path, SearchArena, SearchStats, SharingPolicy,
    msmd_in_guided, msmd_in_guided_cached, run_in, run_in_cached,
};
use roadnet::{EdgeId, GraphView, NodeId};
use std::sync::Arc;

/// Cumulative server-side load counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServerStats {
    /// Obfuscated queries processed.
    pub obfuscated_queries: u64,
    /// Plain (unprotected) queries processed.
    pub plain_queries: u64,
    /// Total (source, target) pairs evaluated.
    pub pairs_evaluated: u64,
    /// Candidate result paths produced (connected pairs only).
    pub paths_returned: u64,
    /// Spanning trees actually grown, as attributed by
    /// [`pathsearch::MsmdResult::per_tree`] — under
    /// [`SharingPolicy::Auto`] transposition this counts the smaller-side
    /// trees really grown, not `|S|`, and under
    /// [`SharingPolicy::SharedFrontier`] it includes the backward trees.
    /// Plain queries count one tree each.
    pub trees_grown: u64,
    /// Trees served by adopting a cached sweep from the shard's
    /// [`TreeCache`] instead of growing them (always 0 under
    /// [`CachePolicy::Off`]). Hits still count in `trees_grown` and in
    /// `search` — adoption replays the skipped sweep's counters
    /// byte-for-byte, so every *logical* field reads identically whether
    /// or not a cache sat in front of the sweep; only this pair reveals
    /// the cache's presence, which is why reports keep it off the wire
    /// (see [`crate::BatchReport`]).
    pub tree_cache_hits: u64,
    /// Trees grown for real after consulting the cache (entry absent, or
    /// the goal lay beyond the recorded prefix). 0 under
    /// [`CachePolicy::Off`] — with no cache there are no lookups.
    pub tree_cache_misses: u64,
    /// Aggregated search counters.
    pub search: SearchStats,
}

impl ServerStats {
    /// Fold another counter set into this one — used by multi-backend
    /// deployments (e.g. [`crate::service::ShardedBackend`]) to report
    /// fleet-wide load.
    ///
    /// Merging is **commutative and associative** (every field is a plain
    /// sum), which is what lets a parallel shard fleet attribute work to
    /// whichever worker pulled it: the fleet-wide merge reads the same in
    /// any order, so scheduling cannot leak into reports. Pinned by
    /// `merge_is_commutative_and_associative` below.
    pub fn merge(&mut self, other: &ServerStats) {
        self.obfuscated_queries += other.obfuscated_queries;
        self.plain_queries += other.plain_queries;
        self.pairs_evaluated += other.pairs_evaluated;
        self.paths_returned += other.paths_returned;
        self.trees_grown += other.trees_grown;
        self.tree_cache_hits += other.tree_cache_hits;
        self.tree_cache_misses += other.tree_cache_misses;
        self.search.merge(other.search);
    }

    /// The counter growth since `baseline` — the per-batch view of a
    /// cumulative counter set. Saturating per field, so a reset between
    /// the two snapshots yields zeros rather than wrapping.
    pub fn delta_since(&self, baseline: &ServerStats) -> ServerStats {
        ServerStats {
            obfuscated_queries: self.obfuscated_queries.saturating_sub(baseline.obfuscated_queries),
            plain_queries: self.plain_queries.saturating_sub(baseline.plain_queries),
            pairs_evaluated: self.pairs_evaluated.saturating_sub(baseline.pairs_evaluated),
            paths_returned: self.paths_returned.saturating_sub(baseline.paths_returned),
            trees_grown: self.trees_grown.saturating_sub(baseline.trees_grown),
            tree_cache_hits: self.tree_cache_hits.saturating_sub(baseline.tree_cache_hits),
            tree_cache_misses: self.tree_cache_misses.saturating_sub(baseline.tree_cache_misses),
            search: pathsearch::SearchStats {
                settled: self.search.settled.saturating_sub(baseline.search.settled),
                relaxed: self.search.relaxed.saturating_sub(baseline.search.relaxed),
                heap_pushes: self.search.heap_pushes.saturating_sub(baseline.search.heap_pushes),
                heap_pops: self.search.heap_pops.saturating_sub(baseline.search.heap_pops),
                runs: self.search.runs.saturating_sub(baseline.search.runs),
            },
        }
    }
}

/// The server: a graph view, an MSMD sharing policy, load counters, and
/// an optional shard-local [`TreeCache`].
///
/// Plain and obfuscated queries share one [`SearchArena`], so a server
/// evaluating a query stream allocates nothing in the search core after
/// the first query grows the arena to the map's size. With a tree cache
/// attached ([`DirectionsServer::with_tree_cache`]), queries whose roots
/// already have a deep-enough cached tree skip their Dijkstra sweeps
/// entirely — with answers and counters byte-identical to the uncached
/// evaluation (see [`crate::service::cache`]).
pub struct DirectionsServer<G> {
    graph: G,
    policy: SharingPolicy,
    arena: SearchArena,
    stats: ServerStats,
    /// Bumped by [`DirectionsServer::swap_map`]; keys every cache entry,
    /// so no tree recorded on an old map can survive a swap.
    map_epoch: u64,
    cache: Option<TreeCache>,
    /// ALT landmark tables guiding obfuscated sweeps, shared across the
    /// fleet behind an `Arc` (`None` = unguided, the historical regime).
    heuristic: Option<Arc<AltPreprocessing>>,
}

impl<G: GraphView> DirectionsServer<G> {
    /// A server over `graph` evaluating obfuscated queries under `policy`.
    pub fn new(graph: G, policy: SharingPolicy) -> Self {
        Self::with_arena(graph, policy, SearchArena::new())
    }

    /// A server around a caller-built arena — e.g.
    /// [`SearchArena::preallocated`] to the map's node count, so a worker
    /// thread pinned to this server never pays first-touch buffer growth
    /// mid-stream. The arena is owned exclusively; it is never shared
    /// between servers (or threads).
    pub fn with_arena(graph: G, policy: SharingPolicy, arena: SearchArena) -> Self {
        DirectionsServer {
            graph,
            policy,
            arena,
            stats: ServerStats::default(),
            map_epoch: 0,
            cache: None,
            heuristic: None,
        }
    }

    /// Attach (or remove) a shard-local tree cache per `policy`. The
    /// cache starts cold at the server's current map epoch.
    ///
    /// # Panics
    /// Panics on `CachePolicy::Lru { trees: 0 }` — configuration-level
    /// validation ([`CachePolicy::validate`]) rejects it first in any
    /// built service.
    pub fn with_tree_cache(mut self, cache: CachePolicy) -> Self {
        self.cache = match cache {
            CachePolicy::Off => None,
            CachePolicy::Lru { trees } => {
                let mut cache = TreeCache::new(trees, self.policy);
                cache.invalidate(self.map_epoch);
                Some(cache)
            }
        };
        self
    }

    /// Attach (or remove) shared ALT landmark tables: obfuscated sweeps
    /// become goal-directed, settling fewer nodes while returning the
    /// same paths, costs, and logical counters as the unguided server
    /// except for the work counters (`settled`/`relaxed`/heap traffic)
    /// the pruning exists to shrink. Must have been built against this
    /// server's map ([`SearchHeuristic::preprocess`](crate::SearchHeuristic::preprocess)
    /// does both in [`crate::ServiceBuilder::build`]); landmark bounds
    /// from another map would not be admissible.
    pub fn with_heuristic(mut self, heuristic: Option<Arc<AltPreprocessing>>) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// The attached ALT landmark tables, if any.
    pub fn heuristic(&self) -> Option<&Arc<AltPreprocessing>> {
        self.heuristic.as_ref()
    }

    /// The sharing policy in use.
    pub fn policy(&self) -> SharingPolicy {
        self.policy
    }

    /// The wrapped graph view.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// The attached tree cache, if any (e.g. to read its hit rate).
    pub fn tree_cache(&self) -> Option<&TreeCache> {
        self.cache.as_ref()
    }

    /// The current map epoch (starts at 0, bumped by each
    /// [`DirectionsServer::swap_map`]).
    pub fn map_epoch(&self) -> u64 {
        self.map_epoch
    }

    /// Replace the served map, bumping the map epoch and invalidating
    /// every cached tree — the **invalidation invariant**: no tree
    /// recorded against an old map is ever adopted after a swap (entries
    /// are dropped *and* keyed under the old epoch, so even a
    /// hypothetical survivor could not be looked up). Cumulative load
    /// counters are kept; the arena needs no reset (its generation stamps
    /// already isolate searches).
    pub fn swap_map(&mut self, graph: G) {
        self.graph = graph;
        self.map_epoch += 1;
        if let Some(cache) = &mut self.cache {
            cache.invalidate(self.map_epoch);
        }
        // Landmark distances were measured on the old map; their triangle
        // bounds need not be admissible on the new one. Guidance resumes
        // when the caller re-attaches tables built against the new map.
        self.heuristic = None;
    }

    /// Adopt a live-traffic weight update: install the reweighted view
    /// (same topology — typically a fresh `Arc` of the fleet's shared
    /// map) and surgically evict only the cached trees whose recorded
    /// sweep touched one of the `affected` edges, each given by its
    /// endpoint pair. The map epoch does **not** move: untouched traces
    /// replay byte-identically on the reweighted map (see
    /// [`pathsearch::SweepTrace::touches_any`]), so dropping them would
    /// just re-cool the cache. Topology changes must keep going through
    /// [`DirectionsServer::swap_map`].
    pub fn apply_weight_update(&mut self, graph: G, affected: &[(NodeId, NodeId)]) {
        self.graph = graph;
        if let Some(cache) = &mut self.cache {
            cache.invalidate_edges(affected);
        }
        // A cheaper edge can break the old landmark tables' admissibility
        // (cached trees are checked per edge; lower bounds cannot be).
        // Drop guidance until tables for the reweighted map are attached.
        self.heuristic = None;
    }
}

impl DirectionsServer<roadnet::RoadNetwork> {
    /// Apply live-traffic weight updates to an *owned* map in place and
    /// surgically invalidate the affected cached trees — the single-server
    /// form of [`DirectionsServer::apply_weight_update`] (fleets sharing a
    /// map via `Arc` go through `ShardedBackend::update_weights` instead).
    /// Returns the edges whose weight actually changed.
    ///
    /// # Errors
    /// Propagates [`roadnet::RoadNetError`] from
    /// [`roadnet::RoadNetwork::update_weights`]; the map and cache are
    /// untouched on error.
    pub fn update_weights(&mut self, updates: &[(EdgeId, f64)]) -> roadnet::Result<Vec<EdgeId>> {
        let changed = self.graph.update_weights(updates)?;
        if let Some(cache) = &mut self.cache {
            let endpoints: Vec<(NodeId, NodeId)> = changed
                .iter()
                .map(|&e| {
                    let edge = self.graph.edge(e);
                    (edge.a, edge.b)
                })
                .collect();
            cache.invalidate_edges(&endpoints);
        }
        if !changed.is_empty() {
            // Same admissibility reasoning as `apply_weight_update`.
            self.heuristic = None;
        }
        Ok(changed)
    }
}

impl<G: GraphView> DirectionsServer<G> {
    /// Cumulative counters since construction (or the last reset).
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Zero the counters.
    pub fn reset_stats(&mut self) {
        self.stats = ServerStats::default();
    }

    /// Evaluate a *plain* path query — what an unprotected client would
    /// send. Returns the shortest path, or `None` when disconnected.
    pub fn process_plain(&mut self, q: &PathQuery) -> Option<Path> {
        let goal = Goal::Single(q.destination);
        let run = match &mut self.cache {
            Some(cache) => {
                let (h0, m0) = cache.counters();
                let run = run_in_cached(&mut self.arena, &self.graph, q.source, &goal, cache);
                let (h1, m1) = cache.counters();
                self.stats.tree_cache_hits += h1 - h0;
                self.stats.tree_cache_misses += m1 - m0;
                run
            }
            None => run_in(&mut self.arena, &self.graph, q.source, &goal),
        };
        self.stats.plain_queries += 1;
        self.stats.pairs_evaluated += 1;
        self.stats.trees_grown += 1;
        self.stats.search.merge(run);
        let path = self.arena.path_to(0, q.destination);
        if path.is_some() {
            self.stats.paths_returned += 1;
        }
        path
    }

    /// Evaluate an obfuscated path query: all `|S|×|T|` pairs, via the MSMD
    /// processor — through the adopt-or-grow tree cache when one is
    /// attached, and goal-directed when ALT tables are attached
    /// ([`DirectionsServer::with_heuristic`]). The full candidate matrix
    /// goes back to the obfuscator.
    pub fn process(&mut self, q: &ObfuscatedPathQuery) -> MsmdResult {
        let pre = self.heuristic.as_deref();
        let result = match &mut self.cache {
            Some(cache) => {
                let (h0, m0) = cache.counters();
                let result = msmd_in_guided_cached(
                    &mut self.arena,
                    &self.graph,
                    q.sources(),
                    q.targets(),
                    self.policy,
                    pre,
                    cache,
                );
                let (h1, m1) = cache.counters();
                self.stats.tree_cache_hits += h1 - h0;
                self.stats.tree_cache_misses += m1 - m0;
                result
            }
            None => msmd_in_guided(
                &mut self.arena,
                &self.graph,
                q.sources(),
                q.targets(),
                self.policy,
                pre,
            ),
        };
        self.stats.obfuscated_queries += 1;
        self.stats.pairs_evaluated += q.num_pairs() as u64;
        self.stats.paths_returned += result.num_paths() as u64;
        self.stats.trees_grown += result.per_tree.len() as u64;
        self.stats.search.merge(result.stats);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::NodeId;
    use roadnet::generators::{GridConfig, grid_network};

    fn server() -> DirectionsServer<roadnet::RoadNetwork> {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
            .unwrap();
        DirectionsServer::new(g, SharingPolicy::PerSource)
    }

    #[test]
    fn plain_query_returns_shortest_path() {
        let mut sv = server();
        let p = sv.process_plain(&PathQuery::new(NodeId(0), NodeId(143))).unwrap();
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.destination(), NodeId(143));
        assert!(p.verify(sv.graph(), 1e-9));
        assert_eq!(sv.stats().plain_queries, 1);
        assert_eq!(sv.stats().paths_returned, 1);
    }

    #[test]
    fn obfuscated_query_answers_every_pair() {
        let mut sv = server();
        let q = ObfuscatedPathQuery::new(
            vec![NodeId(0), NodeId(11)],
            vec![NodeId(143), NodeId(132), NodeId(70)],
        );
        let r = sv.process(&q);
        assert_eq!(r.num_paths(), 6);
        assert_eq!(sv.stats().pairs_evaluated, 6);
        assert_eq!(sv.stats().obfuscated_queries, 1);
        assert_eq!(sv.stats().paths_returned, 6);
        // The result matrix lines up with the sorted S/T sets.
        for (i, &s) in q.sources().iter().enumerate() {
            for (j, &t) in q.targets().iter().enumerate() {
                let p = r.paths[i][j].as_ref().unwrap();
                assert_eq!(p.source(), s);
                assert_eq!(p.destination(), t);
            }
        }
    }

    #[test]
    fn counters_accumulate_across_queries() {
        let mut sv = server();
        sv.process_plain(&PathQuery::new(NodeId(0), NodeId(1)));
        let q = ObfuscatedPathQuery::new(vec![NodeId(5)], vec![NodeId(100), NodeId(101)]);
        sv.process(&q);
        let st = sv.stats();
        assert_eq!(st.plain_queries, 1);
        assert_eq!(st.obfuscated_queries, 1);
        assert_eq!(st.pairs_evaluated, 3);
        assert!(st.search.settled > 0);
        sv.reset_stats();
        assert_eq!(sv.stats(), ServerStats::default());
    }

    #[test]
    fn tree_count_reflects_transposition_under_auto() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
            .unwrap();
        let mut sv = DirectionsServer::new(g, SharingPolicy::Auto);
        // 4 sources, 2 targets on a symmetric map: Auto transposes and
        // grows only 2 trees — the counter must report trees actually
        // grown, not |S|.
        let q = ObfuscatedPathQuery::new(
            vec![NodeId(0), NodeId(11), NodeId(60), NodeId(80)],
            vec![NodeId(143), NodeId(132)],
        );
        let r = sv.process(&q);
        assert_eq!(r.per_tree.len(), 2);
        assert_eq!(sv.stats().trees_grown, 2);
        assert!(
            r.per_tree.iter().all(|t| t.side == pathsearch::TreeSide::Target),
            "transposed trees are target-rooted"
        );
        // A plain query counts one more tree.
        sv.process_plain(&PathQuery::new(NodeId(0), NodeId(1)));
        assert_eq!(sv.stats().trees_grown, 3);
    }

    #[test]
    fn tree_count_includes_backward_trees_under_shared_frontier() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
            .unwrap();
        let mut sv = DirectionsServer::new(g, SharingPolicy::SharedFrontier);
        let q = ObfuscatedPathQuery::new(
            vec![NodeId(0), NodeId(11)],
            vec![NodeId(143), NodeId(132), NodeId(70)],
        );
        let r = sv.process(&q);
        assert_eq!(r.num_paths(), 6);
        assert_eq!(sv.stats().trees_grown, 2 + 3, "forward + backward trees");
    }

    #[test]
    fn merged_stats_sum_tree_counters() {
        let mut a = ServerStats { trees_grown: 3, ..ServerStats::default() };
        let b = ServerStats { trees_grown: 5, ..ServerStats::default() };
        a.merge(&b);
        assert_eq!(a.trees_grown, 8);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        // Three real, distinct counter sets from real queries.
        let mut servers = [server(), server(), server()];
        servers[0].process_plain(&PathQuery::new(NodeId(0), NodeId(143)));
        servers[1].process(&ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(143)]));
        servers[2].process(&ObfuscatedPathQuery::new(
            vec![NodeId(0), NodeId(11)],
            vec![NodeId(143), NodeId(70)],
        ));
        let stats: Vec<ServerStats> = servers.iter().map(|s| s.stats()).collect();

        let fold = |order: &[usize]| {
            let mut acc = ServerStats::default();
            for &i in order {
                acc.merge(&stats[i]);
            }
            acc
        };
        let reference = fold(&[0, 1, 2]);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_eq!(fold(&order), reference, "merge order {order:?} must not matter");
        }
        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = stats[0];
        left.merge(&stats[1]);
        left.merge(&stats[2]);
        let mut bc = stats[1];
        bc.merge(&stats[2]);
        let mut right = stats[0];
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn delta_since_reads_per_batch_growth() {
        let mut sv = server();
        let before = sv.stats();
        sv.process(&ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(143), NodeId(70)]));
        let mid = sv.stats();
        sv.process_plain(&PathQuery::new(NodeId(0), NodeId(143)));
        let after = sv.stats();

        let first = mid.delta_since(&before);
        assert_eq!(first.obfuscated_queries, 1);
        assert_eq!(first.plain_queries, 0);
        assert_eq!(first.pairs_evaluated, 2);
        let second = after.delta_since(&mid);
        assert_eq!(second.plain_queries, 1);
        assert_eq!(second.trees_grown, 1);
        assert!(second.search.settled > 0);
        // Deltas recompose to the cumulative total.
        let mut recomposed = before;
        recomposed.merge(&first);
        recomposed.merge(&second);
        assert_eq!(recomposed, after);
        // A reset between snapshots saturates to zero instead of wrapping.
        sv.reset_stats();
        assert_eq!(sv.stats().delta_since(&after), ServerStats::default());
    }

    #[test]
    fn server_accepts_a_preallocated_arena() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
            .unwrap();
        let arena = SearchArena::preallocated(g.num_nodes(), 1);
        let cap = arena.capacity();
        let mut sv = DirectionsServer::with_arena(g, SharingPolicy::PerSource, arena);
        let p = sv.process_plain(&PathQuery::new(NodeId(0), NodeId(143))).unwrap();
        assert_eq!(p.destination(), NodeId(143));
        assert_eq!(sv.arena.capacity(), cap, "plain query fits the preallocated slab");
    }

    #[test]
    fn cached_server_is_byte_identical_and_hits_on_root_reuse() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
            .unwrap();
        let mut plain = DirectionsServer::new(g.clone(), SharingPolicy::PerSource);
        let mut cached = DirectionsServer::new(g, SharingPolicy::PerSource)
            .with_tree_cache(CachePolicy::Lru { trees: 8 });
        let queries = [
            ObfuscatedPathQuery::new(vec![NodeId(0), NodeId(11)], vec![NodeId(143), NodeId(70)]),
            // The same query again: both roots' goals are provably inside
            // the recorded sweeps, so both trees adopt.
            ObfuscatedPathQuery::new(vec![NodeId(0), NodeId(11)], vec![NodeId(143), NodeId(70)]),
            // A subset query from one of the roots: still inside.
            ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(143)]),
        ];
        for (i, q) in queries.iter().enumerate() {
            let a = plain.process(q);
            let b = cached.process(q);
            assert_eq!(a.stats, b.stats, "query {i}: aggregate counters diverged");
            assert_eq!(a.paths, b.paths, "query {i}: answers diverged");
        }
        let (hits, misses) = (cached.stats().tree_cache_hits, cached.stats().tree_cache_misses);
        assert_eq!((hits, misses), (3, 2), "queries 2 and 3 reuse query 1's trees");
        // Every logical counter matches the uncached server exactly; only
        // the hit/miss pair differs.
        let mut logical = cached.stats();
        logical.tree_cache_hits = 0;
        logical.tree_cache_misses = 0;
        assert_eq!(logical, plain.stats());
        // Plain queries go through the same cache: node 143 is settled in
        // root 0's recorded sweep, so this adopts.
        let pq = PathQuery::new(NodeId(0), NodeId(143));
        assert_eq!(plain.process_plain(&pq), cached.process_plain(&pq));
        assert_eq!(cached.stats().tree_cache_hits, hits + 1, "plain query adopted a cached tree");
    }

    #[test]
    fn guided_server_answers_identically_while_settling_no_more() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
            .unwrap();
        let pre = Arc::new(AltPreprocessing::try_build(&g, 6).unwrap());
        let mut plain = DirectionsServer::new(g.clone(), SharingPolicy::PerSource);
        let mut guided = DirectionsServer::new(g.clone(), SharingPolicy::PerSource)
            .with_heuristic(Some(Arc::clone(&pre)));
        assert!(guided.heuristic().is_some());
        let queries = [
            ObfuscatedPathQuery::new(vec![NodeId(0), NodeId(11)], vec![NodeId(143), NodeId(132)]),
            ObfuscatedPathQuery::new(vec![NodeId(60)], vec![NodeId(5), NodeId(139)]),
        ];
        for (i, q) in queries.iter().enumerate() {
            let a = plain.process(q);
            let b = guided.process(q);
            assert_eq!(a.paths, b.paths, "query {i}: guided answers diverged");
        }
        let (p, gd) = (plain.stats(), guided.stats());
        assert!(
            gd.search.settled <= p.search.settled,
            "{} > {}",
            gd.search.settled,
            p.search.settled
        );
        // Every non-work counter is identical.
        assert_eq!(p.pairs_evaluated, gd.pairs_evaluated);
        assert_eq!(p.paths_returned, gd.paths_returned);
        assert_eq!(p.trees_grown, gd.trees_grown);

        // Cached guided evaluation stays byte-identical to uncached guided.
        let mut cached = DirectionsServer::new(g.clone(), SharingPolicy::PerSource)
            .with_tree_cache(CachePolicy::Lru { trees: 8 })
            .with_heuristic(Some(Arc::clone(&pre)));
        let mut uncached = DirectionsServer::new(g.clone(), SharingPolicy::PerSource)
            .with_heuristic(Some(Arc::clone(&pre)));
        for _ in 0..2 {
            for q in &queries {
                let a = uncached.process(q);
                let b = cached.process(q);
                assert_eq!(a.paths, b.paths);
                assert_eq!(a.stats, b.stats);
            }
        }
        assert!(cached.stats().tree_cache_hits > 0, "repeat round adopts guided traces");

        // Map mutations drop the (now unprovably admissible) tables.
        let mut sv = DirectionsServer::new(g.clone(), SharingPolicy::PerSource)
            .with_heuristic(Some(Arc::clone(&pre)));
        sv.swap_map(g.clone());
        assert!(sv.heuristic().is_none(), "swap_map must drop the heuristic");
        let mut sv =
            DirectionsServer::new(g.clone(), SharingPolicy::PerSource).with_heuristic(Some(pre));
        let edge = EdgeId::from_index(0);
        sv.update_weights(&[(edge, 0.5)]).unwrap();
        assert!(sv.heuristic().is_none(), "weight updates must drop the heuristic");
    }

    #[test]
    fn swap_map_bumps_the_epoch_and_invalidates_cached_trees() {
        let old =
            grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
                .unwrap();
        // Same node count, different seed: different edge weights, so a
        // stale tree would produce visibly wrong distances.
        let new =
            grid_network(&GridConfig { width: 12, height: 12, seed: 10, ..Default::default() })
                .unwrap();
        let q = ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(143)]);

        let mut sv = DirectionsServer::new(old, SharingPolicy::PerSource)
            .with_tree_cache(CachePolicy::Lru { trees: 4 });
        assert_eq!(sv.map_epoch(), 0);
        sv.process(&q);
        sv.process(&q);
        assert_eq!(sv.stats().tree_cache_hits, 1, "warm repeat hits");

        sv.swap_map(new.clone());
        assert_eq!(sv.map_epoch(), 1);
        assert!(sv.tree_cache().unwrap().is_empty(), "swap dropped every entry");
        assert_eq!(sv.tree_cache().unwrap().map_epoch(), 1);
        let r = sv.process(&q);
        assert_eq!(
            sv.stats().tree_cache_hits,
            1,
            "first post-swap query must miss (no stale adoption)"
        );
        // The answer reflects the new map, not the cached old tree.
        let mut fresh = DirectionsServer::new(new, SharingPolicy::PerSource);
        let expected = fresh.process(&q);
        assert_eq!(r.distance(0, 0), expected.distance(0, 0));
        assert_eq!(r.paths, expected.paths);
    }

    #[test]
    fn weight_update_evicts_touched_trees_and_never_adopts_stale() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
            .unwrap();
        let q = ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(143)]);
        let mut sv = DirectionsServer::new(g.clone(), SharingPolicy::PerSource)
            .with_tree_cache(CachePolicy::Lru { trees: 4 });
        let r0 = sv.process(&q);
        sv.process(&q);
        assert_eq!(sv.stats().tree_cache_hits, 1, "warm repeat hits");

        // Congest an edge on the answered path: the cached tree touched
        // it, so it must be evicted — adopting it would serve a stale
        // distance.
        let path = r0.paths[0][0].as_ref().unwrap();
        let (pa, pb) = (path.nodes()[0], path.nodes()[1]);
        let edge = g
            .edges()
            .iter()
            .enumerate()
            .find(|(_, e)| (e.a == pa && e.b == pb) || (e.a == pb && e.b == pa))
            .map(|(i, _)| EdgeId::from_index(i))
            .unwrap();
        let changed = sv.update_weights(&[(edge, 1000.0)]).unwrap();
        assert_eq!(changed, vec![edge]);
        assert_eq!(sv.map_epoch(), 0, "weight updates do not bump the epoch");

        let r = sv.process(&q);
        assert_eq!(sv.stats().tree_cache_hits, 1, "post-update query must miss, not adopt stale");
        let mut fresh_map = g.clone();
        fresh_map.update_weights(&[(edge, 1000.0)]).unwrap();
        let mut fresh = DirectionsServer::new(fresh_map, SharingPolicy::PerSource);
        let expected = fresh.process(&q);
        assert_eq!(r.paths, expected.paths, "answer reflects the congested edge");
        assert_eq!(r.stats, expected.stats);

        // An update far from any cached sweep keeps the (re-stored) tree:
        // a trace is only evicted when its sweep touched the edge. The
        // re-grown tree above is complete (single-target sweeps can
        // exhaust), so instead warm a *shallow* adjacent-pair tree and
        // update an edge outside its settled prefix.
        let mut sv = DirectionsServer::new(g.clone(), SharingPolicy::PerSource)
            .with_tree_cache(CachePolicy::Lru { trees: 4 });
        let near = ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(1)]);
        sv.process(&near);
        let trace_len = {
            let cache = sv.tree_cache().unwrap();
            assert_eq!(cache.len(), 1);
            cache.counters()
        };
        let far_edge = g
            .edges()
            .iter()
            .enumerate()
            .rev()
            .find(|(_, e)| e.a.0 > 100 && e.b.0 > 100)
            .map(|(i, _)| EdgeId::from_index(i))
            .unwrap();
        sv.update_weights(&[(far_edge, 999.0)]).unwrap();
        sv.process(&near);
        let (hits, _) = sv.tree_cache().unwrap().counters();
        assert!(hits > trace_len.0, "untouched tree survived the far update and hit");
    }

    #[test]
    fn cache_capacity_one_still_answers_correctly() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
            .unwrap();
        let mut plain = DirectionsServer::new(g.clone(), SharingPolicy::PerSource);
        let mut thrashing = DirectionsServer::new(g, SharingPolicy::PerSource)
            .with_tree_cache(CachePolicy::Lru { trees: 1 });
        // Two roots alternating: the single slot thrashes, correctness
        // must not care.
        for _ in 0..3 {
            for root in [0u32, 100] {
                let q = ObfuscatedPathQuery::new(vec![NodeId(root)], vec![NodeId(143)]);
                let a = plain.process(&q);
                let b = thrashing.process(&q);
                assert_eq!(a.paths, b.paths);
                assert_eq!(a.stats, b.stats);
            }
        }
        assert_eq!(thrashing.tree_cache().unwrap().len(), 1);
    }

    #[test]
    fn server_works_over_paged_storage() {
        let g = grid_network(&GridConfig { width: 12, height: 12, seed: 9, ..Default::default() })
            .unwrap();
        let paged = roadnet::PagedGraph::ccam(&g, 16);
        let mut sv = DirectionsServer::new(&paged, SharingPolicy::PerSource);
        let q = ObfuscatedPathQuery::new(vec![NodeId(0)], vec![NodeId(143)]);
        let r = sv.process(&q);
        assert_eq!(r.num_paths(), 1);
        assert!(paged.io_stats().faults > 0, "search must have touched pages");
    }
}
