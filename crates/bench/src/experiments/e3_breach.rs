//! E3 — breach probability validation (Definition 2).
//!
//! The paper's protection guarantee is analytic: `1/(|S|·|T|)`. This
//! experiment formulates obfuscated queries across the (f_S, f_T) grid and
//! attacks each one with the uniform-prior adversary, checking the
//! Monte-Carlo breach rate against the formula.

use crate::setup::{Scale, network_with_index};
use crate::table::{ExperimentTable, f3};
use opaque::attack::uniform_attack;
use opaque::{ClientId, ClientRequest, FakeSelection, Obfuscator, PathQuery, ProtectionSettings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use roadnet::NodeId;
use roadnet::generators::NetworkClass;

/// Run E3.
pub fn run(scale: &Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E3",
        "breach probability: analytic vs simulated adversary",
        "Definition 2",
        &["f_S", "f_T", "analytic", "empirical", "abs err"],
    );
    let (g, _) = network_with_index(NetworkClass::Geometric, scale);
    let n = g.num_nodes() as u32;
    let mut ob = Obfuscator::new(g.clone(), FakeSelection::default_ring(), 0xE3);
    let mut rng = StdRng::seed_from_u64(0xE3);

    for f_s in [1u32, 2, 3, 4, 6, 8] {
        for f_t in [1u32, 2, 4, 8] {
            let (s, d) = loop {
                let s = NodeId(rng.gen_range(0..n));
                let d = NodeId(rng.gen_range(0..n));
                if s != d {
                    break (s, d);
                }
            };
            let req = ClientRequest::new(
                ClientId(0),
                PathQuery::new(s, d),
                ProtectionSettings::new(f_s, f_t).expect("positive"),
            );
            let unit = ob.obfuscate_independent(&req).expect("map large enough");
            let rep = uniform_attack(&unit, ClientId(0), scale.trials, &mut rng);
            t.row(vec![
                f_s.to_string(),
                f_t.to_string(),
                f3(rep.analytic),
                f3(rep.empirical),
                f3((rep.analytic - rep.empirical).abs()),
            ]);
        }
    }
    t.note("empirical breach must track 1/(f_S·f_T) within Monte-Carlo noise");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_empirical_tracks_analytic() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 24);
        for row in &t.rows {
            let analytic: f64 = row[2].parse().unwrap();
            let err: f64 = row[4].parse().unwrap();
            // 20k trials → standard error well under 0.01 for p ≤ 1.
            assert!(err < 0.02, "breach mismatch: {row:?}");
            let f_s: f64 = row[0].parse().unwrap();
            let f_t: f64 = row[1].parse().unwrap();
            // `analytic` round-tripped through 4-decimal formatting.
            assert!((analytic - 1.0 / (f_s * f_t)).abs() < 1e-3);
        }
    }
}
