//! The shared-frontier MSMD engine behind
//! [`SharingPolicy::SharedFrontier`](crate::multi::SharingPolicy).
//!
//! All spanning trees of an obfuscated query grow in **one interleaved
//! sweep**: every tree's tentative labels live in one [`SearchArena`] and
//! compete in one heap, so the globally closest frontier node settles next
//! regardless of which tree owns it — the multi-tree generalization of
//! balanced bidirectional growth.
//!
//! On **symmetric** (undirected) graph views the engine grows `|S|`
//! forward trees *and* `|T|` backward trees and resolves each pair
//! `(s, t)` by the bidirectional meeting rule: track the best connecting
//! distance `μ(s,t)` seen through any commonly-labelled node, and finalize
//! the pair once the two trees' settled radii sum to at least `μ` (the
//! classic stopping criterion, applied per pair). Each tree retires the
//! moment its last open pair resolves — per-source early termination —
//! so every tree stops near *half* the distance it would have to cover
//! alone, which is why this policy settles strictly fewer nodes than
//! [`SharingPolicy::PerSource`](crate::multi::SharingPolicy) on planar
//! maps (two half-radius balls cover about half the area of one
//! full-radius ball).
//!
//! On **directed** views the backward adjacency is unavailable, so the
//! engine degrades to the same interleaved sweep over forward trees only,
//! with each tree retiring when its last unsettled target settles —
//! exactly `PerSource`'s per-tree cost, still allocation-free and
//! single-pass.

use crate::arena::{FrontierScratch, NIL, SearchArena};
use crate::multi::{MsmdResult, TreeSide, TreeStats};
use crate::path::Path;
use crate::stats::SearchStats;
use roadnet::{GraphView, NodeId};

/// Evaluate `sources × targets` with the shared-frontier engine inside
/// `arena`. Inputs are validated by [`crate::multi::msmd_in`].
pub(crate) fn shared_frontier<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
) -> MsmdResult {
    if g.is_symmetric() {
        bidirectional_sweep(arena, g, sources, targets)
    } else {
        forward_sweep(arena, g, sources, targets)
    }
}

/// Symmetric case: `|S|` forward + `|T|` backward trees, one heap,
/// per-pair bidirectional termination.
fn bidirectional_sweep<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
) -> MsmdResult {
    let (ns, nt) = (sources.len(), targets.len());
    let k = ns + nt;
    let n = g.num_nodes();
    arena.begin(n, k);

    let mut fs = arena.take_frontier_scratch();
    fs.mu.clear();
    fs.mu.resize(ns * nt, f64::INFINITY);
    fs.meet.clear();
    fs.meet.resize(ns * nt, NIL);
    fs.done.clear();
    fs.done.resize(ns * nt, false);
    fs.radius.clear();
    fs.radius.resize(k, 0.0);
    fs.open.clear();
    fs.open.resize(k, 0);
    for o in fs.open.iter_mut().take(ns) {
        *o = nt as u32;
    }
    for o in fs.open.iter_mut().skip(ns) {
        *o = ns as u32;
    }

    let mut per_tree: Vec<TreeStats> = sources
        .iter()
        .map(|&s| TreeStats { root: s, side: TreeSide::Source, stats: SearchStats::one_run() })
        .chain(targets.iter().map(|&t| TreeStats {
            root: t,
            side: TreeSide::Target,
            stats: SearchStats::one_run(),
        }))
        .collect();

    for (tree, &root) in sources.iter().chain(targets.iter()).enumerate() {
        arena.label(tree, root, 0.0, None);
        arena.push(0.0, tree, root);
        per_tree[tree].stats.heap_pushes += 1;
    }

    // Trees whose pair set is still open; the sweep ends when none remain
    // (or the heap drains, for disconnected pairs).
    let mut live = k;
    while live > 0 {
        let Some(e) = arena.pop() else { break };
        let tree = e.tree as usize;
        per_tree[tree].stats.heap_pops += 1;
        if fs.open[tree] == 0 || !arena.is_fresh(&e) {
            continue; // retired tree, or lazy-deletion residue
        }
        arena.settle(tree, e.node);
        per_tree[tree].stats.settled += 1;
        fs.radius[tree] = e.key;

        // Settle-time meeting check: the settled node may already carry a
        // label in an opposite tree.
        record_meetings(arena, &mut fs.mu, &mut fs.meet, ns, nt, tree, e.node);

        // Expand. Label-time meeting checks are what make the per-pair
        // stopping rule exact: every label creation or improvement is a
        // successful relax (roots excepted — the settle-time check above
        // covers those), so checking only on success keeps μ equal to the
        // min over *final* labels while skipping the O(|T|) scan on the
        // majority of arcs whose relaxation changes nothing.
        let d_node = e.key;
        let stats = &mut per_tree[tree].stats;
        g.for_each_arc(e.node, &mut |to, w| {
            stats.relaxed += 1;
            if arena.relax(tree, e.node, to, d_node + w) {
                stats.heap_pushes += 1;
                record_meetings(arena, &mut fs.mu, &mut fs.meet, ns, nt, tree, to);
            }
        });

        // Only this tree's radius moved and only its pairs' μ changed, so
        // a closure scan over this tree's row (or column) is complete.
        if tree < ns {
            for j in 0..nt {
                try_close(&mut fs, &mut live, ns, nt, tree, j);
            }
        } else {
            let j = tree - ns;
            for i in 0..ns {
                try_close(&mut fs, &mut live, ns, nt, i, j);
            }
        }
    }

    // Stitch each pair's path: forward chain to the meeting node, then the
    // backward chain out to the target (parents of a backward tree lead
    // *to* the target; edge weights are symmetric by assumption).
    let mut paths: Vec<Vec<Option<Path>>> = Vec::with_capacity(ns);
    for i in 0..ns {
        let mut row = Vec::with_capacity(nt);
        for j in 0..nt {
            let p = i * nt + j;
            if fs.mu[p].is_finite() {
                let m = NodeId(fs.meet[p]);
                let mut nodes = vec![m];
                arena.walk_parents(i, m, &mut nodes); // m … s_i
                nodes.reverse(); // s_i … m
                arena.walk_parents(ns + j, m, &mut nodes); // … t_j
                row.push(Some(Path::new(nodes, fs.mu[p])));
            } else {
                row.push(None);
            }
        }
        paths.push(row);
    }
    arena.put_frontier_scratch(fs);

    let stats = per_tree.iter().map(|t| t.stats).sum();
    MsmdResult { paths, stats, per_tree }
}

/// Finalize pair `(i, j)` if its best connection is provably shortest:
/// once the two trees' settled radii sum to at least `μ`, no unexplored
/// label can improve it (every future settle in either tree carries a key
/// at least its current radius).
#[inline]
fn try_close(fs: &mut FrontierScratch, live: &mut usize, ns: usize, nt: usize, i: usize, j: usize) {
    let p = i * nt + j;
    if !fs.done[p] && fs.mu[p] <= fs.radius[i] + fs.radius[ns + j] {
        fs.done[p] = true;
        fs.open[i] -= 1;
        if fs.open[i] == 0 {
            *live -= 1;
        }
        fs.open[ns + j] -= 1;
        if fs.open[ns + j] == 0 {
            *live -= 1;
        }
    }
}

/// Record pair meetings through `node`, which just gained (or already
/// carries) a label in `tree`: for every *opposite* tree that has labelled
/// `node`, the sum of the two labels is a connecting-path length.
#[inline]
fn record_meetings(
    arena: &SearchArena,
    mu: &mut [f64],
    meet: &mut [u32],
    ns: usize,
    nt: usize,
    tree: usize,
    node: NodeId,
) {
    let d_here = arena.dist_raw(tree, node);
    if tree < ns {
        for j in 0..nt {
            if arena.is_labelled(ns + j, node) {
                let through = d_here + arena.dist_raw(ns + j, node);
                let p = tree * nt + j;
                if through < mu[p] {
                    mu[p] = through;
                    meet[p] = node.0;
                }
            }
        }
    } else {
        let j = tree - ns;
        for i in 0..ns {
            if arena.is_labelled(i, node) {
                let through = d_here + arena.dist_raw(i, node);
                let p = i * nt + j;
                if through < mu[p] {
                    mu[p] = through;
                    meet[p] = node.0;
                }
            }
        }
    }
}

/// Directed fallback: forward trees only, interleaved through one heap,
/// each retiring when its last unsettled target settles.
fn forward_sweep<G: GraphView>(
    arena: &mut SearchArena,
    g: &G,
    sources: &[NodeId],
    targets: &[NodeId],
) -> MsmdResult {
    let ns = sources.len();
    let n = g.num_nodes();
    arena.begin(n, ns);

    let mut goal = arena.take_goal_scratch();
    goal.extend_from_slice(targets);
    goal.sort_unstable();
    goal.dedup();
    let goals_per_tree = goal.len() as u32;

    let mut fs = arena.take_frontier_scratch();
    fs.open.clear();
    fs.open.resize(ns, goals_per_tree);

    let mut per_tree: Vec<TreeStats> = sources
        .iter()
        .map(|&s| TreeStats { root: s, side: TreeSide::Source, stats: SearchStats::one_run() })
        .collect();

    for (tree, &s) in sources.iter().enumerate() {
        arena.label(tree, s, 0.0, None);
        arena.push(0.0, tree, s);
        per_tree[tree].stats.heap_pushes += 1;
    }

    let mut live = ns;
    while live > 0 {
        let Some(e) = arena.pop() else { break };
        let tree = e.tree as usize;
        per_tree[tree].stats.heap_pops += 1;
        if fs.open[tree] == 0 || !arena.is_fresh(&e) {
            continue;
        }
        arena.settle(tree, e.node);
        per_tree[tree].stats.settled += 1;

        if goal.binary_search(&e.node).is_ok() {
            fs.open[tree] -= 1;
            if fs.open[tree] == 0 {
                live -= 1;
                continue; // tree done: no need to expand this node
            }
        }

        let d_node = e.key;
        let stats = &mut per_tree[tree].stats;
        g.for_each_arc(e.node, &mut |to, w| {
            stats.relaxed += 1;
            if arena.relax(tree, e.node, to, d_node + w) {
                stats.heap_pushes += 1;
            }
        });
    }
    arena.put_goal_scratch(goal);
    arena.put_frontier_scratch(fs);

    let paths: Vec<Vec<Option<Path>>> =
        (0..ns).map(|i| targets.iter().map(|&t| arena.path_to(i, t)).collect()).collect();
    let stats = per_tree.iter().map(|t| t.stats).sum();
    MsmdResult { paths, stats, per_tree }
}
